//! Per-block cycle attribution.
//!
//! Every simulated cycle lands in exactly one of six categories,
//! charged to the static basic block it was spent in (keyed by the
//! block's leader PC). Because the pipeline decomposes each retired
//! instruction into base + i-stall + d-stall cycles and the array
//! decomposes each invocation into stall + exec + tail cycles, the
//! profile's column sums equal the run's total cycle count *exactly* —
//! no sampling, no residue.

use crate::event::ProbeEvent;
use crate::json::ObjectWriter;
use crate::probe::Probe;
use std::collections::HashMap;
use std::fmt;

/// The six cycle categories of the attribution model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributionKind {
    /// Pipeline issue + structural penalty cycles.
    Pipeline,
    /// Instruction-cache stall cycles.
    IStall,
    /// Data-cache stall cycles on the pipeline side.
    DStall,
    /// Reconfiguration stall cycles before an array invocation.
    ReconfigStall,
    /// Array row-execution cycles (incl. array d-cache stalls and
    /// misspeculation penalty).
    ArrayExec,
    /// Write-back tail cycles not overlapped with execution.
    WritebackTail,
}

impl AttributionKind {
    /// All kinds, in rendering order.
    pub const ALL: [AttributionKind; 6] = [
        AttributionKind::Pipeline,
        AttributionKind::IStall,
        AttributionKind::DStall,
        AttributionKind::ReconfigStall,
        AttributionKind::ArrayExec,
        AttributionKind::WritebackTail,
    ];

    /// Stable wire/column name of the category.
    pub fn name(self) -> &'static str {
        match self {
            AttributionKind::Pipeline => "pipeline",
            AttributionKind::IStall => "i_stall",
            AttributionKind::DStall => "d_stall",
            AttributionKind::ReconfigStall => "reconfig_stall",
            AttributionKind::ArrayExec => "array_exec",
            AttributionKind::WritebackTail => "writeback_tail",
        }
    }
}

/// Cycle totals for one static basic block (or one whole run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCycles {
    /// Pipeline issue + structural penalty cycles.
    pub pipeline: u64,
    /// Instruction-cache stall cycles.
    pub i_stall: u64,
    /// Data-cache stall cycles (pipeline side).
    pub d_stall: u64,
    /// Reconfiguration stall cycles.
    pub reconfig_stall: u64,
    /// Array execution cycles.
    pub array_exec: u64,
    /// Write-back tail cycles.
    pub writeback_tail: u64,
    /// Pipeline instructions retired in the block.
    pub retired: u64,
    /// Array invocations entered at the block.
    pub invocations: u64,
}

impl BlockCycles {
    /// Cycles in the given category.
    pub fn get(&self, kind: AttributionKind) -> u64 {
        match kind {
            AttributionKind::Pipeline => self.pipeline,
            AttributionKind::IStall => self.i_stall,
            AttributionKind::DStall => self.d_stall,
            AttributionKind::ReconfigStall => self.reconfig_stall,
            AttributionKind::ArrayExec => self.array_exec,
            AttributionKind::WritebackTail => self.writeback_tail,
        }
    }

    /// All cycles across the six categories.
    pub fn total(&self) -> u64 {
        AttributionKind::ALL.iter().map(|&k| self.get(k)).sum()
    }

    /// Element-wise sum (saturating, so a pathological merge cannot
    /// wrap and silently corrupt the totals).
    pub fn merged(&self, other: &BlockCycles) -> BlockCycles {
        BlockCycles {
            pipeline: self.pipeline.saturating_add(other.pipeline),
            i_stall: self.i_stall.saturating_add(other.i_stall),
            d_stall: self.d_stall.saturating_add(other.d_stall),
            reconfig_stall: self.reconfig_stall.saturating_add(other.reconfig_stall),
            array_exec: self.array_exec.saturating_add(other.array_exec),
            writeback_tail: self.writeback_tail.saturating_add(other.writeback_tail),
            retired: self.retired.saturating_add(other.retired),
            invocations: self.invocations.saturating_add(other.invocations),
        }
    }
}

/// A [`Probe`] that attributes every cycle to a static basic block.
///
/// Block identity is the leader PC: the first instruction retired after
/// a control transfer (or after an array invocation, which drains the
/// pipeline) starts a new attribution scope. Array cycles are charged
/// to the configuration's entry PC — the block the accelerated region
/// replaced.
#[derive(Debug, Clone, Default)]
pub struct CycleProfiler {
    blocks: HashMap<u32, BlockCycles>,
    current_leader: Option<u32>,
}

impl CycleProfiler {
    /// An empty profiler.
    pub fn new() -> CycleProfiler {
        CycleProfiler::default()
    }

    /// Finishes profiling and produces the sorted profile.
    pub fn into_profile(self) -> CycleProfile {
        let mut blocks: Vec<(u32, BlockCycles)> = self.blocks.into_iter().collect();
        // Hottest first; PC breaks ties so the order is deterministic.
        blocks.sort_by(|a, b| b.1.total().cmp(&a.1.total()).then(a.0.cmp(&b.0)));
        let totals = blocks
            .iter()
            .fold(BlockCycles::default(), |acc, (_, b)| acc.merged(b));
        CycleProfile { blocks, totals }
    }
}

impl Probe for CycleProfiler {
    fn emit(&mut self, event: ProbeEvent) {
        match event {
            ProbeEvent::Retire {
                pc,
                base_cycles,
                i_stall,
                d_stall,
                ends_block,
                ..
            } => {
                let leader = *self.current_leader.get_or_insert(pc);
                let block = self.blocks.entry(leader).or_default();
                block.pipeline += base_cycles as u64;
                block.i_stall += i_stall as u64;
                block.d_stall += d_stall as u64;
                block.retired += 1;
                if ends_block {
                    self.current_leader = None;
                }
            }
            ProbeEvent::ArrayInvoke(inv) => {
                let block = self.blocks.entry(inv.entry_pc).or_default();
                block.reconfig_stall += inv.stall_cycles as u64;
                block.array_exec += inv.exec_cycles as u64;
                block.writeback_tail += inv.tail_cycles as u64;
                block.invocations += 1;
                // The pipeline drains across an invocation; whatever
                // retires next leads a fresh attribution scope.
                self.current_leader = None;
            }
            _ => {}
        }
    }
}

/// The finished per-block cycle attribution, hottest block first.
#[derive(Debug, Clone, Default)]
pub struct CycleProfile {
    /// `(leader_pc, cycles)` sorted by descending total.
    pub blocks: Vec<(u32, BlockCycles)>,
    /// Column sums over all blocks. `totals.total()` equals the run's
    /// total cycle count exactly.
    pub totals: BlockCycles,
}

impl CycleProfile {
    /// All attributed cycles.
    pub fn total_cycles(&self) -> u64 {
        self.totals.total()
    }

    /// Renders the hot-block table (top `limit` blocks, 0 = all).
    pub fn render(&self, limit: usize) -> String {
        let mut s = String::new();
        s.push_str(
            "   block       total    %  pipeline   i-stall   d-stall  reconfig  arr-exec  wb-tail   retired  invokes\n",
        );
        let total = self.total_cycles().max(1);
        let shown = if limit == 0 {
            self.blocks.len()
        } else {
            limit.min(self.blocks.len())
        };
        for (pc, b) in &self.blocks[..shown] {
            s.push_str(&format!(
                "{pc:#010x} {:>11} {:>4.1} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9} {:>8}\n",
                b.total(),
                100.0 * b.total() as f64 / total as f64,
                b.pipeline,
                b.i_stall,
                b.d_stall,
                b.reconfig_stall,
                b.array_exec,
                b.writeback_tail,
                b.retired,
                b.invocations,
            ));
        }
        if shown < self.blocks.len() {
            let rest = self.blocks[shown..]
                .iter()
                .fold(BlockCycles::default(), |acc, (_, b)| acc.merged(b));
            s.push_str(&format!(
                "(+{} more blocks) {:>4} {:>4.1}%\n",
                self.blocks.len() - shown,
                rest.total(),
                100.0 * rest.total() as f64 / total as f64,
            ));
        }
        let t = &self.totals;
        s.push_str(&format!(
            "     total {:>11} 100.0 {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9} {:>8}\n",
            t.total(),
            t.pipeline,
            t.i_stall,
            t.d_stall,
            t.reconfig_stall,
            t.array_exec,
            t.writeback_tail,
            t.retired,
            t.invocations,
        ));
        s
    }

    /// Serializes the profile as one JSON object.
    pub fn to_json(&self) -> String {
        fn block_json(b: &BlockCycles) -> String {
            let mut o = ObjectWriter::new();
            for kind in AttributionKind::ALL {
                o.field_u64(kind.name(), b.get(kind));
            }
            o.field_u64("total", b.total());
            o.field_u64("retired", b.retired);
            o.field_u64("invocations", b.invocations);
            o.finish()
        }
        let mut blocks = String::from("[");
        for (i, (pc, b)) in self.blocks.iter().enumerate() {
            if i > 0 {
                blocks.push(',');
            }
            let mut o = ObjectWriter::new();
            o.field_u64("leader_pc", *pc as u64);
            o.field_raw("cycles", &block_json(b));
            blocks.push_str(&o.finish());
        }
        blocks.push(']');
        let mut o = ObjectWriter::new();
        o.field_u64("total_cycles", self.total_cycles());
        o.field_raw("totals", &block_json(&self.totals));
        o.field_raw("blocks", &blocks);
        o.finish()
    }
}

impl fmt::Display for CycleProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArrayInvoke, RetireKind};

    fn retire(pc: u32, base: u32, i: u32, d: u32, ends: bool) -> ProbeEvent {
        ProbeEvent::Retire {
            pc,
            kind: RetireKind::Alu,
            base_cycles: base,
            i_stall: i,
            d_stall: d,
            ends_block: ends,
        }
    }

    #[test]
    fn blocks_split_on_terminators() {
        let mut p = CycleProfiler::new();
        p.emit(retire(0x100, 1, 10, 0, false));
        p.emit(retire(0x104, 1, 0, 3, true)); // ends block led by 0x100
        p.emit(retire(0x200, 2, 0, 0, true)); // one-instruction block
        p.emit(retire(0x100, 1, 0, 0, false)); // back to the first block
        let profile = p.into_profile();
        assert_eq!(profile.blocks.len(), 2);
        let b100 = profile
            .blocks
            .iter()
            .find(|(pc, _)| *pc == 0x100)
            .unwrap()
            .1;
        assert_eq!(b100.pipeline, 3);
        assert_eq!(b100.i_stall, 10);
        assert_eq!(b100.d_stall, 3);
        assert_eq!(b100.retired, 3);
        assert_eq!(profile.totals.total(), 18);
        // Hottest first.
        assert_eq!(profile.blocks[0].0, 0x100);
    }

    #[test]
    fn array_cycles_charge_entry_block_and_reset_leader() {
        let mut p = CycleProfiler::new();
        p.emit(retire(0x100, 1, 0, 0, false));
        p.emit(ProbeEvent::ArrayInvoke(ArrayInvoke {
            entry_pc: 0x300,
            exit_pc: 0x340,
            covered: 9,
            executed: 9,
            loads: 0,
            stores: 0,
            rows: 3,
            spec_depth: 0,
            misspeculated: false,
            flushed: false,
            stall_cycles: 2,
            exec_cycles: 5,
            tail_cycles: 1,
        }));
        // Leader was reset: this retire starts a new block even though
        // the previous one never saw a terminator.
        p.emit(retire(0x340, 1, 0, 0, false));
        let profile = p.into_profile();
        let b300 = profile
            .blocks
            .iter()
            .find(|(pc, _)| *pc == 0x300)
            .unwrap()
            .1;
        assert_eq!(b300.reconfig_stall, 2);
        assert_eq!(b300.array_exec, 5);
        assert_eq!(b300.writeback_tail, 1);
        assert_eq!(b300.invocations, 1);
        assert!(profile.blocks.iter().any(|(pc, _)| *pc == 0x340));
        assert_eq!(profile.total_cycles(), 10);
        let json = profile.to_json();
        crate::json::parse(&json).unwrap();
        let table = profile.render(1);
        assert!(table.contains("more blocks"), "{table}");
    }

    #[test]
    fn merged_saturates() {
        let a = BlockCycles {
            pipeline: u64::MAX,
            ..BlockCycles::default()
        };
        let b = BlockCycles {
            pipeline: 5,
            retired: 1,
            ..BlockCycles::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.pipeline, u64::MAX);
        assert_eq!(m.retired, 1);
    }
}
