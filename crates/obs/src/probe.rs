//! The [`Probe`] trait and basic probe combinators.

use crate::event::ProbeEvent;

/// An event consumer monomorphized into the simulation loops.
///
/// Emit sites are written as
///
/// ```ignore
/// if P::ENABLED {
///     probe.emit(ProbeEvent::RcacheHit { pc });
/// }
/// ```
///
/// so with the default [`NullProbe`] (`ENABLED = false`) both the event
/// construction and the call compile away — the hot loop pays zero cost.
pub trait Probe {
    /// Whether this probe observes anything. Emit sites skip event
    /// construction entirely when this is `false`.
    const ENABLED: bool = true;

    /// Consumes one event.
    fn emit(&mut self, event: ProbeEvent);

    /// Flushes any buffered state (e.g. a pending retire batch). Called
    /// once when the instrumented run finishes.
    fn finish(&mut self) {}
}

/// The zero-cost default probe: observes nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _event: ProbeEvent) {}
}

/// Forwarding impl so a probe can be lent to a sub-run.
impl<P: Probe> Probe for &mut P {
    const ENABLED: bool = P::ENABLED;

    #[inline(always)]
    fn emit(&mut self, event: ProbeEvent) {
        (**self).emit(event);
    }

    fn finish(&mut self) {
        (**self).finish();
    }
}

/// Fan-out: both probes observe every event. Nest tuples for wider
/// fan-out. A `(RealSink, NullProbe)` pair keeps `ENABLED = true`.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline(always)]
    fn emit(&mut self, event: ProbeEvent) {
        if A::ENABLED {
            self.0.emit(event);
        }
        if B::ENABLED {
            self.1.emit(event);
        }
    }

    fn finish(&mut self) {
        self.0.finish();
        self.1.finish();
    }
}

/// Runtime-optional probe: `None` observes nothing. Unlike
/// [`NullProbe`] the decision is made per run, not per monomorphization,
/// so `ENABLED` must stay `true` and each emit pays one branch — the
/// combinator the CLI uses to compose independently-flagged sinks
/// without an arm per flag combination.
impl<P: Probe> Probe for Option<P> {
    const ENABLED: bool = P::ENABLED;

    #[inline(always)]
    fn emit(&mut self, event: ProbeEvent) {
        if let Some(p) = self {
            p.emit(event);
        }
    }

    fn finish(&mut self) {
        if let Some(p) = self {
            p.finish();
        }
    }
}

/// A probe that records every event in memory — the reference sink for
/// tests and for the NullProbe-equivalence property test.
#[derive(Debug, Clone, Default)]
pub struct RecordingProbe {
    /// All events in emission order.
    pub events: Vec<ProbeEvent>,
}

impl RecordingProbe {
    /// An empty recorder.
    pub fn new() -> RecordingProbe {
        RecordingProbe::default()
    }

    /// Number of recorded events of the given wire type name.
    pub fn count(&self, type_name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.type_name() == type_name)
            .count()
    }

    /// Total simulated cycles across all recorded events.
    pub fn total_cycles(&self) -> u64 {
        self.events
            .iter()
            .map(super::event::ProbeEvent::cycles)
            .sum()
    }
}

impl Probe for RecordingProbe {
    fn emit(&mut self, event: ProbeEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RetireKind;

    fn retire(pc: u32) -> ProbeEvent {
        ProbeEvent::Retire {
            pc,
            kind: RetireKind::Alu,
            base_cycles: 1,
            i_stall: 0,
            d_stall: 2,
            ends_block: false,
        }
    }

    #[test]
    fn fanout_reaches_both() {
        let mut pair = (RecordingProbe::new(), RecordingProbe::new());
        pair.emit(retire(0x100));
        pair.emit(ProbeEvent::RcacheMiss { pc: 0x100 });
        assert_eq!(pair.0.events.len(), 2);
        assert_eq!(pair.1.events.len(), 2);
        assert_eq!(pair.0.total_cycles(), 3);
    }

    #[test]
    fn null_probe_disables_enabled_flag() {
        const {
            assert!(!NullProbe::ENABLED);
            assert!(<(RecordingProbe, NullProbe)>::ENABLED);
            assert!(!<(NullProbe, NullProbe)>::ENABLED);
        }
    }
}
