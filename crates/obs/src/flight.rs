//! The always-on flight recorder and its watchdog-armed guard.
//!
//! A [`FlightRecorder`] is a fixed-capacity, allocation-free ring
//! buffer of [`ProbeEvent`]s. In steady state it remembers the last
//! `capacity` events and counts what it forgot, per event kind, so a
//! post-mortem knows both *what led up to* a failure and *how much*
//! history the window could not hold. [`FlightRecorder::dump`] replays
//! the retained window through the ordinary [`JsonlSink`], producing a
//! schema-v3 trace that the `dim trace` validator accepts unchanged.
//!
//! [`FlightGuard`] pairs a recorder with a [`Watchdog`]: the moment an
//! invariant trips, the guard snapshots a dump — the black box is
//! written while the wreckage is still warm, even if the simulation
//! then carries on or panics.

use crate::event::{ProbeEvent, EVENT_KINDS, EVENT_KIND_NAMES};
use crate::jsonl::JsonlSink;
use crate::probe::Probe;
use crate::watchdog::{Violation, Watchdog};

/// Fixed-capacity ring buffer of probe events with per-kind drop
/// accounting.
///
/// All storage is reserved at construction; `emit` never allocates, so
/// the recorder can run always-on at near-[`NullProbe`] cost.
///
/// [`NullProbe`]: crate::NullProbe
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    /// Event storage; grows by push until `capacity` (pre-reserved),
    /// then becomes a pure ring.
    ring: Vec<ProbeEvent>,
    /// Index of the oldest retained event once the ring is full.
    start: usize,
    /// Ring capacity (≥ 1).
    capacity: usize,
    /// Events ever emitted.
    total: u64,
    /// Overwritten (forgotten) events, indexed by
    /// [`ProbeEvent::type_index`].
    dropped: [u64; EVENT_KINDS],
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (clamped to at
    /// least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Vec::with_capacity(capacity),
            start: 0,
            capacity,
            total: 0,
            dropped: [0; EVENT_KINDS],
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events ever emitted (retained + dropped).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events currently retained.
    pub fn retained(&self) -> usize {
        self.ring.len()
    }

    /// Per-kind counts of events the ring forgot, indexed by
    /// [`ProbeEvent::type_index`].
    pub fn dropped(&self) -> &[u64; EVENT_KINDS] {
        &self.dropped
    }

    /// Total events the ring forgot.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<ProbeEvent> {
        let len = self.ring.len();
        (0..len)
            .map(|i| self.ring[(self.start + i) % len.max(1)])
            .collect()
    }

    /// Renders the retained window as a schema-v3 JSONL trace.
    ///
    /// The header carries the standard fields plus flight metadata
    /// (`flight_capacity`, `flight_total`, `flight_trimmed`, and a
    /// per-kind `dropped` object), so `dim trace` can report how much
    /// history the window lost. Events are replayed through the
    /// ordinary [`JsonlSink`], so batching, footer accounting, and the
    /// validator's pairing laws all hold.
    ///
    /// Truncation can behead an emission group — an `rcache_evict`
    /// whose displacing insert was forgotten, or a flush/invoke whose
    /// leading records were. Such orphans only ever appear at the very
    /// front of the window (retention is a contiguous suffix), so they
    /// are trimmed here and counted in `flight_trimmed`.
    pub fn dump(&self, workload: &str, bits_per_config: u64) -> String {
        let mut events = self.events();
        let mut trimmed = 0u64;
        while let Some(first) = events.first() {
            let orphan = match first {
                // Its displacing insert fell off the ring.
                ProbeEvent::RcacheEvict { .. } => true,
                // Its mispredict record fell off the ring.
                ProbeEvent::RcacheFlush { .. } => true,
                // Its fabric record (and for misspeculated runs the
                // mispredict and possibly flush too) fell off the ring.
                ProbeEvent::ArrayInvoke(_) => true,
                // A fabric record with its invoke still in the window is
                // whole — unless that invoke misspeculated or flushed, in
                // which case the mispredict/flush records that preceded
                // the fabric fell off and the whole pair must go.
                ProbeEvent::Fabric(_) => matches!(
                    events.get(1),
                    Some(ProbeEvent::ArrayInvoke(inv)) if inv.misspeculated || inv.flushed
                ),
                _ => false,
            };
            if !orphan {
                break;
            }
            events.remove(0);
            trimmed += 1;
        }

        let mut dropped_obj = String::from("{");
        let mut first_field = true;
        for (i, &count) in self.dropped.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if !first_field {
                dropped_obj.push(',');
            }
            first_field = false;
            dropped_obj.push_str(&format!("\"{}\":{count}", EVENT_KIND_NAMES[i]));
        }
        dropped_obj.push('}');

        let extra = [
            ("flight_capacity", format!("{}", self.capacity)),
            ("flight_total", format!("{}", self.total)),
            ("flight_trimmed", format!("{trimmed}")),
            ("dropped", dropped_obj),
        ];
        let mut sink = JsonlSink::with_header_extra(Vec::new(), workload, bits_per_config, &extra);
        for event in events {
            sink.emit(event);
        }
        let (bytes, error) = sink.into_inner();
        debug_assert!(error.is_none(), "writing to a Vec cannot fail");
        String::from_utf8(bytes).expect("JSONL output is UTF-8")
    }
}

impl Probe for FlightRecorder {
    #[inline]
    fn emit(&mut self, event: ProbeEvent) {
        self.total += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(event);
            return;
        }
        let slot = &mut self.ring[self.start];
        self.dropped[slot.type_index()] += 1;
        *slot = event;
        self.start += 1;
        if self.start == self.capacity {
            self.start = 0;
        }
    }
}

/// A flight recorder armed with an online [`Watchdog`].
///
/// Every event feeds the recorder first, then the watchdog; at the
/// first invariant trip the guard captures a dump of the window — which
/// necessarily ends with the offending event — before anything else can
/// disturb it.
#[derive(Debug, Clone)]
pub struct FlightGuard {
    recorder: FlightRecorder,
    watchdog: Watchdog,
    workload: String,
    bits_per_config: u64,
    trip_dump: Option<String>,
}

impl FlightGuard {
    /// A guard for `workload` with a `capacity`-event window and a
    /// watchdog sized to `cache_slots` reconfiguration-cache entries.
    /// `bits_per_config` stamps the dump header, like any trace.
    pub fn new(
        workload: &str,
        capacity: usize,
        cache_slots: usize,
        bits_per_config: u64,
    ) -> FlightGuard {
        FlightGuard {
            recorder: FlightRecorder::new(capacity),
            watchdog: Watchdog::new(cache_slots),
            workload: workload.to_string(),
            bits_per_config,
            trip_dump: None,
        }
    }

    /// The underlying recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The underlying watchdog (e.g. to [`seed_resident`] warm-start
    /// entries).
    ///
    /// [`seed_resident`]: Watchdog::seed_resident
    pub fn watchdog_mut(&mut self) -> &mut Watchdog {
        &mut self.watchdog
    }

    /// The first invariant violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.watchdog.violation()
    }

    /// The dump captured at the moment of the first trip.
    pub fn trip_dump(&self) -> Option<&str> {
        self.trip_dump.as_deref()
    }

    /// A dump of the window as retained right now (trip or not).
    pub fn dump(&self) -> String {
        self.recorder.dump(&self.workload, self.bits_per_config)
    }
}

impl Probe for FlightGuard {
    #[inline]
    fn emit(&mut self, event: ProbeEvent) {
        self.recorder.emit(event);
        if self.trip_dump.is_some() {
            return;
        }
        self.watchdog.emit(event);
        if self.watchdog.tripped() {
            self.trip_dump = Some(self.recorder.dump(&self.workload, self.bits_per_config));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RetireKind;
    use crate::replay::read_trace;

    fn retire(pc: u32) -> ProbeEvent {
        ProbeEvent::Retire {
            pc,
            kind: RetireKind::Alu,
            base_cycles: 1,
            i_stall: 0,
            d_stall: 0,
            ends_block: false,
        }
    }

    #[test]
    fn retains_everything_below_capacity() {
        let mut rec = FlightRecorder::new(8);
        for pc in 0..5u32 {
            rec.emit(retire(pc * 4));
        }
        assert_eq!(rec.total(), 5);
        assert_eq!(rec.retained(), 5);
        assert_eq!(rec.total_dropped(), 0);
        let events = rec.events();
        assert!(matches!(events[0], ProbeEvent::Retire { pc: 0, .. }));
        assert!(matches!(events[4], ProbeEvent::Retire { pc: 16, .. }));
    }

    #[test]
    fn wraps_keeping_the_newest_window() {
        let mut rec = FlightRecorder::new(3);
        for pc in 0..10u32 {
            rec.emit(retire(pc));
        }
        assert_eq!(rec.total(), 10);
        assert_eq!(rec.retained(), 3);
        assert_eq!(rec.total_dropped(), 7);
        assert_eq!(rec.dropped()[0], 7); // all drops were retires
        let pcs: Vec<u32> = rec
            .events()
            .iter()
            .map(|e| match e {
                ProbeEvent::Retire { pc, .. } => *pc,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pcs, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut rec = FlightRecorder::new(0);
        rec.emit(retire(0));
        rec.emit(retire(4));
        assert_eq!(rec.capacity(), 1);
        assert_eq!(rec.retained(), 1);
        assert_eq!(rec.total_dropped(), 1);
    }

    #[test]
    fn dump_is_a_valid_trace_with_flight_header() {
        let mut rec = FlightRecorder::new(4);
        for pc in 0..9u32 {
            rec.emit(retire(0x100 + pc * 4));
        }
        rec.emit(ProbeEvent::RcacheMiss { pc: 0x200 });
        let dump = rec.dump("unit", 256);
        let trace = read_trace(&dump).expect("dump validates");
        assert_eq!(trace.header.workload, "unit");
        assert!(dump.contains("\"flight_capacity\":4"), "{dump}");
        assert!(dump.contains("\"flight_total\":10"), "{dump}");
        assert!(dump.contains("\"dropped\":{\"retire\":6}"), "{dump}");
    }

    #[test]
    fn dump_trims_front_orphans() {
        // A full mispredict → flush → fabric → invoke group, then a
        // retire to push the mispredict and flush off a small ring. The
        // surviving fabric/invoke pair is orphaned (its flush is gone)
        // and must be trimmed too.
        let group = [
            ProbeEvent::SpecMispredict {
                region_pc: 0x100,
                region_len: 4,
                branch_pc: 0x108,
                penalty_cycles: 2,
            },
            ProbeEvent::RcacheFlush { pc: 0x100, len: 4 },
            ProbeEvent::Fabric(crate::event::FabricUtil {
                entry_pc: 0x100,
                rows: 1,
                exec_thirds: 3,
                capacity_thirds: 33,
                alu_busy_thirds: 2,
                mult_busy_thirds: 0,
                ldst_busy_thirds: 0,
                issued_ops: 2,
                squashed_ops: 2,
                residual_cycles: 3,
                writeback_writes: 1,
                writeback_slots: 16,
            }),
            ProbeEvent::ArrayInvoke(crate::event::ArrayInvoke {
                entry_pc: 0x100,
                exit_pc: 0x120,
                covered: 4,
                executed: 2,
                loads: 0,
                stores: 0,
                rows: 1,
                spec_depth: 1,
                misspeculated: true,
                flushed: true,
                stall_cycles: 1,
                exec_cycles: 4,
                tail_cycles: 0,
            }),
        ];
        let mut rec = FlightRecorder::new(3);
        for e in group {
            rec.emit(e);
        }
        // Push the mispredict and flush off: window = [fabric, invoke,
        // retire].
        rec.emit(retire(0x200));
        let dump = rec.dump("unit", 256);
        let trace = read_trace(&dump).expect("trimmed dump validates");
        assert!(dump.contains("\"flight_trimmed\":2"), "{dump}");
        assert_eq!(trace.summary.array_invocations, 0);
    }

    #[test]
    fn watchdog_drill_trips_and_captures_offending_event() {
        // Satellite 5: synthesize the violation the online watchdog
        // exists to catch — an rcache hit for a PC no insert (and no
        // warm-start seed) ever made resident — by driving the guard
        // through the probe interface directly, exactly as an
        // instrumented System would.
        let mut guard = FlightGuard::new("drill", 16, 4, 256);
        guard.emit(retire(0x100));
        guard.emit(ProbeEvent::RcacheInsert {
            pc: 0x100,
            len: 4,
            evicted: None,
        });
        guard.emit(ProbeEvent::RcacheHit { pc: 0xdead, len: 4 });
        guard.emit(retire(0x104)); // post-trip traffic must not disturb the dump

        let violation = guard.violation().expect("watchdog tripped");
        assert_eq!(violation.invariant, "rcache-hit-without-insert");
        assert!(
            violation.detail.contains("0x0000dead"),
            "{}",
            violation.detail
        );
        assert!(matches!(
            violation.event,
            ProbeEvent::RcacheHit { pc: 0xdead, .. }
        ));

        let dump = guard.trip_dump().expect("auto-dump captured at trip");
        let trace = read_trace(dump).expect("auto-dump validates");
        // The offending event is the last record before the footer.
        let hit_line = dump
            .lines()
            .rev()
            .find(|l| l.contains("\"type\":\"rcache_hit\""))
            .expect("offending hit present in dump");
        assert!(hit_line.contains("\"pc\":57005"), "{hit_line}"); // 0xdead
        assert_eq!(trace.header.workload, "drill");
    }

    #[test]
    fn guard_without_violation_reports_none() {
        let mut guard = FlightGuard::new("quiet", 8, 4, 256);
        guard.emit(retire(0x100));
        guard.emit(ProbeEvent::RcacheMiss { pc: 0x100 });
        assert!(guard.violation().is_none());
        assert!(guard.trip_dump().is_none());
        let dump = guard.dump();
        assert!(read_trace(&dump).is_ok());
    }

    #[test]
    fn seeded_guard_accepts_warm_start_hits() {
        let mut guard = FlightGuard::new("warm", 8, 4, 256);
        guard.watchdog_mut().seed_resident(0x100);
        guard.emit(ProbeEvent::RcacheHit { pc: 0x100, len: 4 });
        assert!(guard.violation().is_none());
    }
}
