//! Counters, log-scaled histograms, and interval snapshots.

use crate::event::ProbeEvent;
use crate::json::ObjectWriter;
use crate::probe::Probe;
use std::collections::HashMap;
use std::fmt;

/// Number of buckets in a [`LogHistogram`]: one for zero plus one per
/// power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A power-of-two histogram of `u64` samples.
///
/// Bucket 0 counts zero-valued samples; bucket `i >= 1` counts samples
/// in `[2^(i-1), 2^i)`. Alongside the buckets it tracks count, sum,
/// min and max so means stay exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: 0 for 0, `ilog2(v) + 1` otherwise.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            value.ilog2() as usize + 1
        }
    }

    /// Lower bound (inclusive) of bucket `i`.
    pub fn bucket_low(i: usize) -> u64 {
        match i {
            0 => 0,
            1 => 1,
            i => 1u64 << (i - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram's samples into this one.
    ///
    /// Equivalent to having recorded every one of `other`'s samples
    /// here: buckets add pairwise, count/sum accumulate (sum saturates,
    /// like [`record`](LogHistogram::record)), min/max widen. Merging an
    /// empty histogram is a no-op and leaves min/max untouched.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (b, &n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(n);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// `(bucket_low, count)` for every non-empty bucket, low to high.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_low(i), n))
    }

    /// Serializes the histogram as a JSON object fragment.
    pub fn to_json(&self) -> String {
        let mut buckets = String::from("[");
        for (i, (low, n)) in self.nonzero_buckets().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            buckets.push_str(&format!("[{low},{n}]"));
        }
        buckets.push(']');
        let mut o = ObjectWriter::new();
        o.field_u64("count", self.count());
        o.field_u64("sum", self.sum());
        o.field_u64("min", self.min());
        o.field_u64("max", self.max());
        o.field_f64("mean", self.mean());
        o.field_raw("buckets", &buckets);
        o.finish()
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "(empty)");
        }
        writeln!(
            f,
            "n={} min={} mean={:.1} max={}",
            self.count,
            self.min(),
            self.mean(),
            self.max
        )?;
        let widest = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        for (low, n) in self.nonzero_buckets() {
            let bar = "#".repeat(((n * 40).div_ceil(widest)) as usize);
            writeln!(f, "  {low:>12} | {n:>10} {bar}")?;
        }
        Ok(())
    }
}

/// Aggregated counters for one cycle interval (or for the whole run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalSnapshot {
    /// Zero-based interval index.
    pub index: u64,
    /// First cycle of the interval (inclusive).
    pub start_cycle: u64,
    /// Cycle boundary the interval ended on (exclusive).
    pub end_cycle: u64,
    /// Instructions retired on the pipeline during the interval.
    pub retired: u64,
    /// Array invocations during the interval.
    pub invocations: u64,
    /// Reconfiguration-cache hits during the interval.
    pub rcache_hits: u64,
    /// Reconfiguration-cache misses during the interval.
    pub rcache_misses: u64,
    /// Misspeculated invocations during the interval.
    pub misspeculations: u64,
}

impl IntervalSnapshot {
    /// Serializes the snapshot as a JSON object fragment.
    pub fn to_json(&self) -> String {
        let mut o = ObjectWriter::new();
        o.field_u64("index", self.index);
        o.field_u64("start_cycle", self.start_cycle);
        o.field_u64("end_cycle", self.end_cycle);
        o.field_u64("retired", self.retired);
        o.field_u64("invocations", self.invocations);
        o.field_u64("rcache_hits", self.rcache_hits);
        o.field_u64("rcache_misses", self.rcache_misses);
        o.field_u64("misspeculations", self.misspeculations);
        o.finish()
    }
}

/// A [`Probe`] that aggregates events into counters and histograms.
///
/// With a non-zero snapshot interval it additionally cuts an
/// [`IntervalSnapshot`] every `interval` simulated cycles, so warm-up
/// and phase behavior stay visible after the run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    /// Pipeline instructions retired.
    pub retired: u64,
    /// Pipeline base cycles (issue + structural penalties).
    pub pipeline_base_cycles: u64,
    /// Instruction-cache stall cycles.
    pub i_stall_cycles: u64,
    /// Data-cache stall cycles on the pipeline side.
    pub d_stall_cycles: u64,
    /// Translator regions opened.
    pub trans_begins: u64,
    /// Configurations committed by the translator.
    pub trans_commits: u64,
    /// Committed configurations that were interrupted prefixes.
    pub trans_partials: u64,
    /// Reconfiguration-cache hits.
    pub rcache_hits: u64,
    /// Reconfiguration-cache misses.
    pub rcache_misses: u64,
    /// Reconfiguration-cache insertions.
    pub rcache_inserts: u64,
    /// Insertions that evicted an entry.
    pub rcache_evictions: u64,
    /// Evictions whose victim had served at least one lookup hit.
    pub rcache_evicted_live: u64,
    /// Evictions whose victim was never reused after insertion.
    pub rcache_evicted_dead: u64,
    /// Configurations flushed after misspeculation.
    pub rcache_flushes: u64,
    /// Array invocations.
    pub invocations: u64,
    /// Misspeculated invocations.
    pub misspeculations: u64,
    /// Cycles attributed to the array (stall + exec + tail).
    pub array_cycles: u64,

    /// Instructions covered per committed configuration.
    pub config_coverage: LogHistogram,
    /// Speculation depth actually executed per invocation.
    pub spec_depth: LogHistogram,
    /// Lookups between consecutive hits on the same configuration.
    pub rcache_reuse_distance: LogHistogram,
    /// Total cycles per invocation.
    pub invocation_cycles: LogHistogram,

    /// Completed interval snapshots (empty when snapshots are disabled).
    pub snapshots: Vec<IntervalSnapshot>,

    interval: u64,
    cycles_seen: u64,
    current: IntervalSnapshot,
    /// Lookup serial per configuration PC, for reuse distance.
    last_lookup: HashMap<u32, u64>,
    lookup_serial: u64,
}

impl MetricsRegistry {
    /// A registry with interval snapshots disabled.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// A registry that cuts a snapshot every `interval_cycles` simulated
    /// cycles (0 disables snapshots).
    pub fn with_interval(interval_cycles: u64) -> MetricsRegistry {
        MetricsRegistry {
            interval: interval_cycles,
            ..MetricsRegistry::default()
        }
    }

    /// Total simulated cycles observed.
    pub fn cycles_seen(&self) -> u64 {
        self.cycles_seen
    }

    /// The in-progress interval (counters since the last boundary).
    pub fn current_interval(&self) -> &IntervalSnapshot {
        &self.current
    }

    fn advance_cycles(&mut self, cycles: u64) {
        self.cycles_seen += cycles;
        if self.interval == 0 {
            return;
        }
        // An event may straddle several boundaries; its counters land in
        // the interval it started in, matching how a trace reader would
        // bucket whole events.
        while self.cycles_seen >= (self.current.index + 1) * self.interval {
            let boundary = (self.current.index + 1) * self.interval;
            let mut done = std::mem::take(&mut self.current);
            done.end_cycle = boundary;
            self.current.index = done.index + 1;
            self.current.start_cycle = boundary;
            self.snapshots.push(done);
        }
    }

    /// Renders a human-readable summary of every metric.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "pipeline: {} retired, {} base + {} i-stall + {} d-stall cycles\n",
            self.retired, self.pipeline_base_cycles, self.i_stall_cycles, self.d_stall_cycles
        ));
        s.push_str(&format!(
            "translator: {} regions, {} commits ({} partial)\n",
            self.trans_begins, self.trans_commits, self.trans_partials
        ));
        s.push_str(&format!(
            "rcache: {} hits / {} misses, {} inserts ({} evictions: {} live, {} dead), {} flushes\n",
            self.rcache_hits,
            self.rcache_misses,
            self.rcache_inserts,
            self.rcache_evictions,
            self.rcache_evicted_live,
            self.rcache_evicted_dead,
            self.rcache_flushes
        ));
        s.push_str(&format!(
            "array: {} invocations ({} misspeculated), {} cycles\n",
            self.invocations, self.misspeculations, self.array_cycles
        ));
        for (name, h) in [
            ("config coverage (instructions)", &self.config_coverage),
            ("speculation depth", &self.spec_depth),
            (
                "rcache reuse distance (lookups)",
                &self.rcache_reuse_distance,
            ),
            ("invocation cycles", &self.invocation_cycles),
        ] {
            s.push_str(&format!("{name}: {h}"));
        }
        if !self.snapshots.is_empty() {
            s.push_str(&format!(
                "{} interval snapshots of {} cycles each\n",
                self.snapshots.len(),
                self.interval
            ));
        }
        s
    }

    /// Serializes all metrics as one JSON object.
    pub fn to_json(&self) -> String {
        let mut o = ObjectWriter::new();
        o.field_u64("retired", self.retired);
        o.field_u64("pipeline_base_cycles", self.pipeline_base_cycles);
        o.field_u64("i_stall_cycles", self.i_stall_cycles);
        o.field_u64("d_stall_cycles", self.d_stall_cycles);
        o.field_u64("trans_begins", self.trans_begins);
        o.field_u64("trans_commits", self.trans_commits);
        o.field_u64("trans_partials", self.trans_partials);
        o.field_u64("rcache_hits", self.rcache_hits);
        o.field_u64("rcache_misses", self.rcache_misses);
        o.field_u64("rcache_inserts", self.rcache_inserts);
        o.field_u64("rcache_evictions", self.rcache_evictions);
        o.field_u64("rcache_evicted_live", self.rcache_evicted_live);
        o.field_u64("rcache_evicted_dead", self.rcache_evicted_dead);
        o.field_u64("rcache_flushes", self.rcache_flushes);
        o.field_u64("invocations", self.invocations);
        o.field_u64("misspeculations", self.misspeculations);
        o.field_u64("array_cycles", self.array_cycles);
        o.field_raw("config_coverage", &self.config_coverage.to_json());
        o.field_raw("spec_depth", &self.spec_depth.to_json());
        o.field_raw(
            "rcache_reuse_distance",
            &self.rcache_reuse_distance.to_json(),
        );
        o.field_raw("invocation_cycles", &self.invocation_cycles.to_json());
        let mut snaps = String::from("[");
        for (i, snap) in self.snapshots.iter().enumerate() {
            if i > 0 {
                snaps.push(',');
            }
            snaps.push_str(&snap.to_json());
        }
        snaps.push(']');
        o.field_raw("snapshots", &snaps);
        o.finish()
    }

    /// Accumulates another registry's totals into this one (saturating),
    /// for aggregating per-run registries into a suite-wide report.
    ///
    /// Scalar counters add saturatingly and histograms merge sample for
    /// sample. Interval snapshots and reuse-distance tracking state are
    /// per-run timelines and are deliberately *not* merged — the merged
    /// registry keeps only its own.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        fn acc(total: &mut u64, add: u64) {
            *total = total.saturating_add(add);
        }
        acc(&mut self.retired, other.retired);
        acc(&mut self.pipeline_base_cycles, other.pipeline_base_cycles);
        acc(&mut self.i_stall_cycles, other.i_stall_cycles);
        acc(&mut self.d_stall_cycles, other.d_stall_cycles);
        acc(&mut self.trans_begins, other.trans_begins);
        acc(&mut self.trans_commits, other.trans_commits);
        acc(&mut self.trans_partials, other.trans_partials);
        acc(&mut self.rcache_hits, other.rcache_hits);
        acc(&mut self.rcache_misses, other.rcache_misses);
        acc(&mut self.rcache_inserts, other.rcache_inserts);
        acc(&mut self.rcache_evictions, other.rcache_evictions);
        acc(&mut self.rcache_evicted_live, other.rcache_evicted_live);
        acc(&mut self.rcache_evicted_dead, other.rcache_evicted_dead);
        acc(&mut self.rcache_flushes, other.rcache_flushes);
        acc(&mut self.invocations, other.invocations);
        acc(&mut self.misspeculations, other.misspeculations);
        acc(&mut self.array_cycles, other.array_cycles);
        acc(&mut self.cycles_seen, other.cycles_seen);
        self.config_coverage.merge(&other.config_coverage);
        self.spec_depth.merge(&other.spec_depth);
        self.rcache_reuse_distance
            .merge(&other.rcache_reuse_distance);
        self.invocation_cycles.merge(&other.invocation_cycles);
    }

    fn note_lookup(&mut self, pc: u32, hit: bool) {
        self.lookup_serial += 1;
        if hit {
            if let Some(prev) = self.last_lookup.insert(pc, self.lookup_serial) {
                self.rcache_reuse_distance.record(self.lookup_serial - prev);
            } else {
                // First hit after insertion: distance from insertion
                // unknown, record as zero-distance warm hit.
                self.rcache_reuse_distance.record(0);
            }
        }
    }
}

impl Probe for MetricsRegistry {
    fn emit(&mut self, event: ProbeEvent) {
        let cycles = event.cycles();
        match event {
            ProbeEvent::Retire {
                base_cycles,
                i_stall,
                d_stall,
                ..
            } => {
                self.retired += 1;
                self.pipeline_base_cycles += base_cycles as u64;
                self.i_stall_cycles += i_stall as u64;
                self.d_stall_cycles += d_stall as u64;
                self.current.retired += 1;
            }
            ProbeEvent::TransBegin { .. } => self.trans_begins += 1,
            ProbeEvent::TransCommit {
                instructions,
                partial,
                ..
            } => {
                self.trans_commits += 1;
                if partial {
                    self.trans_partials += 1;
                }
                self.config_coverage.record(instructions as u64);
            }
            ProbeEvent::RcacheHit { pc, .. } => {
                self.rcache_hits += 1;
                self.current.rcache_hits += 1;
                self.note_lookup(pc, true);
            }
            ProbeEvent::RcacheMiss { pc } => {
                self.rcache_misses += 1;
                self.current.rcache_misses += 1;
                self.note_lookup(pc, false);
            }
            ProbeEvent::RcacheInsert { evicted, .. } => {
                self.rcache_inserts += 1;
                if evicted.is_some() {
                    self.rcache_evictions += 1;
                }
            }
            ProbeEvent::RcacheFlush { pc, .. } => {
                self.rcache_flushes += 1;
                self.last_lookup.remove(&pc);
            }
            ProbeEvent::RcacheEvict { pc, uses, .. } => {
                if uses > 0 {
                    self.rcache_evicted_live += 1;
                } else {
                    self.rcache_evicted_dead += 1;
                }
                self.last_lookup.remove(&pc);
            }
            ProbeEvent::SpecMispredict { .. } => {}
            ProbeEvent::Fabric(_) => {}
            ProbeEvent::StreamTag { .. } => {}
            ProbeEvent::ArrayInvoke(inv) => {
                self.invocations += 1;
                self.array_cycles += inv.total_cycles();
                self.current.invocations += 1;
                if inv.misspeculated {
                    self.misspeculations += 1;
                    self.current.misspeculations += 1;
                }
                self.spec_depth.record(inv.spec_depth as u64);
                self.invocation_cycles.record(inv.total_cycles());
            }
        }
        self.advance_cycles(cycles);
    }

    fn finish(&mut self) {
        // Close the trailing partial interval so the snapshots tile the
        // whole observed timeline.
        if self.interval > 0
            && (self.cycles_seen > self.current.start_cycle
                || self.current.retired > 0
                || self.current.invocations > 0
                || self.current.rcache_hits > 0
                || self.current.rcache_misses > 0)
        {
            let mut done = std::mem::take(&mut self.current);
            done.end_cycle = self.cycles_seen;
            self.current.index = done.index + 1;
            self.current.start_cycle = self.cycles_seen;
            self.snapshots.push(done);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArrayInvoke, RetireKind};

    fn retire(cycles: u32) -> ProbeEvent {
        ProbeEvent::Retire {
            pc: 0x100,
            kind: RetireKind::Alu,
            base_cycles: cycles,
            i_stall: 0,
            d_stall: 0,
            ends_block: false,
        }
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(7), 3);
        assert_eq!(LogHistogram::bucket_index(8), 4);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_low(0), 0);
        assert_eq!(LogHistogram::bucket_low(1), 1);
        assert_eq!(LogHistogram::bucket_low(4), 8);
    }

    #[test]
    fn histogram_stats() {
        let mut h = LogHistogram::new();
        assert_eq!(h.min(), 0);
        for v in [0, 1, 3, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 12);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 8);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[4], 1);
        assert_eq!(h.nonzero_buckets().count(), 4);
    }

    #[test]
    fn interval_rollover() {
        let mut m = MetricsRegistry::with_interval(10);
        // 4 retires of 3 cycles each: boundary at 10 crossed mid-way.
        for _ in 0..4 {
            m.emit(retire(3));
        }
        assert_eq!(m.cycles_seen(), 12);
        assert_eq!(m.snapshots.len(), 1);
        let s = &m.snapshots[0];
        assert_eq!(s.index, 0);
        assert_eq!(s.start_cycle, 0);
        assert_eq!(s.end_cycle, 10);
        assert_eq!(s.retired, 4); // the straddling event lands in interval 0
        assert_eq!(m.current_interval().index, 1);
        assert_eq!(m.current_interval().start_cycle, 10);

        // One giant event crosses several boundaries at once.
        m.emit(retire(35));
        assert_eq!(m.snapshots.len(), 4);
        assert_eq!(m.snapshots[3].end_cycle, 40);
        m.finish();
        assert_eq!(m.snapshots.len(), 5);
        assert_eq!(m.snapshots[4].end_cycle, 47);
        assert_eq!(m.snapshots.iter().map(|s| s.retired).sum::<u64>(), 5);
    }

    #[test]
    fn histogram_merge_matches_sequential_recording_at_bucket_edges() {
        // Samples sitting exactly on power-of-two bucket boundaries —
        // the off-by-one-prone cases (0, 1, 2^k, 2^k - 1, u64::MAX).
        let edges_a = [0u64, 1, 2, 3, 4];
        let edges_b = [7u64, 8, (1 << 32) - 1, 1 << 32, u64::MAX];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut reference = LogHistogram::new();
        for v in edges_a {
            a.record(v);
            reference.record(v);
        }
        for v in edges_b {
            b.record(v);
            reference.record(v);
        }
        a.merge(&b);
        assert_eq!(a, reference);
        assert_eq!(a.buckets()[0], 1); // the lone zero
        assert_eq!(a.buckets()[64], 1); // u64::MAX keeps the top bucket
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), u64::MAX);
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let mut h = LogHistogram::new();
        h.record(5);
        let before = h.clone();
        h.merge(&LogHistogram::new()); // empty rhs: no-op, min untouched
        assert_eq!(h, before);
        let mut empty = LogHistogram::new();
        empty.merge(&before); // empty lhs: becomes rhs
        assert_eq!(empty, before);
        let mut both = LogHistogram::new();
        both.merge(&LogHistogram::new());
        assert_eq!(both.count(), 0);
        assert_eq!(both.min(), 0); // still reports 0, not the MAX sentinel
    }

    #[test]
    fn registry_merge_saturates_counters() {
        let mut a = MetricsRegistry::new();
        a.retired = u64::MAX - 1;
        a.invocations = 3;
        let mut b = MetricsRegistry::new();
        b.retired = 5;
        b.invocations = 4;
        b.config_coverage.record(7);
        b.snapshots.push(IntervalSnapshot::default());
        a.merge(&b);
        assert_eq!(a.retired, u64::MAX); // saturated, not wrapped
        assert_eq!(a.invocations, 7);
        assert_eq!(a.config_coverage.count(), 1);
        assert!(a.snapshots.is_empty()); // per-run timelines stay put
    }

    #[test]
    fn histogram_merge_saturates_sum() {
        let mut a = LogHistogram::new();
        a.record(u64::MAX);
        let mut b = LogHistogram::new();
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn empty_snapshot_and_registry_serialize_roundtrip() {
        let snap_json = IntervalSnapshot::default().to_json();
        let v = crate::json::parse(&snap_json).unwrap();
        for key in [
            "index",
            "start_cycle",
            "end_cycle",
            "retired",
            "invocations",
            "rcache_hits",
            "rcache_misses",
            "misspeculations",
        ] {
            assert_eq!(
                v.get(key).and_then(super::super::json::JsonValue::as_u64),
                Some(0),
                "{key}"
            );
        }

        let reg_json = MetricsRegistry::new().to_json();
        let v = crate::json::parse(&reg_json).unwrap();
        assert_eq!(
            v.get("retired")
                .and_then(super::super::json::JsonValue::as_u64),
            Some(0)
        );
        let cov = v.get("config_coverage").unwrap();
        assert_eq!(
            cov.get("count")
                .and_then(super::super::json::JsonValue::as_u64),
            Some(0)
        );
        assert_eq!(
            cov.get("min")
                .and_then(super::super::json::JsonValue::as_u64),
            Some(0)
        );
    }

    #[test]
    fn reuse_distance_counts_lookups_between_hits() {
        let mut m = MetricsRegistry::new();
        m.emit(ProbeEvent::RcacheHit { pc: 0x10, len: 4 }); // warm hit → 0
        m.emit(ProbeEvent::RcacheMiss { pc: 0x20 });
        m.emit(ProbeEvent::RcacheMiss { pc: 0x24 });
        m.emit(ProbeEvent::RcacheHit { pc: 0x10, len: 4 }); // 3 lookups since last
        assert_eq!(m.rcache_reuse_distance.count(), 2);
        assert_eq!(m.rcache_reuse_distance.max(), 3);
        assert_eq!(m.rcache_hits, 2);
        assert_eq!(m.rcache_misses, 2);
    }

    #[test]
    fn evictions_split_live_from_dead() {
        let mut m = MetricsRegistry::new();
        m.emit(ProbeEvent::RcacheEvict {
            pc: 0x10,
            len: 4,
            uses: 2,
        });
        m.emit(ProbeEvent::RcacheEvict {
            pc: 0x20,
            len: 6,
            uses: 0,
        });
        assert_eq!(m.rcache_evicted_live, 1);
        assert_eq!(m.rcache_evicted_dead, 1);
        let mut other = MetricsRegistry::new();
        other.rcache_evicted_live = u64::MAX;
        other.merge(&m);
        assert_eq!(other.rcache_evicted_live, u64::MAX); // saturated
        assert_eq!(other.rcache_evicted_dead, 1);
    }

    #[test]
    fn registry_aggregates_invocations() {
        let mut m = MetricsRegistry::new();
        m.emit(ProbeEvent::ArrayInvoke(ArrayInvoke {
            entry_pc: 4,
            exit_pc: 8,
            covered: 10,
            executed: 10,
            loads: 0,
            stores: 0,
            rows: 2,
            spec_depth: 2,
            misspeculated: true,
            flushed: false,
            stall_cycles: 1,
            exec_cycles: 5,
            tail_cycles: 2,
        }));
        assert_eq!(m.invocations, 1);
        assert_eq!(m.misspeculations, 1);
        assert_eq!(m.array_cycles, 8);
        assert_eq!(m.spec_depth.max(), 2);
        assert_eq!(m.invocation_cycles.sum(), 8);
        let json = m.to_json();
        crate::json::parse(&json).unwrap();
    }
}
