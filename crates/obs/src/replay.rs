//! Parsing, validation, and summarization of JSONL traces.
//!
//! [`read_trace`] validates a trace written by
//! [`JsonlSink`](crate::JsonlSink): the first line must be a `header`
//! whose `schema_version` is not newer than [`SCHEMA_VERSION`], every
//! line must be well-formed JSON of a known record type, and the
//! `footer` (when present) must agree with the observed event count.
//! Unknown *fields* inside a known record are ignored, per the schema
//! compatibility policy. Version-1 traces remain readable; `telemetry`
//! records (added in version 2) are accepted only when the header
//! declares version 2 or newer, and never count as events. Likewise the
//! `rcache_evict` and `mispredict` records (added in version 3) are
//! rejected in traces whose header declares an older version, and the
//! `len` region-id field on rcache records defaults to 0 when absent.
//!
//! The returned [`TraceSummary`] reconstructs every accelerator-side
//! counter from the events alone — the round-trip test in `dim-core`
//! asserts it equals the live `DimStats` field for field.

use crate::event::{ArrayInvoke, FabricUtil, ProbeEvent, RetireKind, SCHEMA_VERSION};
use crate::json::{self, JsonValue};
use std::fmt;

/// A trace-reading error, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line number (0 for whole-trace errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace error: {}", self.message)
        } else {
            write!(f, "trace error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ReplayError {}

/// The `header` record of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Schema version the trace was written with.
    pub schema_version: u32,
    /// Workload name recorded at trace time.
    pub workload: String,
    /// Stored bits per cache entry (drives the cache-bit counters).
    pub bits_per_config: u64,
    /// Per-kind counts of events a flight-recorder window dropped
    /// before this trace was dumped (empty for ordinary full traces).
    pub dropped: Vec<(String, u64)>,
}

/// One parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// The leading metadata record.
    Header(TraceHeader),
    /// A coalesced run of pipeline activity.
    RetireBatch {
        /// Instructions retired in the run.
        count: u64,
        /// Summed pipeline base cycles.
        base_cycles: u64,
        /// Summed instruction-cache stall cycles.
        i_stall: u64,
        /// Summed data-cache stall cycles.
        d_stall: u64,
        /// Reconfiguration-cache misses interleaved with the run.
        rcache_misses: u64,
        /// Retire counts per instruction kind.
        kinds: Vec<(RetireKind, u64)>,
    },
    /// Any non-batched event.
    Event(ProbeEvent),
    /// A sink-emitted host-progress sample (schema version 2).
    ///
    /// Not a probe event: excluded from the footer's `events` total and
    /// rejected when the header declares schema version 1.
    Telemetry {
        /// Zero-based sample index.
        seq: u64,
        /// Cumulative simulated cycles at the sample point.
        sim_cycles: u64,
        /// Cumulative retired instructions at the sample point.
        retired: u64,
        /// Cumulative probe events at the sample point.
        events: u64,
        /// Host wall-clock nanoseconds since the sink was created.
        host_nanos: u64,
    },
    /// The trailing integrity record.
    Footer {
        /// Total events the sink observed.
        events: u64,
    },
}

/// Accelerator- and pipeline-side counters reconstructed from a trace.
///
/// The first fifteen fields mirror `DimStats` in `dim-core` name for
/// name, and the trailing `rcache_evictions_live`/`rcache_evictions_dead`
/// pair mirrors the equally named `DimStats` counters (the crates
/// deliberately do not depend on each other in that direction, so the
/// round-trip test compares field by field).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Times a configuration executed on the array.
    pub array_invocations: u64,
    /// Instructions retired through the array.
    pub array_instructions: u64,
    /// Array execution cycles.
    pub array_exec_cycles: u64,
    /// Reconfiguration stall cycles.
    pub reconfig_stall_cycles: u64,
    /// Non-overlapped write-back cycles.
    pub writeback_tail_cycles: u64,
    /// Loads issued by the array.
    pub array_loads: u64,
    /// Stores issued by the array.
    pub array_stores: u64,
    /// Invocations with every speculation correct.
    pub full_hits: u64,
    /// Misspeculated invocations.
    pub misspeculations: u64,
    /// Configurations flushed after misspeculation.
    pub config_flushes: u64,
    /// Configurations built and inserted.
    pub configs_built: u64,
    /// Instructions examined by the detection hardware.
    pub translated_instructions: u64,
    /// Bits read from the reconfiguration cache.
    pub cache_bits_read: u64,
    /// Bits written to the reconfiguration cache.
    pub cache_bits_written: u64,
    /// Summed occupied rows over invocations.
    pub array_occupied_rows: u64,

    /// Pipeline instructions retired.
    pub retired: u64,
    /// Pipeline cycles (base + i-stall + d-stall).
    pub pipeline_cycles: u64,
    /// Reconfiguration-cache hits.
    pub rcache_hits: u64,
    /// Reconfiguration-cache misses.
    pub rcache_misses: u64,
    /// Insertions that displaced an entry.
    pub rcache_evictions: u64,
    /// Evictions whose victim had served at least one lookup hit
    /// (schema v3; 0 in older traces).
    pub rcache_evictions_live: u64,
    /// Evictions whose victim was never reused after insertion
    /// (schema v3; 0 in older traces).
    pub rcache_evictions_dead: u64,

    /// `fabric` records seen (schema v4; 0 in older traces — one per
    /// array invocation when present). The `fabric_*` aggregates below
    /// are likewise all-zero for pre-v4 traces.
    pub fabric_records: u64,
    /// Σ rows traversed.
    pub fabric_rows: u64,
    /// Σ row-window thirds (pre-rounding execution time).
    pub fabric_exec_thirds: u64,
    /// Σ available unit-thirds across classes (0 on infinite shapes).
    pub fabric_capacity_thirds: u64,
    /// Σ busy unit-thirds on ALU units.
    pub fabric_alu_busy_thirds: u64,
    /// Σ busy unit-thirds on multiplier units.
    pub fabric_mult_busy_thirds: u64,
    /// Σ busy unit-thirds on load/store units.
    pub fabric_ldst_busy_thirds: u64,
    /// Σ operations confirmed.
    pub fabric_issued_ops: u64,
    /// Σ operations squashed by misspeculation.
    pub fabric_squashed_ops: u64,
    /// Σ execution cycles outside the row model (memory stalls +
    /// misspeculation penalties).
    pub fabric_residual_cycles: u64,
    /// Σ write-backs performed.
    pub fabric_writeback_writes: u64,
    /// Σ write-back port-slots available.
    pub fabric_writeback_slots: u64,

    /// `stream_tag` records seen (schema v5; 0 in older traces) — one
    /// per committed configuration that matched a streaming certificate.
    pub stream_tags: u64,
    /// Σ certified burst K over stream tags.
    pub stream_tag_burst: u64,
}

impl TraceSummary {
    /// Total simulated cycles: pipeline plus all array-attributed spans.
    pub fn total_cycles(&self) -> u64 {
        self.pipeline_cycles
            + self.array_exec_cycles
            + self.reconfig_stall_cycles
            + self.writeback_tail_cycles
    }
}

/// A fully parsed and validated trace.
#[derive(Debug, Clone)]
pub struct ReplayedTrace {
    /// The header record.
    pub header: TraceHeader,
    /// Every record after the header, in trace order (footer included).
    pub records: Vec<TraceRecord>,
    /// Counters reconstructed from the records.
    pub summary: TraceSummary,
}

fn err(line: usize, message: impl Into<String>) -> ReplayError {
    ReplayError {
        line,
        message: message.into(),
    }
}

fn get_u64(v: &JsonValue, key: &str, line: usize) -> Result<u64, ReplayError> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| err(line, format!("missing or non-integer field `{key}`")))
}

fn get_u32(v: &JsonValue, key: &str, line: usize) -> Result<u32, ReplayError> {
    let n = get_u64(v, key, line)?;
    u32::try_from(n).map_err(|_| err(line, format!("field `{key}` out of range")))
}

fn get_bool(v: &JsonValue, key: &str, line: usize) -> Result<bool, ReplayError> {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| err(line, format!("missing or non-boolean field `{key}`")))
}

/// Reads an optional `u32` field, defaulting when absent (used for the
/// schema-v3 `len` region-id field, which older traces lack).
fn get_u32_or(v: &JsonValue, key: &str, default: u32, line: usize) -> Result<u32, ReplayError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(default),
        Some(_) => get_u32(v, key, line),
    }
}

/// Parses and validates a single trace line.
pub fn parse_record(text: &str, line: usize) -> Result<TraceRecord, ReplayError> {
    let v = json::parse(text).map_err(|e| err(line, e.to_string()))?;
    let ty = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| err(line, "missing `type` field"))?;
    Ok(match ty {
        "header" => {
            let version = get_u32(&v, "schema_version", line)?;
            if version > SCHEMA_VERSION {
                return Err(err(
                    line,
                    format!(
                        "trace schema version {version} is newer than supported {SCHEMA_VERSION}"
                    ),
                ));
            }
            let mut dropped = Vec::new();
            if let Some(JsonValue::Object(map)) = v.get("dropped") {
                for (name, n) in map {
                    let n = n
                        .as_u64()
                        .ok_or_else(|| err(line, format!("non-integer dropped count `{name}`")))?;
                    dropped.push((name.clone(), n));
                }
            }
            TraceRecord::Header(TraceHeader {
                schema_version: version,
                workload: v
                    .get("workload")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
                bits_per_config: get_u64(&v, "bits_per_config", line)?,
                dropped,
            })
        }
        "retire_batch" => {
            let mut kinds = Vec::new();
            if let Some(JsonValue::Object(map)) = v.get("kinds") {
                for (name, n) in map {
                    let kind = RetireKind::from_name(name)
                        .ok_or_else(|| err(line, format!("unknown retire kind `{name}`")))?;
                    let n = n
                        .as_u64()
                        .ok_or_else(|| err(line, format!("non-integer kind count `{name}`")))?;
                    kinds.push((kind, n));
                }
            }
            let count = get_u64(&v, "count", line)?;
            let kind_total: u64 = kinds.iter().map(|(_, n)| n).sum();
            if kind_total != count {
                return Err(err(
                    line,
                    format!("kind counts sum to {kind_total} but `count` is {count}"),
                ));
            }
            TraceRecord::RetireBatch {
                count,
                base_cycles: get_u64(&v, "base_cycles", line)?,
                i_stall: get_u64(&v, "i_stall", line)?,
                d_stall: get_u64(&v, "d_stall", line)?,
                rcache_misses: get_u64(&v, "rcache_misses", line)?,
                kinds,
            }
        }
        "trans_begin" => TraceRecord::Event(ProbeEvent::TransBegin {
            pc: get_u32(&v, "pc", line)?,
        }),
        "trans_commit" => TraceRecord::Event(ProbeEvent::TransCommit {
            entry_pc: get_u32(&v, "entry_pc", line)?,
            instructions: get_u32(&v, "instructions", line)?,
            rows: get_u32(&v, "rows", line)?,
            spec_blocks: get_u32(&v, "spec_blocks", line)?.min(u8::MAX as u32) as u8,
            partial: get_bool(&v, "partial", line)?,
        }),
        "rcache_hit" => TraceRecord::Event(ProbeEvent::RcacheHit {
            pc: get_u32(&v, "pc", line)?,
            len: get_u32_or(&v, "len", 0, line)?,
        }),
        "rcache_miss" => TraceRecord::Event(ProbeEvent::RcacheMiss {
            pc: get_u32(&v, "pc", line)?,
        }),
        "rcache_insert" => {
            let evicted = match v.get("evicted") {
                None | Some(JsonValue::Null) => None,
                Some(other) => Some(
                    other
                        .as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| err(line, "bad `evicted` field"))?,
                ),
            };
            TraceRecord::Event(ProbeEvent::RcacheInsert {
                pc: get_u32(&v, "pc", line)?,
                len: get_u32_or(&v, "len", 0, line)?,
                evicted,
            })
        }
        "rcache_flush" => TraceRecord::Event(ProbeEvent::RcacheFlush {
            pc: get_u32(&v, "pc", line)?,
            len: get_u32_or(&v, "len", 0, line)?,
        }),
        "rcache_evict" => TraceRecord::Event(ProbeEvent::RcacheEvict {
            pc: get_u32(&v, "pc", line)?,
            len: get_u32_or(&v, "len", 0, line)?,
            uses: get_u64(&v, "uses", line)?,
        }),
        "mispredict" => TraceRecord::Event(ProbeEvent::SpecMispredict {
            region_pc: get_u32(&v, "region_pc", line)?,
            region_len: get_u32_or(&v, "region_len", 0, line)?,
            branch_pc: get_u32(&v, "branch_pc", line)?,
            penalty_cycles: get_u32(&v, "penalty_cycles", line)?,
        }),
        "array_invoke" => {
            let spec_depth = get_u32(&v, "spec_depth", line)?;
            let spec_depth =
                u8::try_from(spec_depth).map_err(|_| err(line, "`spec_depth` out of range"))?;
            TraceRecord::Event(ProbeEvent::ArrayInvoke(ArrayInvoke {
                entry_pc: get_u32(&v, "entry_pc", line)?,
                exit_pc: get_u32(&v, "exit_pc", line)?,
                covered: get_u32(&v, "covered", line)?,
                executed: get_u32(&v, "executed", line)?,
                loads: get_u32(&v, "loads", line)?,
                stores: get_u32(&v, "stores", line)?,
                rows: get_u32(&v, "rows", line)?,
                spec_depth,
                misspeculated: get_bool(&v, "misspeculated", line)?,
                flushed: get_bool(&v, "flushed", line)?,
                stall_cycles: get_u32(&v, "stall_cycles", line)?,
                exec_cycles: get_u32(&v, "exec_cycles", line)?,
                tail_cycles: get_u32(&v, "tail_cycles", line)?,
            }))
        }
        "fabric" => TraceRecord::Event(ProbeEvent::Fabric(FabricUtil {
            entry_pc: get_u32(&v, "entry_pc", line)?,
            rows: get_u32(&v, "rows", line)?,
            exec_thirds: get_u32(&v, "exec_thirds", line)?,
            capacity_thirds: get_u32(&v, "capacity_thirds", line)?,
            alu_busy_thirds: get_u32(&v, "alu_busy_thirds", line)?,
            mult_busy_thirds: get_u32(&v, "mult_busy_thirds", line)?,
            ldst_busy_thirds: get_u32(&v, "ldst_busy_thirds", line)?,
            issued_ops: get_u32(&v, "issued_ops", line)?,
            squashed_ops: get_u32(&v, "squashed_ops", line)?,
            residual_cycles: get_u32(&v, "residual_cycles", line)?,
            writeback_writes: get_u32(&v, "writeback_writes", line)?,
            writeback_slots: get_u32(&v, "writeback_slots", line)?,
        })),
        "stream_tag" => TraceRecord::Event(ProbeEvent::StreamTag {
            pc: get_u32(&v, "pc", line)?,
            len: get_u32(&v, "len", line)?,
            burst: get_u32(&v, "burst", line)?,
        }),
        "telemetry" => TraceRecord::Telemetry {
            seq: get_u64(&v, "seq", line)?,
            sim_cycles: get_u64(&v, "sim_cycles", line)?,
            retired: get_u64(&v, "retired", line)?,
            events: get_u64(&v, "events", line)?,
            host_nanos: get_u64(&v, "host_nanos", line)?,
        },
        "footer" => TraceRecord::Footer {
            events: get_u64(&v, "events", line)?,
        },
        other => return Err(err(line, format!("unknown record type `{other}`"))),
    })
}

/// Reads, validates, and summarizes a whole JSONL trace.
///
/// # Errors
///
/// Returns the first structural problem found: malformed JSON, unknown
/// record type, missing header, a header newer than [`SCHEMA_VERSION`],
/// records after the footer, a missing footer (a truncated trace), or a
/// footer whose event count disagrees with the records.
pub fn read_trace(text: &str) -> Result<ReplayedTrace, ReplayError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (first_idx, first) = lines.next().ok_or_else(|| err(0, "empty trace"))?;
    let header = match parse_record(first, first_idx + 1)? {
        TraceRecord::Header(h) => h,
        other => {
            return Err(err(
                first_idx + 1,
                format!("first record must be a header, got `{other:?}`"),
            ))
        }
    };

    let mut records = Vec::new();
    let mut summary = TraceSummary::default();
    let mut events: u64 = 0;
    let mut footer: Option<u64> = None;
    let mut flushed_invocations: u64 = 0;
    let mut mispredict_records: u64 = 0;
    let mut last_telemetry_cycles: Option<u64> = None;
    let mut pending_fabric: Option<(usize, FabricUtil)> = None;

    for (idx, line) in lines {
        let lineno = idx + 1;
        if footer.is_some() {
            return Err(err(lineno, "record after footer"));
        }
        let record = parse_record(line, lineno)?;
        match &record {
            TraceRecord::Header(_) => return Err(err(lineno, "duplicate header")),
            TraceRecord::Footer { events: n } => footer = Some(*n),
            TraceRecord::Telemetry { sim_cycles, .. } => {
                // Telemetry arrived with schema version 2; a v1 header
                // promises a vocabulary that does not contain it.
                if header.schema_version < 2 {
                    return Err(err(
                        lineno,
                        format!(
                            "telemetry record in a schema version {} trace \
                             (requires version 2)",
                            header.schema_version
                        ),
                    ));
                }
                if let Some(prev) = last_telemetry_cycles {
                    if *sim_cycles < prev {
                        return Err(err(lineno, "telemetry sim_cycles went backwards"));
                    }
                }
                last_telemetry_cycles = Some(*sim_cycles);
            }
            TraceRecord::RetireBatch {
                count,
                base_cycles,
                i_stall,
                d_stall,
                rcache_misses,
                ..
            } => {
                events += count + rcache_misses;
                summary.retired += count;
                summary.translated_instructions += count;
                summary.pipeline_cycles += base_cycles + i_stall + d_stall;
                summary.rcache_misses += rcache_misses;
            }
            TraceRecord::Event(event) => {
                events += 1;
                match event {
                    ProbeEvent::Retire { .. } | ProbeEvent::RcacheMiss { .. } => {
                        return Err(err(lineno, "unbatched pipeline event in trace"))
                    }
                    ProbeEvent::TransBegin { .. } => {}
                    ProbeEvent::TransCommit { .. } => {}
                    ProbeEvent::RcacheHit { .. } => summary.rcache_hits += 1,
                    ProbeEvent::RcacheInsert { evicted, .. } => {
                        summary.configs_built += 1;
                        summary.cache_bits_written += header.bits_per_config;
                        if evicted.is_some() {
                            summary.rcache_evictions += 1;
                        }
                    }
                    ProbeEvent::RcacheFlush { .. } => summary.config_flushes += 1,
                    ProbeEvent::RcacheEvict { uses, .. } => {
                        // Arrived with schema version 3, like telemetry
                        // arrived with 2: an older header promises a
                        // vocabulary that does not contain it.
                        if header.schema_version < 3 {
                            return Err(err(
                                lineno,
                                format!(
                                    "rcache_evict record in a schema version {} trace \
                                     (requires version 3)",
                                    header.schema_version
                                ),
                            ));
                        }
                        if *uses > 0 {
                            summary.rcache_evictions_live += 1;
                        } else {
                            summary.rcache_evictions_dead += 1;
                        }
                    }
                    ProbeEvent::SpecMispredict { .. } => {
                        if header.schema_version < 3 {
                            return Err(err(
                                lineno,
                                format!(
                                    "mispredict record in a schema version {} trace \
                                     (requires version 3)",
                                    header.schema_version
                                ),
                            ));
                        }
                        mispredict_records += 1;
                    }
                    ProbeEvent::Fabric(fab) => {
                        // Arrived with schema version 4: an older header
                        // promises a vocabulary that does not contain it.
                        if header.schema_version < 4 {
                            return Err(err(
                                lineno,
                                format!(
                                    "fabric record in a schema version {} trace \
                                     (requires version 4)",
                                    header.schema_version
                                ),
                            ));
                        }
                        if let Some((prev_line, _)) = pending_fabric {
                            return Err(err(
                                lineno,
                                format!(
                                    "fabric record while the one at line {prev_line} \
                                     is still unpaired with an array_invoke"
                                ),
                            ));
                        }
                        pending_fabric = Some((lineno, *fab));
                        summary.fabric_records += 1;
                        summary.fabric_rows += fab.rows as u64;
                        summary.fabric_exec_thirds += fab.exec_thirds as u64;
                        summary.fabric_capacity_thirds += fab.capacity_thirds as u64;
                        summary.fabric_alu_busy_thirds += fab.alu_busy_thirds as u64;
                        summary.fabric_mult_busy_thirds += fab.mult_busy_thirds as u64;
                        summary.fabric_ldst_busy_thirds += fab.ldst_busy_thirds as u64;
                        summary.fabric_issued_ops += fab.issued_ops as u64;
                        summary.fabric_squashed_ops += fab.squashed_ops as u64;
                        summary.fabric_residual_cycles += fab.residual_cycles as u64;
                        summary.fabric_writeback_writes += fab.writeback_writes as u64;
                        summary.fabric_writeback_slots += fab.writeback_slots as u64;
                    }
                    ProbeEvent::StreamTag { burst, .. } => {
                        // Arrived with schema version 5: an older header
                        // promises a vocabulary that does not contain it.
                        if header.schema_version < 5 {
                            return Err(err(
                                lineno,
                                format!(
                                    "stream_tag record in a schema version {} trace \
                                     (requires version 5)",
                                    header.schema_version
                                ),
                            ));
                        }
                        if *burst == 0 {
                            return Err(err(lineno, "stream_tag with burst 0"));
                        }
                        summary.stream_tags += 1;
                        summary.stream_tag_burst += *burst as u64;
                    }
                    ProbeEvent::ArrayInvoke(inv) => {
                        if header.schema_version >= 4 {
                            let Some((_, fab)) = pending_fabric.take() else {
                                return Err(err(
                                    lineno,
                                    "array_invoke without a preceding fabric record \
                                     (required by schema version 4)",
                                ));
                            };
                            if fab.entry_pc != inv.entry_pc {
                                return Err(err(
                                    lineno,
                                    format!(
                                        "fabric record entry_pc {:#x} does not match \
                                         array_invoke entry_pc {:#x}",
                                        fab.entry_pc, inv.entry_pc
                                    ),
                                ));
                            }
                            let derived = fab.exec_cycles() + fab.residual_cycles as u64;
                            if derived != inv.exec_cycles as u64 {
                                return Err(err(
                                    lineno,
                                    format!(
                                        "fabric cycles (ceil({}/3) + {} residual = {}) \
                                         do not reconcile with array_invoke exec_cycles {}",
                                        fab.exec_thirds,
                                        fab.residual_cycles,
                                        derived,
                                        inv.exec_cycles
                                    ),
                                ));
                            }
                        }
                        summary.array_invocations += 1;
                        summary.array_instructions += inv.executed as u64;
                        summary.array_exec_cycles += inv.exec_cycles as u64;
                        summary.reconfig_stall_cycles += inv.stall_cycles as u64;
                        summary.writeback_tail_cycles += inv.tail_cycles as u64;
                        summary.array_loads += inv.loads as u64;
                        summary.array_stores += inv.stores as u64;
                        summary.array_occupied_rows += inv.rows as u64;
                        summary.cache_bits_read += header.bits_per_config;
                        if inv.misspeculated {
                            summary.misspeculations += 1;
                        } else {
                            summary.full_hits += 1;
                        }
                        if inv.flushed {
                            flushed_invocations += 1;
                        }
                    }
                }
            }
        }
        records.push(record);
    }

    match footer {
        None => return Err(err(0, "trace is truncated: no footer record")),
        Some(n) if n != events => {
            return Err(err(
                0,
                format!("footer reports {n} events but trace contains {events}"),
            ));
        }
        Some(_) => {}
    }
    if let Some((prev_line, _)) = pending_fabric {
        return Err(err(
            0,
            format!("fabric record at line {prev_line} never paired with an array_invoke"),
        ));
    }
    if flushed_invocations != summary.config_flushes {
        return Err(err(
            0,
            format!(
                "{} invocations marked flushed but {} rcache_flush records",
                flushed_invocations, summary.config_flushes
            ),
        ));
    }
    if header.schema_version >= 3 {
        let evict_records = summary.rcache_evictions_live + summary.rcache_evictions_dead;
        if evict_records != summary.rcache_evictions {
            return Err(err(
                0,
                format!(
                    "{} rcache_evict records but {} inserts displaced an entry",
                    evict_records, summary.rcache_evictions
                ),
            ));
        }
        if mispredict_records != summary.misspeculations {
            return Err(err(
                0,
                format!(
                    "{} mispredict records but {} invocations misspeculated",
                    mispredict_records, summary.misspeculations
                ),
            ));
        }
    }

    Ok(ReplayedTrace {
        header,
        records,
        summary,
    })
}

impl ReplayedTrace {
    /// Per-kind record counts, for `dim trace --stats`: one entry per
    /// record type present, sorted by name. Batched pipeline events are
    /// counted individually under `retire` / `rcache_miss`, and the
    /// batch records themselves under `retire_batch`.
    pub fn record_stats(&self) -> Vec<(&'static str, u64)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for record in &self.records {
            match record {
                TraceRecord::Header(_) => *counts.entry("header").or_default() += 1,
                TraceRecord::RetireBatch {
                    count,
                    rcache_misses,
                    ..
                } => {
                    *counts.entry("retire_batch").or_default() += 1;
                    if *count > 0 {
                        *counts.entry("retire").or_default() += count;
                    }
                    if *rcache_misses > 0 {
                        *counts.entry("rcache_miss").or_default() += rcache_misses;
                    }
                }
                TraceRecord::Event(e) => *counts.entry(e.type_name()).or_default() += 1,
                TraceRecord::Telemetry { .. } => *counts.entry("telemetry").or_default() += 1,
                TraceRecord::Footer { .. } => *counts.entry("footer").or_default() += 1,
            }
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::JsonlSink;
    use crate::probe::Probe;

    fn sample_trace() -> String {
        let mut sink = JsonlSink::new(Vec::new(), "sample", 100);
        sink.emit(ProbeEvent::RcacheMiss { pc: 0x400000 });
        sink.emit(ProbeEvent::Retire {
            pc: 0x400000,
            kind: RetireKind::Alu,
            base_cycles: 1,
            i_stall: 12,
            d_stall: 0,
            ends_block: false,
        });
        sink.emit(ProbeEvent::TransBegin { pc: 0x400000 });
        sink.emit(ProbeEvent::TransCommit {
            entry_pc: 0x400000,
            instructions: 7,
            rows: 3,
            spec_blocks: 2,
            partial: false,
        });
        sink.emit(ProbeEvent::RcacheInsert {
            pc: 0x400000,
            len: 7,
            evicted: None,
        });
        sink.emit(ProbeEvent::RcacheHit {
            pc: 0x400000,
            len: 7,
        });
        sink.emit(ProbeEvent::Fabric(FabricUtil {
            entry_pc: 0x400000,
            rows: 3,
            exec_thirds: 9,
            capacity_thirds: 99,
            alu_busy_thirds: 4,
            mult_busy_thirds: 0,
            ldst_busy_thirds: 9,
            issued_ops: 7,
            squashed_ops: 0,
            residual_cycles: 1,
            writeback_writes: 2,
            writeback_slots: 24,
        }));
        sink.emit(ProbeEvent::ArrayInvoke(ArrayInvoke {
            entry_pc: 0x400000,
            exit_pc: 0x40001c,
            covered: 7,
            executed: 7,
            loads: 2,
            stores: 1,
            rows: 3,
            spec_depth: 1,
            misspeculated: false,
            flushed: false,
            stall_cycles: 1,
            exec_cycles: 4,
            tail_cycles: 2,
        }));
        let (bytes, e) = sink.into_inner();
        assert!(e.is_none());
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn roundtrip_reconstructs_counters() {
        let trace = read_trace(&sample_trace()).unwrap();
        assert_eq!(trace.header.schema_version, SCHEMA_VERSION);
        assert_eq!(trace.header.workload, "sample");
        let s = trace.summary;
        assert_eq!(s.retired, 1);
        assert_eq!(s.translated_instructions, 1);
        assert_eq!(s.pipeline_cycles, 13);
        assert_eq!(s.rcache_misses, 1);
        assert_eq!(s.rcache_hits, 1);
        assert_eq!(s.configs_built, 1);
        assert_eq!(s.cache_bits_written, 100);
        assert_eq!(s.cache_bits_read, 100);
        assert_eq!(s.array_invocations, 1);
        assert_eq!(s.array_instructions, 7);
        assert_eq!(s.full_hits, 1);
        assert_eq!(s.total_cycles(), 13 + 7);
    }

    #[test]
    fn telemetry_roundtrips_in_v2_traces() {
        let mut sink = JsonlSink::new(Vec::new(), "t", 0);
        sink.set_telemetry_interval(1);
        sink.emit(ProbeEvent::RcacheHit { pc: 4, len: 1 });
        let (bytes, e) = sink.into_inner();
        assert!(e.is_none());
        let trace = read_trace(&String::from_utf8(bytes).unwrap()).unwrap();
        assert_eq!(trace.header.schema_version, SCHEMA_VERSION);
        assert_eq!(trace.summary.rcache_hits, 1);
        let telemetry: Vec<_> = trace
            .records
            .iter()
            .filter(|r| matches!(r, TraceRecord::Telemetry { .. }))
            .collect();
        assert_eq!(telemetry.len(), 1); // the final finish() sample
        match telemetry[0] {
            TraceRecord::Telemetry {
                events, retired, ..
            } => {
                assert_eq!(*events, 1);
                assert_eq!(*retired, 0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn reads_v1_traces_without_telemetry() {
        // A trace written by the previous schema version stays readable.
        let v1 = r#"{"type":"header","schema_version":1,"workload":"old","bits_per_config":64}
{"type":"rcache_hit","pc":4}
{"type":"footer","events":1}"#;
        let trace = read_trace(v1).unwrap();
        assert_eq!(trace.header.schema_version, 1);
        assert_eq!(trace.summary.rcache_hits, 1);
    }

    #[test]
    fn rejects_telemetry_in_v1_trace() {
        let bad = r#"{"type":"header","schema_version":1,"workload":"old","bits_per_config":64}
{"type":"telemetry","seq":0,"sim_cycles":10,"retired":2,"events":2,"host_nanos":100}
{"type":"footer","events":0}"#;
        let e = read_trace(bad).unwrap_err();
        assert!(e.message.contains("requires version 2"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn reads_v2_traces_and_defaults_len() {
        // A trace written by schema version 2 (no `len` on rcache
        // records, no evict/mispredict events) stays readable.
        let v2 = r#"{"type":"header","schema_version":2,"workload":"old","bits_per_config":64}
{"type":"rcache_insert","pc":4,"evicted":null}
{"type":"rcache_hit","pc":4}
{"type":"array_invoke","entry_pc":4,"exit_pc":8,"covered":1,"executed":1,"loads":0,"stores":0,"rows":1,"spec_depth":1,"misspeculated":true,"flushed":true,"stall_cycles":0,"exec_cycles":1,"tail_cycles":0}
{"type":"rcache_flush","pc":4}
{"type":"footer","events":4}"#;
        let trace = read_trace(v2).unwrap();
        assert_eq!(trace.header.schema_version, 2);
        assert_eq!(trace.summary.rcache_hits, 1);
        assert_eq!(trace.summary.config_flushes, 1);
        assert_eq!(trace.summary.rcache_evictions_live, 0);
        assert_eq!(trace.summary.rcache_evictions_dead, 0);
        let hit = trace
            .records
            .iter()
            .find_map(|r| match r {
                TraceRecord::Event(ProbeEvent::RcacheHit { len, .. }) => Some(*len),
                _ => None,
            })
            .unwrap();
        assert_eq!(hit, 0);
    }

    #[test]
    fn rejects_v3_records_in_older_traces() {
        let evict = r#"{"type":"header","schema_version":2,"workload":"old","bits_per_config":64}
{"type":"rcache_evict","pc":4,"len":8,"uses":1}
{"type":"footer","events":1}"#;
        let e = read_trace(evict).unwrap_err();
        assert!(e.message.contains("requires version 3"), "{e}");
        assert_eq!(e.line, 2);

        let mispredict = r#"{"type":"header","schema_version":1,"workload":"old","bits_per_config":64}
{"type":"mispredict","region_pc":4,"region_len":8,"branch_pc":12,"penalty_cycles":2}
{"type":"footer","events":1}"#;
        let e = read_trace(mispredict).unwrap_err();
        assert!(e.message.contains("requires version 3"), "{e}");
    }

    #[test]
    fn golden_v3_trace_replays_with_zero_fabric_records() {
        // A byte-for-byte schema-v3 trace as PR 4's sink wrote it: no
        // fabric records, no pairing requirement, every counter intact.
        let v3 = r#"{"type":"header","schema_version":3,"workload":"legacy","bits_per_config":96}
{"type":"retire_batch","count":2,"base_cycles":2,"i_stall":1,"d_stall":0,"rcache_misses":1,"kinds":{"alu":2}}
{"type":"rcache_insert","pc":64,"len":4,"evicted":null}
{"type":"rcache_hit","pc":64,"len":4}
{"type":"mispredict","region_pc":64,"region_len":4,"branch_pc":72,"penalty_cycles":2}
{"type":"array_invoke","entry_pc":64,"exit_pc":80,"covered":4,"executed":2,"loads":1,"stores":0,"rows":2,"spec_depth":1,"misspeculated":true,"flushed":false,"stall_cycles":1,"exec_cycles":4,"tail_cycles":0}
{"type":"footer","events":7}"#;
        let trace = read_trace(v3).unwrap();
        assert_eq!(trace.header.schema_version, 3);
        assert_eq!(trace.summary.fabric_records, 0);
        assert_eq!(trace.summary.fabric_exec_thirds, 0);
        assert_eq!(trace.summary.array_invocations, 1);
        assert_eq!(trace.summary.misspeculations, 1);
        assert_eq!(trace.summary.rcache_hits, 1);
        let stats = trace.record_stats();
        assert!(
            !stats.iter().any(|(name, _)| *name == "fabric"),
            "{stats:?}"
        );
    }

    #[test]
    fn rejects_fabric_in_older_traces() {
        let bad = r#"{"type":"header","schema_version":3,"workload":"old","bits_per_config":64}
{"type":"fabric","entry_pc":4,"rows":1,"exec_thirds":3,"capacity_thirds":33,"alu_busy_thirds":1,"mult_busy_thirds":0,"ldst_busy_thirds":0,"issued_ops":1,"squashed_ops":0,"residual_cycles":0,"writeback_writes":0,"writeback_slots":4}
{"type":"footer","events":1}"#;
        let e = read_trace(bad).unwrap_err();
        assert!(e.message.contains("requires version 4"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_stream_tag_in_older_traces() {
        let bad = r#"{"type":"header","schema_version":4,"workload":"old","bits_per_config":64}
{"type":"stream_tag","pc":64,"len":8,"burst":16}
{"type":"footer","events":1}"#;
        let e = read_trace(bad).unwrap_err();
        assert!(e.message.contains("requires version 5"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn stream_tag_counts_in_v5_traces() {
        let trace = r#"{"type":"header","schema_version":5,"workload":"crc32","bits_per_config":64}
{"type":"rcache_insert","pc":64,"len":8,"evicted":null}
{"type":"stream_tag","pc":64,"len":8,"burst":16}
{"type":"stream_tag","pc":128,"len":4,"burst":2}
{"type":"footer","events":3}"#;
        let replayed = read_trace(trace).unwrap();
        assert_eq!(replayed.summary.stream_tags, 2);
        assert_eq!(replayed.summary.stream_tag_burst, 18);

        let zero_burst = r#"{"type":"header","schema_version":5,"workload":"crc32","bits_per_config":64}
{"type":"stream_tag","pc":64,"len":8,"burst":0}
{"type":"footer","events":1}"#;
        let e = read_trace(zero_burst).unwrap_err();
        assert!(e.message.contains("burst 0"), "{e}");
    }

    #[test]
    fn v4_requires_fabric_invoke_pairing() {
        // An invoke with no preceding fabric record...
        let missing_fabric = r#"{"type":"header","schema_version":4,"workload":"x","bits_per_config":0}
{"type":"array_invoke","entry_pc":4,"exit_pc":8,"covered":1,"executed":1,"loads":0,"stores":0,"rows":1,"spec_depth":0,"misspeculated":false,"flushed":false,"stall_cycles":0,"exec_cycles":1,"tail_cycles":0}
{"type":"footer","events":1}"#;
        let e = read_trace(missing_fabric).unwrap_err();
        assert!(e.message.contains("without a preceding fabric"), "{e}");

        // ...a fabric record whose invoke never arrives...
        let dangling = r#"{"type":"header","schema_version":4,"workload":"x","bits_per_config":0}
{"type":"fabric","entry_pc":4,"rows":1,"exec_thirds":3,"capacity_thirds":33,"alu_busy_thirds":1,"mult_busy_thirds":0,"ldst_busy_thirds":0,"issued_ops":1,"squashed_ops":0,"residual_cycles":0,"writeback_writes":0,"writeback_slots":4}
{"type":"footer","events":1}"#;
        let e = read_trace(dangling).unwrap_err();
        assert!(e.message.contains("never paired"), "{e}");

        // ...a pair whose entry PCs disagree...
        let mismatch = r#"{"type":"header","schema_version":4,"workload":"x","bits_per_config":0}
{"type":"fabric","entry_pc":8,"rows":1,"exec_thirds":3,"capacity_thirds":33,"alu_busy_thirds":1,"mult_busy_thirds":0,"ldst_busy_thirds":0,"issued_ops":1,"squashed_ops":0,"residual_cycles":0,"writeback_writes":0,"writeback_slots":4}
{"type":"array_invoke","entry_pc":4,"exit_pc":8,"covered":1,"executed":1,"loads":0,"stores":0,"rows":1,"spec_depth":0,"misspeculated":false,"flushed":false,"stall_cycles":0,"exec_cycles":1,"tail_cycles":0}
{"type":"footer","events":2}"#;
        let e = read_trace(mismatch).unwrap_err();
        assert!(e.message.contains("does not match"), "{e}");

        // ...and a pair violating the cycle conservation law are all
        // structural errors.
        let bad_cycles = r#"{"type":"header","schema_version":4,"workload":"x","bits_per_config":0}
{"type":"fabric","entry_pc":4,"rows":1,"exec_thirds":3,"capacity_thirds":33,"alu_busy_thirds":1,"mult_busy_thirds":0,"ldst_busy_thirds":0,"issued_ops":1,"squashed_ops":0,"residual_cycles":0,"writeback_writes":0,"writeback_slots":4}
{"type":"array_invoke","entry_pc":4,"exit_pc":8,"covered":1,"executed":1,"loads":0,"stores":0,"rows":1,"spec_depth":0,"misspeculated":false,"flushed":false,"stall_cycles":0,"exec_cycles":7,"tail_cycles":0}
{"type":"footer","events":2}"#;
        let e = read_trace(bad_cycles).unwrap_err();
        assert!(e.message.contains("reconcile"), "{e}");
    }

    #[test]
    fn v4_fabric_aggregates_land_in_summary() {
        let trace = read_trace(&sample_trace()).unwrap();
        let s = trace.summary;
        assert_eq!(s.fabric_records, 1);
        assert_eq!(s.fabric_rows, 3);
        assert_eq!(s.fabric_exec_thirds, 9);
        assert_eq!(s.fabric_capacity_thirds, 99);
        assert_eq!(s.fabric_alu_busy_thirds, 4);
        assert_eq!(s.fabric_ldst_busy_thirds, 9);
        assert_eq!(s.fabric_issued_ops, 7);
        assert_eq!(s.fabric_residual_cycles, 1);
        assert_eq!(s.fabric_writeback_writes, 2);
        assert_eq!(s.fabric_writeback_slots, 24);
        let count = trace
            .record_stats()
            .iter()
            .find(|(n, _)| *n == "fabric")
            .map_or(0, |(_, c)| *c);
        assert_eq!(count, 1);
    }

    #[test]
    fn rejects_unpaired_evict_and_mispredict_records() {
        // v3 demands one rcache_evict per displacing insert...
        let missing_evict = r#"{"type":"header","schema_version":3,"workload":"x","bits_per_config":0}
{"type":"rcache_insert","pc":4,"len":2,"evicted":8}
{"type":"footer","events":1}"#;
        let e = read_trace(missing_evict).unwrap_err();
        assert!(e.message.contains("rcache_evict"), "{e}");
        // ...and one mispredict per misspeculated invocation.
        let missing_mispredict = r#"{"type":"header","schema_version":3,"workload":"x","bits_per_config":0}
{"type":"array_invoke","entry_pc":4,"exit_pc":8,"covered":1,"executed":1,"loads":0,"stores":0,"rows":1,"spec_depth":1,"misspeculated":true,"flushed":false,"stall_cycles":0,"exec_cycles":1,"tail_cycles":0}
{"type":"footer","events":1}"#;
        let e = read_trace(missing_mispredict).unwrap_err();
        assert!(e.message.contains("mispredict"), "{e}");
    }

    #[test]
    fn record_stats_counts_batched_events_individually() {
        let trace = read_trace(&sample_trace()).unwrap();
        let stats = trace.record_stats();
        let count = |name: &str| {
            stats
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, c)| *c)
        };
        assert_eq!(count("retire"), 1);
        assert_eq!(count("rcache_miss"), 1);
        assert_eq!(count("retire_batch"), 1);
        assert_eq!(count("rcache_hit"), 1);
        assert_eq!(count("array_invoke"), 1);
        assert_eq!(count("footer"), 1);
    }

    #[test]
    fn rejects_backwards_telemetry() {
        let bad = r#"{"type":"header","schema_version":2,"workload":"x","bits_per_config":0}
{"type":"telemetry","seq":0,"sim_cycles":10,"retired":0,"events":0,"host_nanos":1}
{"type":"telemetry","seq":1,"sim_cycles":5,"retired":0,"events":0,"host_nanos":2}
{"type":"footer","events":0}"#;
        let e = read_trace(bad).unwrap_err();
        assert!(e.message.contains("backwards"), "{e}");
    }

    #[test]
    fn rejects_newer_schema() {
        let trace = r#"{"type":"header","schema_version":999,"workload":"x","bits_per_config":0}"#;
        let e = read_trace(trace).unwrap_err();
        assert!(e.message.contains("newer"), "{e}");
    }

    #[test]
    fn rejects_missing_header_and_bad_footer() {
        assert!(read_trace("").is_err());
        assert!(read_trace(r#"{"type":"footer","events":0}"#).is_err());
        let truncated = r#"{"type":"header","schema_version":1,"workload":"x","bits_per_config":0}
{"type":"rcache_hit","pc":4}
{"type":"footer","events":7}"#;
        let e = read_trace(truncated).unwrap_err();
        assert!(e.message.contains("footer"), "{e}");
    }

    #[test]
    fn rejects_unknown_type_but_ignores_unknown_fields() {
        let bad = r#"{"type":"header","schema_version":1,"workload":"x","bits_per_config":0}
{"type":"mystery"}"#;
        assert!(read_trace(bad).is_err());
        let extra_fields = r#"{"type":"header","schema_version":1,"workload":"x","bits_per_config":0,"generator":"future"}
{"type":"rcache_hit","pc":4,"way":3}
{"type":"footer","events":1}"#;
        let trace = read_trace(extra_fields).unwrap();
        assert_eq!(trace.summary.rcache_hits, 1);
    }

    #[test]
    fn rejects_truncated_trace_without_footer() {
        let full = sample_trace();
        let truncated: Vec<&str> = full.lines().collect();
        let truncated = truncated[..truncated.len() - 1].join("\n");
        let e = read_trace(&truncated).unwrap_err();
        assert!(e.message.contains("truncated"), "{e}");
    }

    #[test]
    fn rejects_inconsistent_batch() {
        let bad = r#"{"type":"header","schema_version":1,"workload":"x","bits_per_config":0}
{"type":"retire_batch","count":3,"base_cycles":3,"i_stall":0,"d_stall":0,"rcache_misses":0,"kinds":{"alu":1}}"#;
        let e = read_trace(bad).unwrap_err();
        assert!(e.message.contains("kind counts"), "{e}");
    }
}
