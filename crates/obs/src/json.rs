//! A minimal JSON value model, writer, and parser.
//!
//! The build environment has no registry access, so serde cannot be
//! used; this module provides just enough JSON to serialize the event
//! schema, validate traces, and replay them. Numbers are modeled as
//! `i128` (every counter in the schema is an unsigned integer well
//! within range) plus `f64` for the few ratio fields.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (the schema only uses integers).
    Int(i128),
    /// Non-integer number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object with key order normalized (BTreeMap).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) if *i >= 0 && *i <= u64::MAX as i128 => Some(*i as u64),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an `f64` (integers convert losslessly enough for
    /// metric ratios; non-numbers are `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` into a JSON string literal (including the quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for one JSON object on one line.
///
/// ```
/// let mut o = dim_obs::ObjectWriter::new();
/// o.field_str("type", "header");
/// o.field_u64("schema_version", 1);
/// assert_eq!(o.finish(), r#"{"type":"header","schema_version":1}"#);
/// ```
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
    any: bool,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> ObjectWriter {
        ObjectWriter {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (finite; NaN/inf serialize as null).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_escaped(&mut self.buf, value);
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an optional unsigned field (`null` when absent).
    pub fn field_opt_u64(&mut self, key: &str, value: Option<u64>) -> &mut Self {
        self.key(key);
        match value {
            Some(v) => self.buf.push_str(&v.to_string()),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Adds a raw, already-serialized JSON fragment.
    pub fn field_raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes and returns the object text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value from `input` (trailing whitespace
/// allowed, trailing garbage rejected).
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i128>()
                .map(JsonValue::Int)
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let mut o = ObjectWriter::new();
        o.field_str("type", "header");
        o.field_u64("schema_version", 1);
        o.field_bool("ok", true);
        o.field_opt_u64("evicted", None);
        let text = o.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("header"));
        assert_eq!(v.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("evicted"), Some(&JsonValue::Null));
    }

    #[test]
    fn escapes_survive() {
        let mut o = ObjectWriter::new();
        o.field_str("s", "a\"b\\c\nd\te\u{1}");
        let text = o.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap(), JsonValue::Int(-1));
        assert!(matches!(parse("1.5").unwrap(), JsonValue::Float(f) if (f - 1.5).abs() < 1e-12));
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }
}
