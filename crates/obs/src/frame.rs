//! The workspace's one header-framing discipline: magic, version,
//! length, payload, FNV-1a 64 checksum.
//!
//! Three persisted/wire formats share this shape and must never drift
//! apart:
//!
//! * `.dimrc` rcache snapshots (`dim_core::SnapshotContents`) — the
//!   binary frame with magic `DIMRC\0`;
//! * the `dim serve` wire protocol (`dim-serve`) — the same binary
//!   frame with magic `DIMSV\0`, one frame per message;
//! * `status.dimstat` live telemetry ([`crate::status`]) — the *text*
//!   frame: a JSON header line carrying magic, version and the body
//!   checksum over a JSONL body.
//!
//! Binary layout ([`encode_frame`]/[`decode_frame`]):
//!
//! ```text
//! magic   [u8; 6]
//! version u16 (little-endian)
//! len     u64 (little-endian, payload bytes)
//! payload [len bytes]
//! check   u64 (little-endian, FNV-1a 64 of payload)
//! ```
//!
//! Text layout ([`render_text_frame`]/[`parse_text_frame`]): one JSON
//! header object on the first line (`type`, `magic`, `version`, any
//! format-specific extras, `body_fnv64` as 16 hex digits), then the
//! body verbatim.
//!
//! The helper is defined here (the bottom of the crate graph, next to
//! [`fnv1a64`](crate::fnv1a64)) and re-exported as `dim_core::frame`.

use crate::hash::fnv1a64;
use crate::json::{parse, JsonValue, ObjectWriter};
use std::fmt;
use std::io::{self, Read, Write};

/// Identity of one framed format: its magic bytes and the newest
/// version this build writes (and accepts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpec {
    /// Six magic bytes opening every frame.
    pub magic: &'static [u8; 6],
    /// Current (maximum accepted) format version.
    pub version: u16,
}

/// Bytes before the payload: magic (6) + version (2) + length (8).
pub const FRAME_HEADER_LEN: usize = 16;
/// Total framing overhead: header plus the 8-byte checksum tail.
pub const FRAME_OVERHEAD: usize = FRAME_HEADER_LEN + 8;

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The bytes do not start with the expected magic.
    BadMagic,
    /// The frame's version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The bytes end before the structure they promise.
    Truncated,
    /// The declared payload length exceeds the caller's limit.
    Oversized {
        /// Length the header declares.
        declared: u64,
        /// Maximum the caller accepts.
        max: u64,
    },
    /// Bytes remain after the checksum tail.
    TrailingBytes(usize),
    /// The payload does not hash to the recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        expected: u64,
        /// Checksum of the payload actually read.
        actual: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad magic"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Oversized { declared, max } => {
                write!(
                    f,
                    "declared payload of {declared} bytes exceeds limit {max}"
                )
            }
            FrameError::TrailingBytes(n) => write!(f, "{n} trailing bytes after checksum"),
            FrameError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch (frame says {expected:#018x}, payload hashes to \
                 {actual:#018x}) — truncated or corrupted"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps `payload` in a complete binary frame.
pub fn encode_frame(spec: FrameSpec, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(spec.magic);
    out.extend_from_slice(&spec.version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out
}

/// Decodes exactly one binary frame spanning all of `bytes`, returning
/// the frame's version and its payload slice.
///
/// Versions *newer* than `spec.version` are rejected; older ones are
/// returned for the caller to apply its own compatibility policy.
///
/// # Errors
///
/// [`FrameError`] for anything that is not one well-formed frame.
pub fn decode_frame(spec: FrameSpec, bytes: &[u8]) -> Result<(u16, &[u8]), FrameError> {
    if bytes.len() < 6 || &bytes[..6] != spec.magic {
        return Err(FrameError::BadMagic);
    }
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let version = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    if version > spec.version {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let len_usize = usize::try_from(len).map_err(|_| FrameError::Truncated)?;
    let rest = &bytes[FRAME_HEADER_LEN..];
    if rest.len() < len_usize + 8 {
        return Err(FrameError::Truncated);
    }
    if rest.len() > len_usize + 8 {
        return Err(FrameError::TrailingBytes(rest.len() - len_usize - 8));
    }
    let payload = &rest[..len_usize];
    let expected = u64::from_le_bytes(rest[len_usize..].try_into().unwrap());
    let actual = fnv1a64(payload);
    if expected != actual {
        return Err(FrameError::ChecksumMismatch { expected, actual });
    }
    Ok((version, payload))
}

/// A [`read_frame`] failure: transport trouble or a malformed frame.
#[derive(Debug)]
pub enum ReadFrameError {
    /// The underlying reader failed (including unexpected mid-frame EOF).
    Io(io::Error),
    /// The bytes read do not form a valid frame.
    Frame(FrameError),
}

impl fmt::Display for ReadFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadFrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            ReadFrameError::Frame(e) => write!(f, "invalid frame: {e}"),
        }
    }
}

impl std::error::Error for ReadFrameError {}

impl From<io::Error> for ReadFrameError {
    fn from(e: io::Error) -> ReadFrameError {
        ReadFrameError::Io(e)
    }
}

impl From<FrameError> for ReadFrameError {
    fn from(e: FrameError) -> ReadFrameError {
        ReadFrameError::Frame(e)
    }
}

/// Writes one binary frame to a stream.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn write_frame(spec: FrameSpec, w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(spec, payload))?;
    w.flush()
}

/// Reads one binary frame from a stream, returning its payload —
/// or `None` on a clean end-of-stream at a frame boundary.
///
/// `max_payload` bounds the allocation a corrupt length field can
/// request.
///
/// # Errors
///
/// [`ReadFrameError`] on transport failure, mid-frame EOF, or an
/// invalid frame.
pub fn read_frame(
    spec: FrameSpec,
    r: &mut impl Read,
    max_payload: u64,
) -> Result<Option<Vec<u8>>, ReadFrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // A clean EOF before the first header byte ends the stream; EOF
    // anywhere inside a frame is an error.
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "end of stream inside a frame header",
            )
            .into());
        }
        filled += n;
    }
    if &header[..6] != spec.magic {
        return Err(FrameError::BadMagic.into());
    }
    let version = u16::from_le_bytes(header[6..8].try_into().unwrap());
    if version > spec.version {
        return Err(FrameError::UnsupportedVersion(version).into());
    }
    let len = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if len > max_payload {
        return Err(FrameError::Oversized {
            declared: len,
            max: max_payload,
        }
        .into());
    }
    let mut rest = vec![0u8; len as usize + 8];
    r.read_exact(&mut rest)?;
    let payload_len = len as usize;
    let expected = u64::from_le_bytes(rest[payload_len..].try_into().unwrap());
    let actual = fnv1a64(&rest[..payload_len]);
    if expected != actual {
        return Err(FrameError::ChecksumMismatch { expected, actual }.into());
    }
    rest.truncate(payload_len);
    Ok(Some(rest))
}

/// Why a text frame could not be parsed.
#[derive(Debug)]
pub enum TextFrameError {
    /// The header line is missing, unparseable, or lacks a field.
    Malformed(String),
    /// The header's `magic` field does not match.
    BadMagic,
    /// The header declares a version newer than this reader.
    UnsupportedVersion(u64),
    /// The body does not hash to the header's checksum (torn write).
    ChecksumMismatch,
}

impl fmt::Display for TextFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextFrameError::Malformed(m) => write!(f, "malformed text frame: {m}"),
            TextFrameError::BadMagic => write!(f, "bad magic"),
            TextFrameError::UnsupportedVersion(v) => {
                write!(f, "version {v} is newer than this reader")
            }
            TextFrameError::ChecksumMismatch => write!(f, "body checksum mismatch (torn write?)"),
        }
    }
}

impl std::error::Error for TextFrameError {}

/// Renders a text frame: a JSON header line (`type` = `kind`, `magic`,
/// `version`, the `extras` in order, `body_fnv64` over `body`) followed
/// by the body verbatim.
pub fn render_text_frame(
    kind: &str,
    magic: &str,
    version: u64,
    extras: &[(&str, u64)],
    body: &str,
) -> String {
    let mut header = ObjectWriter::new();
    header.field_str("type", kind);
    header.field_str("magic", magic);
    header.field_u64("version", version);
    for &(key, value) in extras {
        header.field_u64(key, value);
    }
    header.field_str("body_fnv64", &format!("{:016x}", fnv1a64(body.as_bytes())));
    format!("{}\n{body}", header.finish())
}

/// Parses a text frame: validates magic, version and the body checksum,
/// returning the parsed header object (for format-specific extras) and
/// the body text.
///
/// # Errors
///
/// [`TextFrameError`] when the header is malformed, carries the wrong
/// magic, declares a version beyond `max_version`, or the body fails
/// the checksum.
pub fn parse_text_frame<'a>(
    magic: &str,
    max_version: u64,
    text: &'a str,
) -> Result<(JsonValue, &'a str), TextFrameError> {
    let Some((header_line, body)) = text.split_once('\n') else {
        return Err(TextFrameError::Malformed("missing header line".into()));
    };
    let header =
        parse(header_line).map_err(|e| TextFrameError::Malformed(format!("header: {e:?}")))?;
    if header.get("magic").and_then(JsonValue::as_str) != Some(magic) {
        return Err(TextFrameError::BadMagic);
    }
    let version = header
        .get("version")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| TextFrameError::Malformed("header: missing `version`".into()))?;
    if version > max_version {
        return Err(TextFrameError::UnsupportedVersion(version));
    }
    let declared = header
        .get("body_fnv64")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| TextFrameError::Malformed("header: missing `body_fnv64`".into()))?;
    if format!("{:016x}", fnv1a64(body.as_bytes())) != declared {
        return Err(TextFrameError::ChecksumMismatch);
    }
    Ok((header, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: FrameSpec = FrameSpec {
        magic: b"DIMGV\0",
        version: 3,
    };

    /// Golden vector: the binary layout is a compatibility surface for
    /// `.dimrc` and the serve wire protocol — changing it is a format
    /// break for both at once.
    #[test]
    fn binary_golden_vector() {
        let frame = encode_frame(SPEC, b"abc");
        let expected: Vec<u8> = [
            b"DIMGV\0".as_slice(),                // magic
            &3u16.to_le_bytes(),                  // version
            &3u64.to_le_bytes(),                  // payload length
            b"abc",                               // payload
            &0xe71fa2190541574bu64.to_le_bytes(), // fnv1a64("abc")
        ]
        .concat();
        assert_eq!(frame, expected);
        let (version, payload) = decode_frame(SPEC, &frame).unwrap();
        assert_eq!((version, payload), (3, b"abc".as_slice()));
    }

    #[test]
    fn binary_empty_payload_roundtrips() {
        let frame = encode_frame(SPEC, b"");
        assert_eq!(frame.len(), FRAME_OVERHEAD);
        assert_eq!(decode_frame(SPEC, &frame).unwrap(), (3, b"".as_slice()));
    }

    #[test]
    fn binary_rejects_every_corruption() {
        let frame = encode_frame(SPEC, b"payload bytes");
        // Wrong magic.
        let mut bad = frame.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode_frame(SPEC, &bad), Err(FrameError::BadMagic));
        // Newer version.
        let mut bad = frame.clone();
        bad[6..8].copy_from_slice(&99u16.to_le_bytes());
        assert_eq!(
            decode_frame(SPEC, &bad),
            Err(FrameError::UnsupportedVersion(99))
        );
        // Older version is returned, not rejected.
        let mut old = frame.clone();
        old[6..8].copy_from_slice(&1u16.to_le_bytes());
        assert_eq!(decode_frame(SPEC, &old).unwrap().0, 1);
        // Payload flip.
        let mut bad = frame.clone();
        bad[FRAME_HEADER_LEN + 2] ^= 0x04;
        assert!(matches!(
            decode_frame(SPEC, &bad),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        // Trailing garbage.
        let mut bad = frame.clone();
        bad.push(0);
        assert_eq!(decode_frame(SPEC, &bad), Err(FrameError::TrailingBytes(1)));
        // Truncation at every boundary.
        for len in 0..frame.len() {
            assert!(
                decode_frame(SPEC, &frame[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn stream_roundtrip_and_clean_eof() {
        let mut buf = Vec::new();
        write_frame(SPEC, &mut buf, b"first").unwrap();
        write_frame(SPEC, &mut buf, b"second").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(SPEC, &mut cursor, 1024).unwrap().as_deref(),
            Some(b"first".as_slice())
        );
        assert_eq!(
            read_frame(SPEC, &mut cursor, 1024).unwrap().as_deref(),
            Some(b"second".as_slice())
        );
        assert!(read_frame(SPEC, &mut cursor, 1024).unwrap().is_none());
    }

    #[test]
    fn stream_rejects_midframe_eof_and_oversize() {
        let frame = encode_frame(SPEC, b"payload");
        for len in 1..frame.len() {
            let mut cursor = io::Cursor::new(frame[..len].to_vec());
            assert!(
                read_frame(SPEC, &mut cursor, 1024).is_err(),
                "stream prefix of {len} bytes read"
            );
        }
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(
            read_frame(SPEC, &mut cursor, 3),
            Err(ReadFrameError::Frame(FrameError::Oversized {
                declared: 7,
                max: 3
            }))
        ));
    }

    /// Golden vector for the text frame: this exact header line is what
    /// `status.dimstat` files carry on disk.
    #[test]
    fn text_golden_vector() {
        let text = render_text_frame("status_header", "DIMSTAT", 1, &[("entries", 2)], "a\nb\n");
        let expected = "{\"type\":\"status_header\",\"magic\":\"DIMSTAT\",\"version\":1,\
                        \"entries\":2,\"body_fnv64\":\"78ed6781f136a14e\"}\na\nb\n";
        assert_eq!(text, expected);
        let (header, body) = parse_text_frame("DIMSTAT", 1, &text).unwrap();
        assert_eq!(body, "a\nb\n");
        assert_eq!(header.get("entries").and_then(JsonValue::as_u64), Some(2));
    }

    #[test]
    fn text_rejects_magic_version_and_torn_body() {
        let text = render_text_frame("h", "GOOD!", 2, &[], "body\n");
        assert!(matches!(
            parse_text_frame("OTHER", 2, &text),
            Err(TextFrameError::BadMagic)
        ));
        assert!(matches!(
            parse_text_frame("GOOD!", 1, &text),
            Err(TextFrameError::UnsupportedVersion(2))
        ));
        let torn = format!("{text}tail of a torn write\n");
        assert!(matches!(
            parse_text_frame("GOOD!", 2, &torn),
            Err(TextFrameError::ChecksumMismatch)
        ));
        assert!(matches!(
            parse_text_frame("GOOD!", 2, "no newline at all"),
            Err(TextFrameError::Malformed(_))
        ));
    }
}
