//! Online invariant checking over the probe stream.
//!
//! A [`Watchdog`] is a [`Probe`] that evaluates a small set of system
//! invariants *incrementally*, event by event, instead of waiting for a
//! post-hoc trace replay — the live counterpart of the offline cycle
//! conservation law `dim explain` checks. The first violation is
//! latched as a [`Violation`] naming the invariant, the offending
//! event, and its position in the stream; everything after the trip is
//! ignored so the report stays precise.
//!
//! Invariants checked:
//!
//! * **`monotonic-cycle-counter`** — the running cycle total never
//!   wraps; every event's cycle contribution accumulates without
//!   overflow.
//! * **`cycle-conservation`** — only `retire` and `array_invoke` carry
//!   cycles, and the running total always equals the pipeline bucket
//!   plus the array bucket (the PR-4 conservation law as a live
//!   assertion). An invocation claiming more executed instructions than
//!   it covers trips the same invariant.
//! * **`rcache-occupancy`** — the resident-configuration set implied by
//!   insert/evict/flush events never exceeds the cache's slot count,
//!   and evictions/flushes always name a resident entry (each
//!   displacing insert is followed by exactly one matching
//!   `rcache_evict`).
//! * **`rcache-hit-without-insert`** — a lookup hit names a PC that a
//!   prior insert (or a seeded warm-start entry, see
//!   [`Watchdog::seed_resident`]) made resident.

use crate::event::ProbeEvent;
use crate::probe::Probe;
use std::collections::HashSet;
use std::fmt;

/// A latched invariant violation: which law broke, on which event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable name of the tripped invariant.
    pub invariant: &'static str,
    /// Human-readable specifics (PCs, counts, capacities).
    pub detail: String,
    /// The offending event.
    pub event: ProbeEvent,
    /// Zero-based position of the offending event in the probe stream.
    pub event_index: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` tripped at event #{} ({}): {}",
            self.invariant,
            self.event_index,
            self.event.type_name(),
            self.detail
        )
    }
}

/// An incremental invariant checker over the probe stream.
#[derive(Debug, Clone)]
pub struct Watchdog {
    /// Reconfiguration-cache slot capacity the occupancy law checks
    /// against.
    capacity: u64,
    /// Entry PCs currently resident in the reconfiguration cache.
    resident: HashSet<u32>,
    /// Victim announced by a displacing insert, awaiting its
    /// `rcache_evict` record.
    pending_evict: Option<u32>,
    /// Events observed so far.
    seen: u64,
    /// Running total of simulated cycles across all events.
    total_cycles: u64,
    /// Cycles carried by `retire` events.
    pipeline_cycles: u64,
    /// Cycles carried by `array_invoke` events.
    array_cycles: u64,
    violation: Option<Violation>,
}

impl Watchdog {
    /// A watchdog for a system whose reconfiguration cache holds
    /// `cache_slots` configurations.
    pub fn new(cache_slots: usize) -> Watchdog {
        Watchdog {
            capacity: cache_slots as u64,
            resident: HashSet::new(),
            pending_evict: None,
            seen: 0,
            total_cycles: 0,
            pipeline_cycles: 0,
            array_cycles: 0,
            violation: None,
        }
    }

    /// Marks `pc` resident without an insert event — required when the
    /// observed system warm-starts from an rcache snapshot, whose
    /// entries were inserted before probing began.
    pub fn seed_resident(&mut self, pc: u32) {
        self.resident.insert(pc);
    }

    /// Whether an invariant has tripped.
    pub fn tripped(&self) -> bool {
        self.violation.is_some()
    }

    /// The first violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    /// Events observed (including the offending one, after a trip).
    pub fn events_seen(&self) -> u64 {
        self.seen
    }

    /// Resident configurations implied by the event stream so far.
    pub fn resident_len(&self) -> usize {
        self.resident.len()
    }

    /// Running simulated-cycle total.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    fn trip(&mut self, invariant: &'static str, detail: String, event: ProbeEvent) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                invariant,
                detail,
                event,
                event_index: self.seen - 1,
            });
        }
    }

    fn check(&mut self, event: ProbeEvent) {
        let cycles = event.cycles();
        let Some(total) = self.total_cycles.checked_add(cycles) else {
            self.trip(
                "monotonic-cycle-counter",
                format!(
                    "cycle counter would wrap: {} + {cycles} overflows u64",
                    self.total_cycles
                ),
                event,
            );
            return;
        };
        self.total_cycles = total;
        match event {
            ProbeEvent::Retire { .. } => self.pipeline_cycles += cycles,
            ProbeEvent::ArrayInvoke(_) => self.array_cycles += cycles,
            _ if cycles != 0 => {
                self.trip(
                    "cycle-conservation",
                    format!(
                        "bookkeeping event `{}` carries {cycles} cycles",
                        event.type_name()
                    ),
                    event,
                );
                return;
            }
            _ => {}
        }
        if self.pipeline_cycles + self.array_cycles != self.total_cycles {
            self.trip(
                "cycle-conservation",
                format!(
                    "pipeline {} + array {} != total {}",
                    self.pipeline_cycles, self.array_cycles, self.total_cycles
                ),
                event,
            );
            return;
        }

        match event {
            ProbeEvent::RcacheHit { pc, .. } if !self.resident.contains(&pc) => {
                self.trip(
                    "rcache-hit-without-insert",
                    format!("hit for {pc:#010x}, which no insert made resident"),
                    event,
                );
            }
            ProbeEvent::RcacheInsert { pc, evicted, .. } => {
                if let Some(prev) = self.pending_evict {
                    self.trip(
                        "rcache-occupancy",
                        format!(
                            "insert of {pc:#010x} before the eviction of {prev:#010x} \
                             was recorded"
                        ),
                        event,
                    );
                    return;
                }
                if let Some(victim) = evicted {
                    if !self.resident.remove(&victim) {
                        self.trip(
                            "rcache-occupancy",
                            format!("insert of {pc:#010x} evicts non-resident {victim:#010x}"),
                            event,
                        );
                        return;
                    }
                    self.pending_evict = Some(victim);
                }
                self.resident.insert(pc);
                if self.resident.len() as u64 > self.capacity {
                    self.trip(
                        "rcache-occupancy",
                        format!(
                            "{} configurations resident but the cache holds {}",
                            self.resident.len(),
                            self.capacity
                        ),
                        event,
                    );
                }
            }
            ProbeEvent::RcacheEvict { pc, .. } => match self.pending_evict.take() {
                Some(victim) if victim == pc => {}
                Some(victim) => self.trip(
                    "rcache-occupancy",
                    format!(
                        "evict record names {pc:#010x} but the insert displaced {victim:#010x}"
                    ),
                    event,
                ),
                None => self.trip(
                    "rcache-occupancy",
                    format!("evict record for {pc:#010x} without a displacing insert"),
                    event,
                ),
            },
            ProbeEvent::RcacheFlush { pc, .. } if !self.resident.remove(&pc) => {
                self.trip(
                    "rcache-occupancy",
                    format!("flush of non-resident {pc:#010x}"),
                    event,
                );
            }
            ProbeEvent::ArrayInvoke(inv) if inv.executed > inv.covered => {
                self.trip(
                    "cycle-conservation",
                    format!(
                        "invocation at {:#010x} executed {} of {} covered instructions",
                        inv.entry_pc, inv.executed, inv.covered
                    ),
                    event,
                );
            }
            _ => {}
        }
    }
}

impl Probe for Watchdog {
    fn emit(&mut self, event: ProbeEvent) {
        if self.violation.is_some() {
            return;
        }
        self.seen += 1;
        self.check(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArrayInvoke, RetireKind};

    fn retire(cycles: u32) -> ProbeEvent {
        ProbeEvent::Retire {
            pc: 0x100,
            kind: RetireKind::Alu,
            base_cycles: cycles,
            i_stall: 0,
            d_stall: 0,
            ends_block: false,
        }
    }

    fn insert(pc: u32, evicted: Option<u32>) -> ProbeEvent {
        ProbeEvent::RcacheInsert {
            pc,
            len: 4,
            evicted,
        }
    }

    #[test]
    fn clean_stream_never_trips() {
        let mut dog = Watchdog::new(2);
        dog.emit(retire(3));
        dog.emit(insert(0x100, None));
        dog.emit(insert(0x200, None));
        dog.emit(ProbeEvent::RcacheHit { pc: 0x100, len: 4 });
        dog.emit(insert(0x300, Some(0x100)));
        dog.emit(ProbeEvent::RcacheEvict {
            pc: 0x100,
            len: 4,
            uses: 1,
        });
        dog.emit(ProbeEvent::RcacheFlush { pc: 0x200, len: 4 });
        assert!(!dog.tripped(), "{:?}", dog.violation());
        assert_eq!(dog.resident_len(), 1);
        assert_eq!(dog.total_cycles(), 3);
    }

    #[test]
    fn hit_without_insert_trips_and_latches() {
        let mut dog = Watchdog::new(4);
        dog.emit(insert(0x100, None));
        dog.emit(ProbeEvent::RcacheHit { pc: 0x999, len: 4 });
        dog.emit(ProbeEvent::RcacheHit { pc: 0x100, len: 4 }); // post-trip: ignored
        let v = dog.violation().expect("tripped");
        assert_eq!(v.invariant, "rcache-hit-without-insert");
        assert_eq!(v.event_index, 1);
        assert!(matches!(v.event, ProbeEvent::RcacheHit { pc: 0x999, .. }));
    }

    #[test]
    fn seeded_resident_pcs_hit_cleanly() {
        let mut dog = Watchdog::new(4);
        dog.seed_resident(0xabc);
        dog.emit(ProbeEvent::RcacheHit { pc: 0xabc, len: 4 });
        assert!(!dog.tripped());
    }

    #[test]
    fn occupancy_over_capacity_trips() {
        let mut dog = Watchdog::new(1);
        dog.emit(insert(0x100, None));
        dog.emit(insert(0x200, None));
        let v = dog.violation().expect("tripped");
        assert_eq!(v.invariant, "rcache-occupancy");
    }

    #[test]
    fn unmatched_evict_record_trips() {
        let mut dog = Watchdog::new(4);
        dog.emit(ProbeEvent::RcacheEvict {
            pc: 0x100,
            len: 4,
            uses: 0,
        });
        assert_eq!(dog.violation().unwrap().invariant, "rcache-occupancy");
    }

    #[test]
    fn flush_of_non_resident_trips() {
        let mut dog = Watchdog::new(4);
        dog.emit(ProbeEvent::RcacheFlush { pc: 0x500, len: 2 });
        assert_eq!(dog.violation().unwrap().invariant, "rcache-occupancy");
    }

    #[test]
    fn over_executed_invocation_trips_conservation() {
        let mut dog = Watchdog::new(4);
        dog.emit(ProbeEvent::ArrayInvoke(ArrayInvoke {
            entry_pc: 0x100,
            exit_pc: 0x120,
            covered: 4,
            executed: 9,
            loads: 0,
            stores: 0,
            rows: 1,
            spec_depth: 0,
            misspeculated: false,
            flushed: false,
            stall_cycles: 0,
            exec_cycles: 4,
            tail_cycles: 0,
        }));
        assert_eq!(dog.violation().unwrap().invariant, "cycle-conservation");
    }

    #[test]
    fn cycle_counter_overflow_trips_monotonic() {
        let mut dog = Watchdog::new(4);
        dog.total_cycles = u64::MAX - 1;
        dog.pipeline_cycles = u64::MAX - 1;
        dog.emit(retire(3));
        assert_eq!(
            dog.violation().unwrap().invariant,
            "monotonic-cycle-counter"
        );
    }

    #[test]
    fn violation_display_names_everything() {
        let mut dog = Watchdog::new(4);
        dog.emit(ProbeEvent::RcacheHit { pc: 0x40, len: 1 });
        let text = dog.violation().unwrap().to_string();
        assert!(text.contains("rcache-hit-without-insert"), "{text}");
        assert!(text.contains("event #0"), "{text}");
        assert!(text.contains("rcache_hit"), "{text}");
    }
}
