//! Streaming JSONL trace sink.
//!
//! One JSON object per line. The first line is a `header` record
//! carrying [`SCHEMA_VERSION`] plus run metadata; the last (written by
//! [`Probe::finish`]) is a `footer` with event totals so truncated
//! traces are detectable. Consecutive pipeline events ([`Retire`] and
//! the [`RcacheMiss`] that precedes each fetch) are coalesced into
//! `retire_batch` records — a trace stays one line per array-invocation
//! region instead of one line per instruction.
//!
//! With [`JsonlSink::set_telemetry_interval`] the sink additionally
//! emits periodic `telemetry` records (schema version 2): cumulative
//! simulated cycles, retired instructions, and host wall-clock
//! nanoseconds since the sink was created. Telemetry lines are written
//! by the sink itself, not observed through the probe, so they do *not*
//! count toward the footer's `events` total.
//!
//! [`Retire`]: ProbeEvent::Retire
//! [`RcacheMiss`]: ProbeEvent::RcacheMiss

use crate::event::{ProbeEvent, RetireKind, SCHEMA_VERSION};
use crate::json::ObjectWriter;
use crate::probe::Probe;
use std::io::{self, Write};
use std::time::Instant;

/// Maximum retires coalesced into one `retire_batch` record.
const BATCH_CAP: u64 = 4096;

const KIND_ORDER: [RetireKind; 7] = [
    RetireKind::Alu,
    RetireKind::Load,
    RetireKind::Store,
    RetireKind::Branch,
    RetireKind::Jump,
    RetireKind::MulDiv,
    RetireKind::System,
];

#[derive(Debug, Default)]
struct Batch {
    count: u64,
    base_cycles: u64,
    i_stall: u64,
    d_stall: u64,
    rcache_misses: u64,
    kinds: [u64; 7],
}

impl Batch {
    fn is_empty(&self) -> bool {
        self.count == 0 && self.rcache_misses == 0
    }
}

/// A [`Probe`] that serializes every event as one JSON object per line.
///
/// Writing never panics: the first I/O error is latched, subsequent
/// events are dropped, and the error is reported by [`JsonlSink::take_error`]
/// (or by [`JsonlSink::into_inner`]).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    batch: Batch,
    /// Events emitted (batched retires count individually).
    events: u64,
    /// Lines written, including header.
    lines: u64,
    finished: bool,
    error: Option<io::Error>,
    /// Simulated cycles between telemetry records (0 disables them).
    telemetry_interval: u64,
    /// Cumulative simulated cycles observed.
    sim_cycles: u64,
    /// Cumulative retired instructions observed.
    retired: u64,
    /// `sim_cycles` value at the last telemetry record.
    last_telemetry_cycle: u64,
    /// Telemetry records written so far.
    telemetry_seq: u64,
    started: Instant,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a sink and immediately writes the `header` record.
    ///
    /// `workload` names the traced program; `bits_per_config` is the
    /// stored size of one cache entry, recorded so replay can
    /// reconstruct the cache-bit energy counters.
    pub fn new(out: W, workload: &str, bits_per_config: u64) -> JsonlSink<W> {
        JsonlSink::with_header_extra(out, workload, bits_per_config, &[])
    }

    /// Like [`JsonlSink::new`], but appends extra raw-JSON fields to the
    /// `header` record (each value must already be valid JSON). Readers
    /// ignore unknown header fields per the schema compatibility policy;
    /// the flight recorder uses this to annotate dumps with drop
    /// accounting without a schema bump.
    pub fn with_header_extra(
        out: W,
        workload: &str,
        bits_per_config: u64,
        extra: &[(&str, String)],
    ) -> JsonlSink<W> {
        let mut sink = JsonlSink {
            out,
            batch: Batch::default(),
            events: 0,
            lines: 0,
            finished: false,
            error: None,
            telemetry_interval: 0,
            sim_cycles: 0,
            retired: 0,
            last_telemetry_cycle: 0,
            telemetry_seq: 0,
            started: Instant::now(),
        };
        let mut o = ObjectWriter::new();
        o.field_str("type", "header");
        o.field_u64("schema_version", SCHEMA_VERSION as u64);
        o.field_str("workload", workload);
        o.field_u64("bits_per_config", bits_per_config);
        for (name, raw) in extra {
            o.field_raw(name, raw);
        }
        sink.write_line(&o.finish());
        sink
    }

    /// Emits a `telemetry` record every `interval_cycles` simulated
    /// cycles (0, the default, disables telemetry). A final record is
    /// always written at [`finish`](Probe::finish) when enabled, so even
    /// short runs get one full-run sample.
    pub fn set_telemetry_interval(&mut self, interval_cycles: u64) {
        self.telemetry_interval = interval_cycles;
    }

    /// The first write error, if any occurred (clears it).
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Total events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Finishes the trace and returns the writer and any latched error.
    pub fn into_inner(mut self) -> (W, Option<io::Error>) {
        self.finish();
        (self.out, self.error)
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        let res = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"));
        match res {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.batch);
        let mut kinds = ObjectWriter::new();
        for (kind, &n) in KIND_ORDER.iter().zip(batch.kinds.iter()) {
            if n > 0 {
                kinds.field_u64(kind.name(), n);
            }
        }
        let mut o = ObjectWriter::new();
        o.field_str("type", "retire_batch");
        o.field_u64("count", batch.count);
        o.field_u64("base_cycles", batch.base_cycles);
        o.field_u64("i_stall", batch.i_stall);
        o.field_u64("d_stall", batch.d_stall);
        o.field_u64("rcache_misses", batch.rcache_misses);
        o.field_raw("kinds", &kinds.finish());
        self.write_line(&o.finish());
    }

    fn write_telemetry(&mut self) {
        self.flush_batch();
        let mut o = ObjectWriter::new();
        o.field_str("type", "telemetry");
        o.field_u64("seq", self.telemetry_seq);
        o.field_u64("sim_cycles", self.sim_cycles);
        o.field_u64("retired", self.retired);
        o.field_u64("events", self.events);
        o.field_u64("host_nanos", self.started.elapsed().as_nanos() as u64);
        self.write_line(&o.finish());
        self.telemetry_seq += 1;
        self.last_telemetry_cycle = self.sim_cycles;
    }

    fn write_event(&mut self, event: &ProbeEvent) {
        let mut o = ObjectWriter::new();
        o.field_str("type", event.type_name());
        match *event {
            ProbeEvent::Retire { .. } | ProbeEvent::RcacheMiss { .. } => {
                unreachable!("batched before write_event")
            }
            ProbeEvent::TransBegin { pc } => {
                o.field_u64("pc", pc as u64);
            }
            ProbeEvent::TransCommit {
                entry_pc,
                instructions,
                rows,
                spec_blocks,
                partial,
            } => {
                o.field_u64("entry_pc", entry_pc as u64);
                o.field_u64("instructions", instructions as u64);
                o.field_u64("rows", rows as u64);
                o.field_u64("spec_blocks", spec_blocks as u64);
                o.field_bool("partial", partial);
            }
            ProbeEvent::RcacheHit { pc, len } => {
                o.field_u64("pc", pc as u64);
                o.field_u64("len", len as u64);
            }
            ProbeEvent::RcacheInsert { pc, len, evicted } => {
                o.field_u64("pc", pc as u64);
                o.field_u64("len", len as u64);
                o.field_opt_u64("evicted", evicted.map(|pc| pc as u64));
            }
            ProbeEvent::RcacheFlush { pc, len } => {
                o.field_u64("pc", pc as u64);
                o.field_u64("len", len as u64);
            }
            ProbeEvent::RcacheEvict { pc, len, uses } => {
                o.field_u64("pc", pc as u64);
                o.field_u64("len", len as u64);
                o.field_u64("uses", uses);
            }
            ProbeEvent::SpecMispredict {
                region_pc,
                region_len,
                branch_pc,
                penalty_cycles,
            } => {
                o.field_u64("region_pc", region_pc as u64);
                o.field_u64("region_len", region_len as u64);
                o.field_u64("branch_pc", branch_pc as u64);
                o.field_u64("penalty_cycles", penalty_cycles as u64);
            }
            ProbeEvent::ArrayInvoke(inv) => {
                o.field_u64("entry_pc", inv.entry_pc as u64);
                o.field_u64("exit_pc", inv.exit_pc as u64);
                o.field_u64("covered", inv.covered as u64);
                o.field_u64("executed", inv.executed as u64);
                o.field_u64("loads", inv.loads as u64);
                o.field_u64("stores", inv.stores as u64);
                o.field_u64("rows", inv.rows as u64);
                o.field_u64("spec_depth", inv.spec_depth as u64);
                o.field_bool("misspeculated", inv.misspeculated);
                o.field_bool("flushed", inv.flushed);
                o.field_u64("stall_cycles", inv.stall_cycles as u64);
                o.field_u64("exec_cycles", inv.exec_cycles as u64);
                o.field_u64("tail_cycles", inv.tail_cycles as u64);
            }
            ProbeEvent::Fabric(fab) => {
                o.field_u64("entry_pc", fab.entry_pc as u64);
                o.field_u64("rows", fab.rows as u64);
                o.field_u64("exec_thirds", fab.exec_thirds as u64);
                o.field_u64("capacity_thirds", fab.capacity_thirds as u64);
                o.field_u64("alu_busy_thirds", fab.alu_busy_thirds as u64);
                o.field_u64("mult_busy_thirds", fab.mult_busy_thirds as u64);
                o.field_u64("ldst_busy_thirds", fab.ldst_busy_thirds as u64);
                o.field_u64("issued_ops", fab.issued_ops as u64);
                o.field_u64("squashed_ops", fab.squashed_ops as u64);
                o.field_u64("residual_cycles", fab.residual_cycles as u64);
                o.field_u64("writeback_writes", fab.writeback_writes as u64);
                o.field_u64("writeback_slots", fab.writeback_slots as u64);
            }
            ProbeEvent::StreamTag { pc, len, burst } => {
                o.field_u64("pc", pc as u64);
                o.field_u64("len", len as u64);
                o.field_u64("burst", burst as u64);
            }
        }
        self.write_line(&o.finish());
    }
}

impl<W: Write> Probe for JsonlSink<W> {
    fn emit(&mut self, event: ProbeEvent) {
        self.events += 1;
        self.sim_cycles += event.cycles();
        if matches!(event, ProbeEvent::Retire { .. }) {
            self.retired += 1;
        }
        match event {
            ProbeEvent::Retire {
                kind,
                base_cycles,
                i_stall,
                d_stall,
                ..
            } => {
                self.batch.count += 1;
                self.batch.base_cycles += base_cycles as u64;
                self.batch.i_stall += i_stall as u64;
                self.batch.d_stall += d_stall as u64;
                let slot = KIND_ORDER
                    .iter()
                    .position(|k| *k == kind)
                    .expect("known kind");
                self.batch.kinds[slot] += 1;
                if self.batch.count >= BATCH_CAP {
                    self.flush_batch();
                }
            }
            ProbeEvent::RcacheMiss { .. } => {
                self.batch.rcache_misses += 1;
            }
            other => {
                self.flush_batch();
                self.write_event(&other);
            }
        }
        if self.telemetry_interval > 0
            && self.sim_cycles - self.last_telemetry_cycle >= self.telemetry_interval
        {
            self.write_telemetry();
        }
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.telemetry_interval > 0 {
            self.write_telemetry();
        }
        self.flush_batch();
        let mut o = ObjectWriter::new();
        o.field_str("type", "footer");
        o.field_u64("events", self.events);
        self.write_line(&o.finish());
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ArrayInvoke;
    use crate::json;

    fn retire(pc: u32, kind: RetireKind) -> ProbeEvent {
        ProbeEvent::Retire {
            pc,
            kind,
            base_cycles: 1,
            i_stall: 0,
            d_stall: 2,
            ends_block: false,
        }
    }

    fn invoke() -> ProbeEvent {
        ProbeEvent::ArrayInvoke(ArrayInvoke {
            entry_pc: 0x400000,
            exit_pc: 0x400020,
            covered: 8,
            executed: 6,
            loads: 1,
            stores: 1,
            rows: 3,
            spec_depth: 1,
            misspeculated: false,
            flushed: false,
            stall_cycles: 0,
            exec_cycles: 4,
            tail_cycles: 1,
        })
    }

    #[test]
    fn batches_consecutive_retires() {
        let mut sink = JsonlSink::new(Vec::new(), "t", 128);
        sink.emit(ProbeEvent::RcacheMiss { pc: 0x100 });
        sink.emit(retire(0x100, RetireKind::Alu));
        sink.emit(ProbeEvent::RcacheMiss { pc: 0x104 });
        sink.emit(retire(0x104, RetireKind::Load));
        sink.emit(ProbeEvent::RcacheHit { pc: 0x108, len: 8 });
        sink.emit(invoke());
        let (bytes, err) = sink.into_inner();
        assert!(err.is_none());
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // header, retire_batch, rcache_hit, array_invoke, footer
        assert_eq!(lines.len(), 5, "{text}");
        let batch = json::parse(lines[1]).unwrap();
        assert_eq!(batch.get("type").unwrap().as_str(), Some("retire_batch"));
        assert_eq!(batch.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(batch.get("rcache_misses").unwrap().as_u64(), Some(2));
        assert_eq!(batch.get("d_stall").unwrap().as_u64(), Some(4));
        assert_eq!(
            batch.get("kinds").unwrap().get("alu").unwrap().as_u64(),
            Some(1)
        );
        let footer = json::parse(lines[4]).unwrap();
        assert_eq!(footer.get("events").unwrap().as_u64(), Some(6));
    }

    #[test]
    fn every_line_is_valid_json() {
        let mut sink = JsonlSink::new(Vec::new(), "weird \"name\"\n", 0);
        sink.emit(ProbeEvent::TransBegin { pc: 4 });
        sink.emit(ProbeEvent::TransCommit {
            entry_pc: 4,
            instructions: 5,
            rows: 2,
            spec_blocks: 1,
            partial: true,
        });
        sink.emit(ProbeEvent::RcacheInsert {
            pc: 4,
            len: 5,
            evicted: Some(8),
        });
        sink.emit(ProbeEvent::RcacheEvict {
            pc: 8,
            len: 9,
            uses: 3,
        });
        sink.emit(ProbeEvent::SpecMispredict {
            region_pc: 4,
            region_len: 5,
            branch_pc: 16,
            penalty_cycles: 2,
        });
        sink.emit(ProbeEvent::RcacheFlush { pc: 4, len: 5 });
        let (bytes, err) = sink.into_inner();
        assert!(err.is_none());
        for line in String::from_utf8(bytes).unwrap().lines() {
            json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn telemetry_records_do_not_count_as_events() {
        let mut sink = JsonlSink::new(Vec::new(), "t", 0);
        sink.set_telemetry_interval(2);
        for i in 0..4 {
            sink.emit(retire(i * 4, RetireKind::Alu)); // 3 cycles each
        }
        let (bytes, err) = sink.into_inner();
        assert!(err.is_none());
        let text = String::from_utf8(bytes).unwrap();
        let telemetry: Vec<_> = text
            .lines()
            .filter(|l| l.contains("\"telemetry\""))
            .collect();
        // One per crossed interval plus the final sample at finish.
        assert!(telemetry.len() >= 2, "{text}");
        let last = json::parse(telemetry.last().unwrap()).unwrap();
        assert_eq!(last.get("sim_cycles").unwrap().as_u64(), Some(12));
        assert_eq!(last.get("retired").unwrap().as_u64(), Some(4));
        assert!(last.get("host_nanos").unwrap().as_u64().is_some());
        // The footer still counts only probe events.
        let footer = text.lines().last().unwrap();
        let footer = json::parse(footer).unwrap();
        assert_eq!(footer.get("events").unwrap().as_u64(), Some(4));
        for line in text.lines() {
            json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn batch_cap_splits_long_runs() {
        let mut sink = JsonlSink::new(Vec::new(), "t", 0);
        for i in 0..(BATCH_CAP + 10) {
            sink.emit(retire(i as u32 * 4, RetireKind::Alu));
        }
        let (bytes, _) = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let batches = text.lines().filter(|l| l.contains("retire_batch")).count();
        assert_eq!(batches, 2);
    }
}
