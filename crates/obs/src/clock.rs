//! Monotonic time as an injectable dependency.
//!
//! Wall-clock observability (spans, status `host_nanos`, latency
//! percentiles) needs a time source, but scattering `Instant::now()`
//! through serve/sweep makes the resulting artifacts untestable: every
//! test asserting on recorded times becomes flaky. The [`Clock`] trait
//! is the one seam — production code takes a [`SharedClock`] and reads
//! [`Clock::now_nanos`]; tests inject a [`FakeClock`] and advance it
//! explicitly, so span fixtures are byte-stable.
//!
//! Clock readings are monotonic nanoseconds since an arbitrary origin
//! fixed at clock construction. Only differences are meaningful; no
//! reading ever decreases.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock.
///
/// `Debug + Send + Sync` are supertraits so a `SharedClock` can be
/// stored in `derive(Debug)` structs and shared across worker threads.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Monotonic nanoseconds since this clock's origin. Never
    /// decreases; the origin is arbitrary, so only differences between
    /// two readings of the *same* clock are meaningful.
    fn now_nanos(&self) -> u64;
}

/// A shareable clock handle: the form production code passes around.
pub type SharedClock = Arc<dyn Clock>;

/// The real clock: [`Instant`]-backed, origin fixed at construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }

    /// A fresh real clock behind a [`SharedClock`] handle.
    pub fn shared() -> SharedClock {
        Arc::new(MonotonicClock::new())
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// A deterministic clock for tests: reads whatever was last set and
/// only moves when told to. Share it via `Arc<FakeClock>` (which
/// coerces to [`SharedClock`]) and keep a second `Arc` to advance it
/// from the test body.
#[derive(Debug, Default)]
pub struct FakeClock {
    nanos: AtomicU64,
}

impl FakeClock {
    /// A fake clock starting at `start_nanos`.
    pub fn new(start_nanos: u64) -> FakeClock {
        FakeClock {
            nanos: AtomicU64::new(start_nanos),
        }
    }

    /// A fake clock behind an `Arc`, for sharing with the code under
    /// test while the test keeps its own handle to advance time.
    pub fn shared(start_nanos: u64) -> Arc<FakeClock> {
        Arc::new(FakeClock::new(start_nanos))
    }

    /// Moves time forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Jumps time to an absolute reading. Monotonicity is the caller's
    /// responsibility — going backwards is allowed here so tests can
    /// exercise how consumers defend against a broken clock.
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let mut last = clock.now_nanos();
        for _ in 0..1000 {
            let now = clock.now_nanos();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn fake_clock_moves_only_when_told() {
        let clock = FakeClock::new(100);
        assert_eq!(clock.now_nanos(), 100);
        assert_eq!(clock.now_nanos(), 100);
        clock.advance(50);
        assert_eq!(clock.now_nanos(), 150);
        clock.set(7);
        assert_eq!(clock.now_nanos(), 7);
    }

    #[test]
    fn fake_clock_shares_through_trait_object() {
        let fake = FakeClock::shared(0);
        let shared: SharedClock = Arc::clone(&fake) as SharedClock;
        fake.advance(42);
        assert_eq!(shared.now_nanos(), 42);
    }
}
