//! The workspace's one FNV-1a implementation.
//!
//! Every integrity checksum in the repo — the `.dimrc` snapshot footer,
//! the sweep resume journal, the live status-file header — is this same
//! 64-bit FNV-1a. It lives here (the only crate with no dependencies)
//! and is re-exported by `dim-cgra` and `dim-core`, so there is exactly
//! one definition to test against the published golden vectors.

/// FNV-1a 64-bit hash. Not cryptographic; it guards against truncation
/// and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_vectors() {
        // Published FNV-1a 64-bit test vectors (Noll's reference set).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
