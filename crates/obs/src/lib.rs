//! # dim-obs
//!
//! The unified instrumentation layer of the DIM reproduction: every
//! component of the simulated system — the MIPS pipeline, the binary
//! translator, the reconfiguration cache, the reconfigurable array —
//! emits structured [`ProbeEvent`]s into a [`Probe`]. Probes are
//! monomorphized into the simulation loops, and the default
//! [`NullProbe`] advertises `ENABLED = false`, so an uninstrumented run
//! pays nothing: every emit site is guarded by `if P::ENABLED` and
//! compiles away.
//!
//! Three sinks are built on the probe:
//!
//! * [`JsonlSink`] — a versioned, machine-readable JSONL event trace
//!   (`dim run --trace-out t.jsonl`), replayable via [`replay`];
//! * [`MetricsRegistry`] — counters and log-scaled [`LogHistogram`]s
//!   with periodic interval snapshots, so time-series behavior (cache
//!   warm-up, phase changes) is visible, not just end-of-run totals;
//! * [`CycleProfiler`] — rolls every simulated cycle into one of
//!   {pipeline, i-stall, d-stall, reconfig-stall, array-exec,
//!   write-back-tail} per static basic block (`dim profile`).
//!
//! Always-on observability adds three more pieces (`dim-flight`):
//!
//! * [`FlightRecorder`] — a fixed-capacity, allocation-free ring of the
//!   last N events with per-kind drop accounting, dumpable as a valid
//!   schema-v3 trace at any moment;
//! * [`Watchdog`] — an online invariant checker (cycle conservation,
//!   rcache occupancy, hit-without-insert, monotonic cycle counter)
//!   that latches a precise [`Violation`]; [`FlightGuard`] pairs the
//!   two so the first trip snapshots the black box automatically;
//! * [`status`] — the atomically-replaced, checksummed live status file
//!   (`status.dimstat`) that `dim top` tails.
//!
//! The event schema is versioned ([`SCHEMA_VERSION`]); see
//! `docs/observability.md` for the compatibility policy and a worked
//! example of diffing two runs.

#![warn(missing_docs)]

pub mod clock;
mod event;
mod flight;
pub mod frame;
mod hash;
mod json;
mod jsonl;
mod metrics;
mod probe;
mod profile;
pub mod replay;
pub mod span;
pub mod status;
mod watchdog;

pub use clock::{Clock, FakeClock, MonotonicClock, SharedClock};
pub use event::{
    ArrayInvoke, FabricUtil, ProbeEvent, RetireKind, EVENT_KINDS, EVENT_KIND_NAMES, SCHEMA_VERSION,
};
pub use flight::{FlightGuard, FlightRecorder};
pub use hash::fnv1a64;
pub use json::{parse as parse_json, write_escaped, JsonValue, ObjectWriter};
pub use jsonl::JsonlSink;
pub use metrics::{IntervalSnapshot, LogHistogram, MetricsRegistry};
pub use probe::{NullProbe, Probe, RecordingProbe};
pub use profile::{AttributionKind, BlockCycles, CycleProfile, CycleProfiler};
pub use span::{
    HostBucket, HostSplit, SpanFile, SpanForest, SpanGuard, SpanId, SpanSheet, SPAN_FILE_NAME,
    SPAN_MAGIC, SPAN_VERSION,
};
pub use watchdog::{Violation, Watchdog};
