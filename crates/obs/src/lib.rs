//! # dim-obs
//!
//! The unified instrumentation layer of the DIM reproduction: every
//! component of the simulated system — the MIPS pipeline, the binary
//! translator, the reconfiguration cache, the reconfigurable array —
//! emits structured [`ProbeEvent`]s into a [`Probe`]. Probes are
//! monomorphized into the simulation loops, and the default
//! [`NullProbe`] advertises `ENABLED = false`, so an uninstrumented run
//! pays nothing: every emit site is guarded by `if P::ENABLED` and
//! compiles away.
//!
//! Three sinks are built on the probe:
//!
//! * [`JsonlSink`] — a versioned, machine-readable JSONL event trace
//!   (`dim run --trace-out t.jsonl`), replayable via [`replay`];
//! * [`MetricsRegistry`] — counters and log-scaled [`LogHistogram`]s
//!   with periodic interval snapshots, so time-series behavior (cache
//!   warm-up, phase changes) is visible, not just end-of-run totals;
//! * [`CycleProfiler`] — rolls every simulated cycle into one of
//!   {pipeline, i-stall, d-stall, reconfig-stall, array-exec,
//!   write-back-tail} per static basic block (`dim profile`).
//!
//! The event schema is versioned ([`SCHEMA_VERSION`]); see
//! `docs/observability.md` for the compatibility policy and a worked
//! example of diffing two runs.

#![warn(missing_docs)]

mod event;
mod json;
mod jsonl;
mod metrics;
mod probe;
mod profile;
pub mod replay;

pub use event::{ArrayInvoke, ProbeEvent, RetireKind, SCHEMA_VERSION};
pub use json::{parse as parse_json, write_escaped, JsonValue, ObjectWriter};
pub use jsonl::JsonlSink;
pub use metrics::{IntervalSnapshot, LogHistogram, MetricsRegistry};
pub use probe::{NullProbe, Probe, RecordingProbe};
pub use profile::{AttributionKind, BlockCycles, CycleProfile, CycleProfiler};
