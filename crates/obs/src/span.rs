//! Wall-clock span tracing: causal trees of host-time intervals.
//!
//! Everything the other observability layers measure is *simulated*
//! cycles. Spans measure the other axis: where real host time goes
//! while a request or sweep cell moves through the pipeline —
//! queue wait vs. warm start vs. execution, and inside the engine,
//! fetch/decode vs. translation vs. rcache vs. array replay.
//!
//! The recording side is allocation-free after construction: a
//! [`SpanSheet`] preallocates a fixed number of [span records](SpanId)
//! and hands out monotonically increasing ids; when the sheet is full,
//! further `begin` calls return [`SpanId::NONE`] and bump a drop
//! counter instead of allocating. Time comes from an injected
//! [`Clock`](crate::clock::Clock), so tests drive a
//! [`FakeClock`](crate::clock::FakeClock) and get byte-stable dumps.
//!
//! Dumps are text frames ([`crate::frame`]) with magic [`SPAN_MAGIC`]:
//! one JSON header line (span/attr counts, drop counter, body
//! checksum) over a JSONL body of span lines and host-attribution
//! lines. Span files live *outside* the determinism contract, next to
//! `telemetry.json`: two identical runs produce identical trees but
//! different nanosecond values.
//!
//! The analysis side ([`SpanFile`] → [`SpanForest`]) rebuilds the
//! causal trees, trims orphans, checks well-formedness laws (every
//! retained span ended, children nest inside parents, critical path ≤
//! wall time) and extracts per-stage durations and critical paths for
//! `dim spans`.

use crate::clock::SharedClock;
use crate::frame::{parse_text_frame, render_text_frame, TextFrameError};
use crate::json::{parse as parse_json, JsonValue, ObjectWriter};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// Magic string in the span dump header.
pub const SPAN_MAGIC: &str = "DIMSPAN";
/// Current span dump format version.
pub const SPAN_VERSION: u64 = 1;
/// Conventional file name for a span dump.
pub const SPAN_FILE_NAME: &str = "spans.dimspan";

/// Longest tenant label stored inline in a span record; longer labels
/// are truncated at a character boundary.
const MAX_TENANT_BYTES: usize = 40;

/// Identity of one recorded span. Ids are 1-based and unique within
/// one [`SpanSheet`]; [`SpanId::NONE`] (0) is "no span" — every sheet
/// operation accepts it and does nothing, so callers can thread ids
/// unconditionally even when recording is disabled or the sheet is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span id: accepted everywhere, records nothing.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this id refers to an actual recorded span.
    #[must_use]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One recorded span, fixed-size so the sheet never reallocates.
#[derive(Debug, Clone)]
struct SpanRecord {
    parent: u64,
    stage: &'static str,
    tenant: [u8; MAX_TENANT_BYTES],
    tenant_len: u8,
    seq: u64,
    start_nanos: u64,
    end_nanos: u64,
}

impl SpanRecord {
    fn tenant(&self) -> &str {
        // The bytes were copied from a `&str` at a char boundary.
        std::str::from_utf8(&self.tenant[..usize::from(self.tenant_len)]).unwrap_or("")
    }
}

/// One host-attribution record: the strided-sampling estimate of where
/// a span's engine time went, attached to that span's id.
#[derive(Debug, Clone)]
struct AttrRecord {
    span: u64,
    buckets: [BucketAcc; HOST_BUCKET_COUNT],
}

#[derive(Debug)]
struct SheetInner {
    spans: Vec<SpanRecord>,
    attrs: Vec<AttrRecord>,
    dropped: u64,
}

/// A fixed-capacity, thread-shared recorder of wall-clock spans.
///
/// `begin`/`end` take `&self` (a mutex guards the records), so one
/// sheet is shared by the serve listener, dispatcher and workers, or
/// by every sweep worker. All operations are allocation-free once the
/// sheet is constructed; when capacity runs out the sheet counts drops
/// instead of growing.
#[derive(Debug)]
pub struct SpanSheet {
    clock: SharedClock,
    inner: Mutex<SheetInner>,
}

impl SpanSheet {
    /// A sheet that can hold `capacity` spans (and as many attribution
    /// records), reading time from `clock`.
    pub fn new(clock: SharedClock, capacity: usize) -> SpanSheet {
        SpanSheet {
            clock,
            inner: Mutex::new(SheetInner {
                spans: Vec::with_capacity(capacity),
                attrs: Vec::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SheetInner> {
        // A worker panicking mid-request must not take span recording
        // down with it; the records themselves stay well-formed.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The sheet's clock reading, for callers that need latency math
    /// consistent with recorded spans.
    #[must_use]
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// The clock this sheet stamps spans with.
    #[must_use]
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Opens a root span carrying a tenant label and sequence number.
    /// Returns [`SpanId::NONE`] (and counts a drop) when full.
    pub fn begin_root(&self, stage: &'static str, tenant: &str, seq: u64) -> SpanId {
        self.begin_inner(stage, SpanId::NONE, tenant, seq)
    }

    /// Opens a child span under `parent` (pass [`SpanId::NONE`] for an
    /// unlabeled root). Returns [`SpanId::NONE`] when full.
    pub fn begin(&self, stage: &'static str, parent: SpanId) -> SpanId {
        self.begin_inner(stage, parent, "", 0)
    }

    fn begin_inner(&self, stage: &'static str, parent: SpanId, tenant: &str, seq: u64) -> SpanId {
        let start_nanos = self.clock.now_nanos();
        let mut inner = self.lock();
        if inner.spans.len() == inner.spans.capacity() {
            inner.dropped += 1;
            return SpanId::NONE;
        }
        let mut tenant_buf = [0u8; MAX_TENANT_BYTES];
        let mut len = tenant.len().min(MAX_TENANT_BYTES);
        while !tenant.is_char_boundary(len) {
            len -= 1;
        }
        tenant_buf[..len].copy_from_slice(&tenant.as_bytes()[..len]);
        inner.spans.push(SpanRecord {
            parent: parent.0,
            stage,
            tenant: tenant_buf,
            tenant_len: len as u8,
            seq,
            start_nanos,
            end_nanos: 0,
        });
        SpanId(inner.spans.len() as u64)
    }

    /// Closes a span. Idempotent: a second `end` (or an `end` on
    /// [`SpanId::NONE`]) does nothing, so drop guards and explicit
    /// ends can coexist.
    pub fn end(&self, id: SpanId) {
        if !id.is_some() {
            return;
        }
        let end_nanos = self.clock.now_nanos();
        let mut inner = self.lock();
        if let Some(record) = inner.spans.get_mut(id.0 as usize - 1) {
            if record.end_nanos == 0 {
                record.end_nanos = end_nanos.max(record.start_nanos);
            }
        }
    }

    /// Opens a span that ends automatically when the guard drops —
    /// the early-return-safe way to bracket a fallible section.
    pub fn guard(&self, stage: &'static str, parent: SpanId) -> SpanGuard<'_> {
        SpanGuard {
            sheet: self,
            id: self.begin(stage, parent),
        }
    }

    /// Attaches a host-time attribution snapshot to `span`. Ignored
    /// for [`SpanId::NONE`]; counts a drop when the attr table is
    /// full.
    pub fn attr(&self, span: SpanId, split: &HostSplit) {
        if !span.is_some() {
            return;
        }
        let mut inner = self.lock();
        if inner.attrs.len() == inner.attrs.capacity() {
            inner.dropped += 1;
            return;
        }
        inner.attrs.push(AttrRecord {
            span: span.0,
            buckets: split.acc.clone(),
        });
    }

    /// Number of spans recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().spans.len()
    }

    /// Whether no spans have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans and attribution records refused because the sheet was
    /// full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Renders the complete [`SPAN_MAGIC`] text frame: header line
    /// plus one JSONL line per span and per attribution record.
    #[must_use]
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut body = String::new();
        for (index, record) in inner.spans.iter().enumerate() {
            let mut line = ObjectWriter::new();
            line.field_u64("id", index as u64 + 1);
            line.field_u64("parent", record.parent);
            line.field_str("stage", record.stage);
            line.field_str("tenant", record.tenant());
            line.field_u64("seq", record.seq);
            line.field_u64("start_nanos", record.start_nanos);
            line.field_u64("end_nanos", record.end_nanos);
            body.push_str(&line.finish());
            body.push('\n');
        }
        for attr in &inner.attrs {
            let mut line = ObjectWriter::new();
            line.field_str("attr", "host_split");
            line.field_u64("span", attr.span);
            for (bucket, acc) in HostBucket::ALL.iter().zip(attr.buckets.iter()) {
                line.field_u64(&format!("{}_count", bucket.name()), acc.count);
                line.field_u64(&format!("{}_sampled", bucket.name()), acc.sampled);
                line.field_u64(&format!("{}_nanos", bucket.name()), acc.estimated_nanos());
            }
            body.push_str(&line.finish());
            body.push('\n');
        }
        render_text_frame(
            "span_header",
            SPAN_MAGIC,
            SPAN_VERSION,
            &[
                ("spans", inner.spans.len() as u64),
                ("attrs", inner.attrs.len() as u64),
                ("dropped", inner.dropped),
            ],
            &body,
        )
    }
}

/// Ends its span when dropped; obtained from [`SpanSheet::guard`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    sheet: &'a SpanSheet,
    id: SpanId,
}

impl SpanGuard<'_> {
    /// The guarded span's id, for parenting children under it.
    #[must_use]
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Ends the span now (equivalent to dropping the guard).
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.sheet.end(self.id);
    }
}

// ---------------------------------------------------------------------
// Host-time attribution
// ---------------------------------------------------------------------

/// Number of engine host-time buckets.
pub const HOST_BUCKET_COUNT: usize = 4;

/// The engine pipeline sections host time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostBucket {
    /// Scalar fetch/decode/execute of one instruction in the
    /// interpreter (an rcache-miss cycle).
    FetchDecode,
    /// Translator observe/commit work, including configuration
    /// insertion into the rcache.
    Translate,
    /// Reconfiguration-cache lookup on the hot path.
    Rcache,
    /// Reconfigurable-array replay of a cached configuration.
    ArrayReplay,
}

impl HostBucket {
    /// All buckets, in dump order.
    pub const ALL: [HostBucket; HOST_BUCKET_COUNT] = [
        HostBucket::FetchDecode,
        HostBucket::Translate,
        HostBucket::Rcache,
        HostBucket::ArrayReplay,
    ];

    /// Stable snake_case name used in dump fields and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HostBucket::FetchDecode => "fetch_decode",
            HostBucket::Translate => "translate",
            HostBucket::Rcache => "rcache",
            HostBucket::ArrayReplay => "array_replay",
        }
    }

    fn index(self) -> usize {
        match self {
            HostBucket::FetchDecode => 0,
            HostBucket::Translate => 1,
            HostBucket::Rcache => 2,
            HostBucket::ArrayReplay => 3,
        }
    }
}

/// Occurrences of a bucket that read the clock: the first
/// `PRIMING_SAMPLES`, then every `SAMPLE_STRIDE`-th.
const PRIMING_SAMPLES: u64 = 8;
const SAMPLE_STRIDE: u64 = 64;

#[derive(Debug, Clone, Default)]
struct BucketAcc {
    count: u64,
    sampled: u64,
    nanos: u64,
}

impl BucketAcc {
    /// Scales the sampled nanoseconds up to the full occurrence count.
    fn estimated_nanos(&self) -> u64 {
        if self.sampled == 0 {
            return 0;
        }
        let scaled = u128::from(self.nanos) * u128::from(self.count) / u128::from(self.sampled);
        scaled.min(u128::from(u64::MAX)) as u64
    }
}

/// A strided-sampling accumulator of engine host time per
/// [`HostBucket`].
///
/// The engine's hot sections run in ~100 ns, so reading the clock on
/// every occurrence (~2×20 ns per section) would blow the ≤5% span
/// overhead budget. Instead every occurrence pays one counter
/// increment, and only the first [`PRIMING_SAMPLES`] plus every
/// [`SAMPLE_STRIDE`]-th occurrence read a clock pair; the estimate
/// scales the sampled time by `count / sampled`. Sections must not
/// nest — `enter` overwrites any pending sample, and `exit` only
/// credits a sample opened by the matching `enter`.
#[derive(Debug, Clone)]
pub struct HostSplit {
    clock: SharedClock,
    acc: [BucketAcc; HOST_BUCKET_COUNT],
    pending: Option<HostBucket>,
    pending_start: u64,
}

impl HostSplit {
    /// A zeroed accumulator reading time from `clock`.
    #[must_use]
    pub fn new(clock: SharedClock) -> HostSplit {
        HostSplit {
            clock,
            acc: [
                BucketAcc::default(),
                BucketAcc::default(),
                BucketAcc::default(),
                BucketAcc::default(),
            ],
            pending: None,
            pending_start: 0,
        }
    }

    /// Marks entry into a bucket's section. Cheap on non-sampled
    /// occurrences: one increment and one branch.
    #[inline]
    pub fn enter(&mut self, bucket: HostBucket) {
        let acc = &mut self.acc[bucket.index()];
        acc.count += 1;
        if acc.count <= PRIMING_SAMPLES || acc.count.is_multiple_of(SAMPLE_STRIDE) {
            self.pending = Some(bucket);
            self.pending_start = self.clock.now_nanos();
        }
    }

    /// Marks exit from a bucket's section, crediting the sample opened
    /// by the matching [`enter`](HostSplit::enter) (if any).
    #[inline]
    pub fn exit(&mut self, bucket: HostBucket) {
        if self.pending == Some(bucket) {
            let now = self.clock.now_nanos();
            self.pending = None;
            let acc = &mut self.acc[bucket.index()];
            acc.nanos += now.saturating_sub(self.pending_start);
            acc.sampled += 1;
        }
    }

    /// How many times the bucket's section ran.
    #[must_use]
    pub fn count(&self, bucket: HostBucket) -> u64 {
        self.acc[bucket.index()].count
    }

    /// How many occurrences actually read the clock.
    #[must_use]
    pub fn sampled(&self, bucket: HostBucket) -> u64 {
        self.acc[bucket.index()].sampled
    }

    /// Estimated total host nanoseconds in the bucket (sampled time
    /// scaled to the full count).
    #[must_use]
    pub fn estimated_nanos(&self, bucket: HostBucket) -> u64 {
        self.acc[bucket.index()].estimated_nanos()
    }

    /// Sum of all buckets' estimates.
    #[must_use]
    pub fn total_estimated_nanos(&self) -> u64 {
        HostBucket::ALL
            .iter()
            .map(|&b| self.estimated_nanos(b))
            .fold(0u64, u64::saturating_add)
    }
}

// ---------------------------------------------------------------------
// Parsing and analysis
// ---------------------------------------------------------------------

/// Why a span dump could not be parsed.
#[derive(Debug)]
pub enum SpanError {
    /// The text frame failed (magic, version, checksum, header).
    Frame(TextFrameError),
    /// A body line is not a valid span or attribution record, or the
    /// header counts disagree with the body.
    Malformed(String),
}

impl fmt::Display for SpanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanError::Frame(e) => write!(f, "span frame: {e}"),
            SpanError::Malformed(m) => write!(f, "malformed span dump: {m}"),
        }
    }
}

impl std::error::Error for SpanError {}

impl From<TextFrameError> for SpanError {
    fn from(e: TextFrameError) -> SpanError {
        SpanError::Frame(e)
    }
}

/// A [`read_span_file`] failure: I/O trouble or a bad dump.
#[derive(Debug)]
pub enum SpanReadError {
    /// The file could not be read.
    Io(io::Error),
    /// The file's contents are not a valid span dump.
    Span(SpanError),
}

impl fmt::Display for SpanReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanReadError::Io(e) => write!(f, "span file: {e}"),
            SpanReadError::Span(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpanReadError {}

/// One span as read back from a dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedSpan {
    /// 1-based id unique within the dump.
    pub id: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// Stage name (`request`, `queue_wait`, `exec`, …).
    pub stage: String,
    /// Tenant label (roots only; empty otherwise).
    pub tenant: String,
    /// Request/cell sequence number (roots only; 0 otherwise).
    pub seq: u64,
    /// Start reading of the recording clock.
    pub start_nanos: u64,
    /// End reading; 0 means the span was never ended.
    pub end_nanos: u64,
}

impl ParsedSpan {
    /// Whether the span was properly ended.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.end_nanos >= self.start_nanos && self.end_nanos != 0
    }

    /// Wall duration in nanoseconds (0 for incomplete spans).
    #[must_use]
    pub fn duration_nanos(&self) -> u64 {
        if self.is_complete() {
            self.end_nanos - self.start_nanos
        } else {
            0
        }
    }
}

/// One bucket of a parsed host-attribution record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostBucketEst {
    /// Bucket name (see [`HostBucket::name`]).
    pub name: String,
    /// Occurrences of the section.
    pub count: u64,
    /// Occurrences that read the clock.
    pub sampled: u64,
    /// Estimated total nanoseconds.
    pub nanos: u64,
}

/// A parsed host-attribution record: where one span's engine time
/// went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedAttr {
    /// Id of the span the attribution belongs to.
    pub span: u64,
    /// Per-bucket estimates, in [`HostBucket::ALL`] order.
    pub buckets: Vec<HostBucketEst>,
}

/// A parsed span dump: the flat records, before forest assembly.
#[derive(Debug, Clone, Default)]
pub struct SpanFile {
    /// Every span line, in id order.
    pub spans: Vec<ParsedSpan>,
    /// Every host-attribution line.
    pub attrs: Vec<ParsedAttr>,
    /// Drop counter from the header.
    pub dropped: u64,
}

fn get_u64(value: &JsonValue, key: &str, line: usize) -> Result<u64, SpanError> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| SpanError::Malformed(format!("line {line}: missing `{key}`")))
}

impl SpanFile {
    /// Parses a complete [`SPAN_MAGIC`] text frame.
    ///
    /// # Errors
    ///
    /// [`SpanError`] on frame-level failures (magic, version,
    /// checksum) or malformed body lines.
    pub fn parse(text: &str) -> Result<SpanFile, SpanError> {
        let (header, body) = parse_text_frame(SPAN_MAGIC, SPAN_VERSION, text)?;
        let expected_spans = header.get("spans").and_then(JsonValue::as_u64);
        let expected_attrs = header.get("attrs").and_then(JsonValue::as_u64);
        let dropped = header
            .get("dropped")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let mut spans = Vec::new();
        let mut attrs = Vec::new();
        for (index, line) in body.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let number = index + 2; // 1-based, after the header line
            let value = parse_json(line)
                .map_err(|e| SpanError::Malformed(format!("line {number}: {e}")))?;
            if value.get("attr").is_some() {
                let span = get_u64(&value, "span", number)?;
                let mut buckets = Vec::with_capacity(HOST_BUCKET_COUNT);
                for bucket in HostBucket::ALL {
                    buckets.push(HostBucketEst {
                        name: bucket.name().to_string(),
                        count: get_u64(&value, &format!("{}_count", bucket.name()), number)?,
                        sampled: get_u64(&value, &format!("{}_sampled", bucket.name()), number)?,
                        nanos: get_u64(&value, &format!("{}_nanos", bucket.name()), number)?,
                    });
                }
                attrs.push(ParsedAttr { span, buckets });
            } else {
                spans.push(ParsedSpan {
                    id: get_u64(&value, "id", number)?,
                    parent: get_u64(&value, "parent", number)?,
                    stage: value
                        .get("stage")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_string(),
                    tenant: value
                        .get("tenant")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_string(),
                    seq: get_u64(&value, "seq", number)?,
                    start_nanos: get_u64(&value, "start_nanos", number)?,
                    end_nanos: get_u64(&value, "end_nanos", number)?,
                });
            }
        }
        if let Some(expected) = expected_spans {
            if expected != spans.len() as u64 {
                return Err(SpanError::Malformed(format!(
                    "header declares {expected} spans, body has {}",
                    spans.len()
                )));
            }
        }
        if let Some(expected) = expected_attrs {
            if expected != attrs.len() as u64 {
                return Err(SpanError::Malformed(format!(
                    "header declares {expected} attrs, body has {}",
                    attrs.len()
                )));
            }
        }
        Ok(SpanFile {
            spans,
            attrs,
            dropped,
        })
    }

    /// Host-attribution record for `span`, if one was recorded.
    #[must_use]
    pub fn attr_for(&self, span: u64) -> Option<&ParsedAttr> {
        self.attrs.iter().find(|a| a.span == span)
    }
}

/// Reads and parses a span dump from disk.
///
/// # Errors
///
/// [`SpanReadError`] on I/O failure or an invalid dump.
pub fn read_span_file(path: &Path) -> Result<SpanFile, SpanReadError> {
    let text = std::fs::read_to_string(path).map_err(SpanReadError::Io)?;
    SpanFile::parse(&text).map_err(SpanReadError::Span)
}

/// The causal trees of a span dump, with orphans trimmed.
///
/// Spans whose parent chain does not reach a root (dangling parent id,
/// dropped ancestor, or a cycle) are *trimmed*: excluded from
/// `spans`/`roots`/`children` and counted in `orphans_trimmed`.
#[derive(Debug, Clone)]
pub struct SpanForest {
    /// Retained spans (reachable from a root), in original dump order.
    pub spans: Vec<ParsedSpan>,
    /// Indices into `spans` of the root spans.
    pub roots: Vec<usize>,
    /// For each retained span, indices into `spans` of its children.
    pub children: Vec<Vec<usize>>,
    /// Spans discarded because their parent chain reached no root.
    pub orphans_trimmed: usize,
}

impl SpanForest {
    /// Builds the forest from a parsed dump, trimming orphans.
    #[must_use]
    pub fn build(file: &SpanFile) -> SpanForest {
        let mut index_of: BTreeMap<u64, usize> = BTreeMap::new();
        for (index, span) in file.spans.iter().enumerate() {
            index_of.insert(span.id, index);
        }
        // Children over ALL spans, then keep only those reachable from
        // a root — this drops dangling parents and cycles alike.
        let mut all_children: Vec<Vec<usize>> = vec![Vec::new(); file.spans.len()];
        let mut queue: Vec<usize> = Vec::new();
        for (index, span) in file.spans.iter().enumerate() {
            if span.parent == 0 {
                queue.push(index);
            } else if let Some(&parent_index) = index_of.get(&span.parent) {
                if parent_index != index {
                    all_children[parent_index].push(index);
                }
            }
        }
        let mut reachable = vec![false; file.spans.len()];
        let mut cursor = 0;
        while cursor < queue.len() {
            let index = queue[cursor];
            cursor += 1;
            if reachable[index] {
                continue;
            }
            reachable[index] = true;
            queue.extend(all_children[index].iter().copied());
        }
        let mut new_index = vec![usize::MAX; file.spans.len()];
        let mut spans = Vec::new();
        for (index, span) in file.spans.iter().enumerate() {
            if reachable[index] {
                new_index[index] = spans.len();
                spans.push(span.clone());
            }
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots = Vec::new();
        for (index, span) in file.spans.iter().enumerate() {
            if !reachable[index] {
                continue;
            }
            if span.parent == 0 {
                roots.push(new_index[index]);
            } else if let Some(&parent_index) = index_of.get(&span.parent) {
                children[new_index[parent_index]].push(new_index[index]);
            }
        }
        SpanForest {
            orphans_trimmed: file.spans.len() - spans.len(),
            spans,
            roots,
            children,
        }
    }

    /// A span's own time: duration minus the sum of its children's
    /// durations, clamped at zero.
    #[must_use]
    pub fn self_nanos(&self, index: usize) -> u64 {
        let child_total: u64 = self.children[index]
            .iter()
            .map(|&c| self.spans[c].duration_nanos())
            .fold(0u64, u64::saturating_add);
        self.spans[index]
            .duration_nanos()
            .saturating_sub(child_total)
    }

    /// The critical path from `root`: at each node, descend into the
    /// child whose own critical path is longest. Returns the path
    /// (indices into `spans`, root first) and its total nanoseconds
    /// (the node self-times along the path plus the final node's
    /// children, i.e. `self + max(child cp)` recursively). The total
    /// never exceeds the root's wall duration.
    #[must_use]
    pub fn critical_path(&self, root: usize) -> (Vec<usize>, u64) {
        fn walk(forest: &SpanForest, index: usize) -> (Vec<usize>, u64) {
            let mut best: Option<(Vec<usize>, u64)> = None;
            for &child in &forest.children[index] {
                let (sub_path, sub_total) = walk(forest, child);
                let better = match &best {
                    Some((_, best_total)) => sub_total > *best_total,
                    None => true,
                };
                if better {
                    best = Some((sub_path, sub_total));
                }
            }
            let (sub_path, sub_total) = best.unwrap_or_default();
            let mut path = vec![index];
            path.extend(sub_path);
            (path, forest.self_nanos(index) + sub_total)
        }
        walk(self, root)
    }

    /// Checks the span-tree well-formedness laws over the retained
    /// spans, returning a human-readable list of violations (empty
    /// means all laws hold):
    ///
    /// 1. every retained span was ended (`end ≥ start > absent 0`);
    /// 2. every child's interval nests inside its parent's;
    /// 3. every tree's critical path ≤ its root's wall duration.
    #[must_use]
    pub fn check_laws(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for (index, span) in self.spans.iter().enumerate() {
            if !span.is_complete() {
                violations.push(format!("span {} ({}) was never ended", span.id, span.stage));
            }
            for &child_index in &self.children[index] {
                let child = &self.spans[child_index];
                if child.start_nanos < span.start_nanos
                    || (child.is_complete()
                        && span.is_complete()
                        && child.end_nanos > span.end_nanos)
                {
                    violations.push(format!(
                        "span {} ({}) does not nest inside parent {} ({})",
                        child.id, child.stage, span.id, span.stage
                    ));
                }
            }
        }
        for &root in &self.roots {
            let (_, total) = self.critical_path(root);
            let wall = self.spans[root].duration_nanos();
            if total > wall {
                violations.push(format!(
                    "root span {} critical path {total} ns exceeds wall {wall} ns",
                    self.spans[root].id
                ));
            }
        }
        violations
    }

    /// Durations grouped by stage name over complete retained spans.
    #[must_use]
    pub fn stage_durations(&self) -> BTreeMap<String, Vec<u64>> {
        let mut map: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for span in &self.spans {
            if span.is_complete() {
                map.entry(span.stage.clone())
                    .or_default()
                    .push(span.duration_nanos());
            }
        }
        map
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (the same
/// rule `dim serve --selftest` uses for latencies). Returns 0 for an
/// empty slice.
#[must_use]
pub fn percentile_nanos(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(pct * (sorted.len() - 1)) / 100]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;
    use std::sync::Arc;

    fn fake_sheet(capacity: usize) -> (Arc<FakeClock>, SpanSheet) {
        let clock = FakeClock::shared(1_000);
        let sheet = SpanSheet::new(Arc::clone(&clock) as SharedClock, capacity);
        (clock, sheet)
    }

    #[test]
    fn sheet_round_trips_a_tree_byte_stably() {
        let (clock, sheet) = fake_sheet(16);
        let root = sheet.begin_root("request", "tenant-a", 7);
        clock.advance(100);
        let child = sheet.begin("exec", root);
        clock.advance(50);
        sheet.end(child);
        clock.advance(25);
        sheet.end(root);

        let text = sheet.render();
        // Deterministic clock ⇒ identical renders.
        assert_eq!(text, sheet.render());

        let file = SpanFile::parse(&text).expect("parses");
        assert_eq!(file.spans.len(), 2);
        assert_eq!(file.dropped, 0);
        let root_span = &file.spans[0];
        assert_eq!(root_span.stage, "request");
        assert_eq!(root_span.tenant, "tenant-a");
        assert_eq!(root_span.seq, 7);
        assert_eq!(root_span.start_nanos, 1_000);
        assert_eq!(root_span.end_nanos, 1_175);
        let child_span = &file.spans[1];
        assert_eq!(child_span.parent, root_span.id);
        assert_eq!(child_span.duration_nanos(), 50);

        let forest = SpanForest::build(&file);
        assert_eq!(forest.roots.len(), 1);
        assert_eq!(forest.orphans_trimmed, 0);
        assert!(forest.check_laws().is_empty());
        let (path, total) = forest.critical_path(forest.roots[0]);
        assert_eq!(path.len(), 2);
        assert_eq!(total, 175); // 125 self + 50 child
    }

    #[test]
    fn sheet_counts_drops_at_capacity() {
        let (_clock, sheet) = fake_sheet(2);
        let a = sheet.begin("a", SpanId::NONE);
        let b = sheet.begin("b", a);
        let c = sheet.begin("c", b);
        assert!(a.is_some() && b.is_some());
        assert_eq!(c, SpanId::NONE);
        assert_eq!(sheet.dropped(), 1);
        sheet.end(c); // no-op, no panic
        sheet.end(b);
        sheet.end(a);
        let file = SpanFile::parse(&sheet.render()).expect("parses");
        assert_eq!(file.spans.len(), 2);
        assert_eq!(file.dropped, 1);
    }

    #[test]
    fn guard_ends_span_on_drop_and_end_is_idempotent() {
        let (clock, sheet) = fake_sheet(4);
        let root = sheet.begin("root", SpanId::NONE);
        let guarded;
        {
            let guard = sheet.guard("child", root);
            guarded = guard.id();
            clock.advance(30);
        }
        clock.advance(1_000);
        sheet.end(guarded); // second end must not stretch the span
        sheet.end(root);
        let file = SpanFile::parse(&sheet.render()).expect("parses");
        let child = file.spans.iter().find(|s| s.stage == "child").unwrap();
        assert_eq!(child.duration_nanos(), 30);
    }

    #[test]
    fn forest_trims_orphans_and_cycles() {
        let file = SpanFile {
            spans: vec![
                ParsedSpan {
                    id: 1,
                    parent: 0,
                    stage: "root".into(),
                    tenant: String::new(),
                    seq: 0,
                    start_nanos: 0,
                    end_nanos: 100,
                },
                ParsedSpan {
                    id: 2,
                    parent: 99, // dangling parent
                    stage: "lost".into(),
                    tenant: String::new(),
                    seq: 0,
                    start_nanos: 10,
                    end_nanos: 20,
                },
                ParsedSpan {
                    id: 3,
                    parent: 4, // 3 ↔ 4 cycle
                    stage: "loop_a".into(),
                    tenant: String::new(),
                    seq: 0,
                    start_nanos: 10,
                    end_nanos: 20,
                },
                ParsedSpan {
                    id: 4,
                    parent: 3,
                    stage: "loop_b".into(),
                    tenant: String::new(),
                    seq: 0,
                    start_nanos: 10,
                    end_nanos: 20,
                },
            ],
            attrs: Vec::new(),
            dropped: 0,
        };
        let forest = SpanForest::build(&file);
        assert_eq!(forest.spans.len(), 1);
        assert_eq!(forest.orphans_trimmed, 3);
        assert!(forest.check_laws().is_empty());
    }

    #[test]
    fn laws_catch_unended_and_escaping_spans() {
        let file = SpanFile {
            spans: vec![
                ParsedSpan {
                    id: 1,
                    parent: 0,
                    stage: "root".into(),
                    tenant: String::new(),
                    seq: 0,
                    start_nanos: 100,
                    end_nanos: 200,
                },
                ParsedSpan {
                    id: 2,
                    parent: 1,
                    stage: "escapes".into(),
                    tenant: String::new(),
                    seq: 0,
                    start_nanos: 150,
                    end_nanos: 300, // past parent end
                },
                ParsedSpan {
                    id: 3,
                    parent: 1,
                    stage: "open".into(),
                    tenant: String::new(),
                    seq: 0,
                    start_nanos: 160,
                    end_nanos: 0, // never ended
                },
            ],
            attrs: Vec::new(),
            dropped: 0,
        };
        let forest = SpanForest::build(&file);
        let violations = forest.check_laws();
        assert!(
            violations.iter().any(|v| v.contains("never ended")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("nest")),
            "{violations:?}"
        );
    }

    #[test]
    fn host_split_estimates_scale_sampled_time() {
        let clock = FakeClock::shared(0);
        let mut split = HostSplit::new(Arc::clone(&clock) as SharedClock);
        for _ in 0..100 {
            split.enter(HostBucket::Rcache);
            clock.advance(10);
            split.exit(HostBucket::Rcache);
        }
        assert_eq!(split.count(HostBucket::Rcache), 100);
        // 8 priming samples + occurrence 64.
        assert_eq!(split.sampled(HostBucket::Rcache), 9);
        // Every occurrence took exactly 10 ns, so the estimate is
        // exact: 9 samples × 10 ns × 100/9.
        assert_eq!(split.estimated_nanos(HostBucket::Rcache), 1_000);
        assert_eq!(split.estimated_nanos(HostBucket::Translate), 0);
        assert_eq!(split.total_estimated_nanos(), 1_000);
    }

    #[test]
    fn host_split_attr_round_trips_through_dump() {
        let (clock, sheet) = fake_sheet(4);
        let root = sheet.begin_root("request", "t", 1);
        let mut split = HostSplit::new(Arc::clone(sheet.clock()));
        for _ in 0..3 {
            split.enter(HostBucket::FetchDecode);
            clock.advance(7);
            split.exit(HostBucket::FetchDecode);
        }
        sheet.attr(root, &split);
        sheet.end(root);
        let file = SpanFile::parse(&sheet.render()).expect("parses");
        assert_eq!(file.attrs.len(), 1);
        let attr = file.attr_for(file.spans[0].id).expect("attr present");
        assert_eq!(attr.buckets.len(), HOST_BUCKET_COUNT);
        assert_eq!(attr.buckets[0].name, "fetch_decode");
        assert_eq!(attr.buckets[0].count, 3);
        assert_eq!(attr.buckets[0].nanos, 21);
    }

    #[test]
    fn parse_rejects_corruption() {
        let (_clock, sheet) = fake_sheet(2);
        let id = sheet.begin("only", SpanId::NONE);
        sheet.end(id);
        let text = sheet.render();

        let wrong_magic = text.replacen(SPAN_MAGIC, "NOTSPAN", 1);
        assert!(matches!(
            SpanFile::parse(&wrong_magic),
            Err(SpanError::Frame(TextFrameError::BadMagic))
        ));

        let newer = text.replacen("\"version\":1", "\"version\":99", 1);
        assert!(matches!(
            SpanFile::parse(&newer),
            Err(SpanError::Frame(TextFrameError::UnsupportedVersion(99)))
        ));

        let torn = format!("{text}{{\"tail\":1}}\n");
        assert!(matches!(
            SpanFile::parse(&torn),
            Err(SpanError::Frame(TextFrameError::ChecksumMismatch))
        ));
    }

    #[test]
    fn long_tenant_labels_truncate_at_char_boundary() {
        let (_clock, sheet) = fake_sheet(2);
        let long = "é".repeat(64); // 2 bytes per char
        let id = sheet.begin_root("request", &long, 0);
        sheet.end(id);
        let file = SpanFile::parse(&sheet.render()).expect("parses");
        assert_eq!(file.spans[0].tenant, "é".repeat(20));
    }

    #[test]
    fn percentiles_follow_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_nanos(&sorted, 50), 50);
        assert_eq!(percentile_nanos(&sorted, 99), 99);
        assert_eq!(percentile_nanos(&sorted, 100), 100);
        assert_eq!(percentile_nanos(&[], 99), 0);
    }
}
