//! The structured event vocabulary every instrumented component speaks.

/// Version of the event schema emitted by [`JsonlSink`](crate::JsonlSink)
/// and understood by [`replay`](crate::replay).
///
/// Compatibility policy: consumers must reject a trace whose header
/// carries a *greater* major version than they understand; fields may be
/// *added* to events within a version, so consumers must ignore unknown
/// fields.
///
/// History:
/// - **1** — initial vocabulary (header, retire_batch, translator,
///   rcache, array_invoke, footer).
/// - **2** — adds sink-emitted `telemetry` records (periodic
///   host-progress samples). Telemetry records are not probe events and
///   do not count toward the footer's `events` total; readers must
///   reject them in a trace whose header declares version 1.
/// - **3** — region identity: `rcache_hit`/`rcache_insert`/`rcache_flush`
///   carry the configuration length (`len`), and two new record types
///   appear — `rcache_evict` (per-eviction, with the evicted region's
///   reuse count) and `mispredict` (per-misspeculated invocation, with
///   the offending branch PC and penalty). Readers must reject the new
///   record types in a trace whose header declares an older version.
/// - **4** — fabric utilization: a new cycle-neutral `fabric` record
///   precedes every `array_invoke` with the invocation's per-unit-class
///   occupancy (busy/capacity thirds, issued/squashed ops, residual
///   cycles, write-back port pressure). `fabric.exec_thirds` rounded up
///   to cycles plus `fabric.residual` equals the paired invocation's
///   `exec_cycles` exactly (the conservation law `dim heat` enforces).
///   Readers must reject `fabric` records in a trace whose header
///   declares an older version.
/// - **5** — streaming certificates: a new cycle-neutral `stream_tag`
///   record marks a committed rcache entry whose region matched an
///   installed streaming-eligibility certificate (`dim prove`), with
///   the region id and the certified burst K. Readers must reject
///   `stream_tag` records in a trace whose header declares an older
///   version.
pub const SCHEMA_VERSION: u32 = 5;

/// Number of distinct [`ProbeEvent`] variants; sizes the per-kind
/// accounting arrays (e.g. the flight recorder's drop counters).
pub const EVENT_KINDS: usize = 12;

/// Stable wire names indexed by [`ProbeEvent::type_index`].
pub const EVENT_KIND_NAMES: [&str; EVENT_KINDS] = [
    "retire",
    "trans_begin",
    "trans_commit",
    "rcache_hit",
    "rcache_miss",
    "rcache_insert",
    "rcache_flush",
    "rcache_evict",
    "mispredict",
    "array_invoke",
    "fabric",
    "stream_tag",
];

/// Coarse classification of a retired pipeline instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetireKind {
    /// ALU / shift / compare / move.
    Alu,
    /// Data-memory load.
    Load,
    /// Data-memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (j/jal/jr/jalr).
    Jump,
    /// Multiply or divide.
    MulDiv,
    /// Syscall or break.
    System,
}

impl RetireKind {
    /// Stable wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            RetireKind::Alu => "alu",
            RetireKind::Load => "load",
            RetireKind::Store => "store",
            RetireKind::Branch => "branch",
            RetireKind::Jump => "jump",
            RetireKind::MulDiv => "muldiv",
            RetireKind::System => "system",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_name(name: &str) -> Option<RetireKind> {
        Some(match name {
            "alu" => RetireKind::Alu,
            "load" => RetireKind::Load,
            "store" => RetireKind::Store,
            "branch" => RetireKind::Branch,
            "jump" => RetireKind::Jump,
            "muldiv" => RetireKind::MulDiv,
            "system" => RetireKind::System,
            _ => return None,
        })
    }
}

/// One array invocation, with its full cycle and speculation accounting.
///
/// The three cycle spans mirror the paper's overhead decomposition:
/// reconfiguration stall (§4.3), row execution (including data-cache
/// stalls and any misspeculation penalty), and the non-overlapped
/// write-back tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayInvoke {
    /// Entry PC of the executed configuration.
    pub entry_pc: u32,
    /// PC execution continued at afterwards.
    pub exit_pc: u32,
    /// Static instructions the configuration covers.
    pub covered: u32,
    /// Instructions actually executed (squashed segments excluded).
    pub executed: u32,
    /// Loads issued by array LD/ST units.
    pub loads: u32,
    /// Stores issued by array LD/ST units.
    pub stores: u32,
    /// Rows the configuration occupies.
    pub rows: u32,
    /// Deepest speculation segment actually executed.
    pub spec_depth: u8,
    /// Whether a speculated branch resolved against its prediction.
    pub misspeculated: bool,
    /// Whether the configuration was flushed after this invocation.
    pub flushed: bool,
    /// Reconfiguration stall cycles visible to the processor.
    pub stall_cycles: u32,
    /// Execution cycles (rows + d-cache stalls + misspeculation penalty).
    pub exec_cycles: u32,
    /// Write-back cycles not overlapped with execution.
    pub tail_cycles: u32,
}

impl ArrayInvoke {
    /// All cycles charged for this invocation.
    pub fn total_cycles(&self) -> u64 {
        self.stall_cycles as u64 + self.exec_cycles as u64 + self.tail_cycles as u64
    }
}

/// Per-unit-class fabric occupancy of one array invocation (schema v4).
///
/// Cycle-neutral: the cycles are already charged by the paired
/// [`ArrayInvoke`] this record precedes. Thirds are the pre-rounding
/// row-delay unit of the timing model (an ALU row is 1 third of a
/// cycle); the conservation law ties them back to charged cycles:
/// `ceil(exec_thirds / 3) + residual_cycles == invoke.exec_cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricUtil {
    /// Entry PC of the executed configuration (pairs with the following
    /// `array_invoke`).
    pub entry_pc: u32,
    /// Rows traversed (`last executed row + 1`).
    pub rows: u32,
    /// Σ row-window thirds over the traversed rows.
    pub exec_thirds: u32,
    /// Σ physical-unit × window thirds over the traversed rows, all
    /// classes; 0 on infinite shapes (utilization undefined).
    pub capacity_thirds: u32,
    /// Busy unit-thirds on ALU/shifter/comparator units.
    pub alu_busy_thirds: u32,
    /// Busy unit-thirds on multiplier units.
    pub mult_busy_thirds: u32,
    /// Busy unit-thirds on load/store units.
    pub ldst_busy_thirds: u32,
    /// Operations confirmed (speculation depth ≤ executed depth).
    pub issued_ops: u32,
    /// Operations configured but squashed by misspeculation.
    pub squashed_ops: u32,
    /// Execution cycles outside the row model: memory stalls plus
    /// misspeculation penalty.
    pub residual_cycles: u32,
    /// Write-backs performed.
    pub writeback_writes: u32,
    /// Write-back port-slots available (`rf_write_ports × (exec + tail)`
    /// cycles); `writes ≤ slots` always.
    pub writeback_slots: u32,
}

impl FabricUtil {
    /// Total busy unit-thirds across classes.
    pub fn busy_thirds(&self) -> u64 {
        self.alu_busy_thirds as u64 + self.mult_busy_thirds as u64 + self.ldst_busy_thirds as u64
    }

    /// Row-model execution cycles (`exec_thirds` rounded up), i.e. the
    /// paired invocation's `exec_cycles` minus `residual_cycles`.
    pub fn exec_cycles(&self) -> u64 {
        (self.exec_thirds as u64).div_ceil(3)
    }
}

/// A structured event emitted by an instrumented component.
///
/// Events are small `Copy` payloads so emitting one into a recording
/// probe is cheap, and constructing one is skipped entirely (guarded by
/// [`Probe::ENABLED`](crate::Probe::ENABLED)) when probing is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// One instruction retired on the processor pipeline, with its cycle
    /// breakdown: `base_cycles` covers issue plus structural penalties
    /// (taken branch, load-use, mult/div), `i_stall`/`d_stall` are
    /// instruction- and data-cache miss cycles.
    Retire {
        /// Address of the retired instruction.
        pc: u32,
        /// Coarse instruction class.
        kind: RetireKind,
        /// Pipeline cycles including structural penalties.
        base_cycles: u32,
        /// Instruction-cache stall cycles.
        i_stall: u32,
        /// Data-cache stall cycles.
        d_stall: u32,
        /// Whether this instruction ends its basic block (control
        /// transfer, discontinuous next PC, or system effect).
        ends_block: bool,
    },
    /// The translator opened a detection region at `pc`.
    TransBegin {
        /// First PC of the region.
        pc: u32,
    },
    /// The translator closed a region and produced a configuration
    /// worth caching.
    TransCommit {
        /// Entry PC of the finished configuration.
        entry_pc: u32,
        /// Instructions the configuration covers.
        instructions: u32,
        /// Array rows it occupies.
        rows: u32,
        /// Basic blocks merged (1 + speculated branches).
        spec_blocks: u8,
        /// Whether this was an interrupted prefix
        /// ([`Translator::take_partial`](https://docs.rs)-style) rather
        /// than a naturally closed region.
        partial: bool,
    },
    /// Reconfiguration-cache lookup hit.
    RcacheHit {
        /// Looked-up PC.
        pc: u32,
        /// Instructions covered by the cached configuration — together
        /// with `pc` this is the stable region id (schema v3; 0 in
        /// older traces).
        len: u32,
    },
    /// Reconfiguration-cache lookup miss.
    RcacheMiss {
        /// Looked-up PC.
        pc: u32,
    },
    /// A configuration was inserted into the reconfiguration cache,
    /// possibly evicting another entry.
    RcacheInsert {
        /// Entry PC of the inserted configuration.
        pc: u32,
        /// Instructions the inserted configuration covers (region id;
        /// schema v3, 0 in older traces).
        len: u32,
        /// Entry PC of the evicted configuration, if the insert
        /// displaced one.
        evicted: Option<u32>,
    },
    /// A configuration was flushed after repeated misspeculation.
    RcacheFlush {
        /// Entry PC of the flushed configuration.
        pc: u32,
        /// Instructions the flushed configuration covered (region id;
        /// schema v3, 0 in older traces).
        len: u32,
    },
    /// A configuration was displaced from the reconfiguration cache by
    /// capacity pressure (schema v3). Distinguishes entries that repaid
    /// their translation (`uses > 0`) from dead insertions.
    RcacheEvict {
        /// Entry PC of the evicted configuration.
        pc: u32,
        /// Instructions the evicted configuration covered.
        len: u32,
        /// Lookup hits the entry served between insertion and eviction.
        uses: u64,
    },
    /// A speculated branch inside an array invocation resolved against
    /// its prediction (schema v3). The penalty cycles are *already*
    /// inside the corresponding `array_invoke`'s `exec_cycles`; this
    /// record only attributes them to a region and branch.
    SpecMispredict {
        /// Entry PC of the misspeculating configuration.
        region_pc: u32,
        /// Instructions that configuration covers.
        region_len: u32,
        /// PC of the branch that resolved against its prediction.
        branch_pc: u32,
        /// Misspeculation penalty cycles charged inside the invocation.
        penalty_cycles: u32,
    },
    /// A cached configuration executed on the array.
    ArrayInvoke(ArrayInvoke),
    /// Fabric occupancy of an array invocation (schema v4); emitted
    /// immediately before its paired `ArrayInvoke`. Cycle-neutral.
    Fabric(FabricUtil),
    /// A committed rcache entry matched an installed streaming
    /// certificate and was tagged `stream_ok(K)` (schema v5).
    /// Cycle-neutral: the tag is a contract surface for the streaming
    /// executor, not an executed event.
    StreamTag {
        /// Entry PC of the tagged configuration.
        pc: u32,
        /// Instructions the configuration covers (region id).
        len: u32,
        /// Certified maximum safe burst K.
        burst: u32,
    },
}

impl ProbeEvent {
    /// Stable wire name of the event type.
    pub fn type_name(&self) -> &'static str {
        match self {
            ProbeEvent::Retire { .. } => "retire",
            ProbeEvent::TransBegin { .. } => "trans_begin",
            ProbeEvent::TransCommit { .. } => "trans_commit",
            ProbeEvent::RcacheHit { .. } => "rcache_hit",
            ProbeEvent::RcacheMiss { .. } => "rcache_miss",
            ProbeEvent::RcacheInsert { .. } => "rcache_insert",
            ProbeEvent::RcacheFlush { .. } => "rcache_flush",
            ProbeEvent::RcacheEvict { .. } => "rcache_evict",
            ProbeEvent::SpecMispredict { .. } => "mispredict",
            ProbeEvent::ArrayInvoke(_) => "array_invoke",
            ProbeEvent::Fabric(_) => "fabric",
            ProbeEvent::StreamTag { .. } => "stream_tag",
        }
    }

    /// Dense index of the event's variant, in [`EVENT_KIND_NAMES`]
    /// order — always below [`EVENT_KINDS`].
    pub fn type_index(&self) -> usize {
        match self {
            ProbeEvent::Retire { .. } => 0,
            ProbeEvent::TransBegin { .. } => 1,
            ProbeEvent::TransCommit { .. } => 2,
            ProbeEvent::RcacheHit { .. } => 3,
            ProbeEvent::RcacheMiss { .. } => 4,
            ProbeEvent::RcacheInsert { .. } => 5,
            ProbeEvent::RcacheFlush { .. } => 6,
            ProbeEvent::RcacheEvict { .. } => 7,
            ProbeEvent::SpecMispredict { .. } => 8,
            ProbeEvent::ArrayInvoke(_) => 9,
            ProbeEvent::Fabric(_) => 10,
            ProbeEvent::StreamTag { .. } => 11,
        }
    }

    /// Simulated cycles this event accounts for (0 for bookkeeping
    /// events like cache lookups).
    pub fn cycles(&self) -> u64 {
        match self {
            ProbeEvent::Retire {
                base_cycles,
                i_stall,
                d_stall,
                ..
            } => *base_cycles as u64 + *i_stall as u64 + *d_stall as u64,
            ProbeEvent::ArrayInvoke(inv) => inv.total_cycles(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_index_matches_name_table() {
        let samples = [
            ProbeEvent::Retire {
                pc: 0,
                kind: RetireKind::Alu,
                base_cycles: 1,
                i_stall: 0,
                d_stall: 0,
                ends_block: false,
            },
            ProbeEvent::TransBegin { pc: 0 },
            ProbeEvent::TransCommit {
                entry_pc: 0,
                instructions: 1,
                rows: 1,
                spec_blocks: 1,
                partial: false,
            },
            ProbeEvent::RcacheHit { pc: 0, len: 1 },
            ProbeEvent::RcacheMiss { pc: 0 },
            ProbeEvent::RcacheInsert {
                pc: 0,
                len: 1,
                evicted: None,
            },
            ProbeEvent::RcacheFlush { pc: 0, len: 1 },
            ProbeEvent::RcacheEvict {
                pc: 0,
                len: 1,
                uses: 0,
            },
            ProbeEvent::SpecMispredict {
                region_pc: 0,
                region_len: 1,
                branch_pc: 0,
                penalty_cycles: 1,
            },
            ProbeEvent::ArrayInvoke(ArrayInvoke {
                entry_pc: 0,
                exit_pc: 0,
                covered: 1,
                executed: 1,
                loads: 0,
                stores: 0,
                rows: 1,
                spec_depth: 0,
                misspeculated: false,
                flushed: false,
                stall_cycles: 0,
                exec_cycles: 1,
                tail_cycles: 0,
            }),
            ProbeEvent::Fabric(FabricUtil {
                entry_pc: 0,
                rows: 1,
                exec_thirds: 1,
                capacity_thirds: 11,
                alu_busy_thirds: 1,
                mult_busy_thirds: 0,
                ldst_busy_thirds: 0,
                issued_ops: 1,
                squashed_ops: 0,
                residual_cycles: 0,
                writeback_writes: 0,
                writeback_slots: 4,
            }),
            ProbeEvent::StreamTag {
                pc: 0,
                len: 1,
                burst: 1,
            },
        ];
        assert_eq!(samples.len(), EVENT_KINDS);
        for (i, event) in samples.iter().enumerate() {
            assert_eq!(event.type_index(), i);
            assert_eq!(EVENT_KIND_NAMES[i], event.type_name());
        }
    }
}
