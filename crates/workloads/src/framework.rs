//! Benchmark framework: built programs, expected results, validation.

use dim_mips::asm::{assemble, AsmError, Program};
use dim_mips_sim::{HaltReason, Machine, SimError};
use std::fmt;

/// Paper-style workload classification (Table 2 orders dataflow at the
/// top, control flow at the bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Large basic blocks, few branches (Rijndael, SHA, ...).
    DataFlow,
    /// In between, often without distinct kernels (JPEG, Susan, ...).
    Mixed,
    /// Small basic blocks, branch dominated (quicksort, ADPCM, ...).
    ControlFlow,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::DataFlow => write!(f, "dataflow"),
            Category::Mixed => write!(f, "mixed"),
            Category::ControlFlow => write!(f, "control"),
        }
    }
}

/// Input-size scale. `Tiny` keeps unit tests and Criterion benches fast;
/// `Full` is what the table/figure harness runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// A few thousand dynamic instructions.
    Tiny,
    /// Tens of thousands of dynamic instructions.
    Small,
    /// Hundreds of thousands of dynamic instructions.
    Full,
}

impl Scale {
    /// Picks an iteration/size knob for the scale.
    pub fn pick(self, tiny: usize, small: usize, full: usize) -> usize {
        match self {
            Scale::Tiny => tiny,
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// A memory region that must match an expected byte image after the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpectedRegion {
    /// Data-segment label of the region.
    pub label: String,
    /// Expected contents.
    pub bytes: Vec<u8>,
}

/// A fully built benchmark instance: assembled program plus the oracle.
#[derive(Debug, Clone)]
pub struct BuiltBenchmark {
    /// Benchmark name (paper Table 2 row).
    pub name: &'static str,
    /// Workload class.
    pub category: Category,
    /// The assembled MIPS program with inputs baked into `.data`.
    pub program: Program,
    /// Regions the Rust reference model predicts.
    pub expected: Vec<ExpectedRegion>,
    /// Generous instruction budget for the run.
    pub max_steps: u64,
}

/// A benchmark definition.
#[derive(Clone)]
pub struct BenchmarkSpec {
    /// Name as in the paper's Table 2.
    pub name: &'static str,
    /// Workload class.
    pub category: Category,
    /// Builder producing the program + oracle at a given scale.
    pub build: fn(Scale) -> BuiltBenchmark,
}

impl fmt::Debug for BenchmarkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchmarkSpec")
            .field("name", &self.name)
            .field("category", &self.category)
            .finish()
    }
}

/// Errors from building or validating a benchmark run.
#[derive(Debug)]
pub enum WorkloadError {
    /// The program did not assemble (a bug in the kernel source).
    Asm(AsmError),
    /// Simulation failed.
    Sim(SimError),
    /// The program hit its step budget before halting.
    Timeout {
        /// The budget that was exhausted.
        max_steps: u64,
    },
    /// An output region does not match the reference model.
    Mismatch {
        /// Region label.
        label: String,
        /// First differing byte offset.
        offset: usize,
        /// Byte the simulation produced.
        got: u8,
        /// Byte the reference model expected.
        want: u8,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Asm(e) => write!(f, "assembly failed: {e}"),
            WorkloadError::Sim(e) => write!(f, "simulation failed: {e}"),
            WorkloadError::Timeout { max_steps } => {
                write!(f, "did not halt within {max_steps} instructions")
            }
            WorkloadError::Mismatch {
                label,
                offset,
                got,
                want,
            } => write!(
                f,
                "region `{label}` differs at byte {offset}: got {got:#04x}, want {want:#04x}"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<AsmError> for WorkloadError {
    fn from(e: AsmError) -> Self {
        WorkloadError::Asm(e)
    }
}

impl From<SimError> for WorkloadError {
    fn from(e: SimError) -> Self {
        WorkloadError::Sim(e)
    }
}

/// Assembles a kernel, panicking with a readable listing on error — kernel
/// sources are compiled into the crate, so failure is a programming bug.
pub(crate) fn must_assemble(name: &str, src: &str) -> Program {
    match assemble(src) {
        Ok(p) => p,
        Err(e) => {
            let line = src.lines().nth(e.line().saturating_sub(1)).unwrap_or("");
            panic!("kernel `{name}` failed to assemble: {e}\n  > {line}");
        }
    }
}

/// Validates a finished machine against the expected regions.
///
/// # Errors
///
/// [`WorkloadError::Mismatch`] for the first differing byte.
pub fn validate(machine: &Machine, built: &BuiltBenchmark) -> Result<(), WorkloadError> {
    for region in &built.expected {
        let addr = built
            .program
            .symbol(&region.label)
            .unwrap_or_else(|| panic!("benchmark `{}` lacks label `{}`", built.name, region.label));
        let got = machine.mem.read_bytes(addr, region.bytes.len());
        if let Some(offset) = got.iter().zip(&region.bytes).position(|(g, w)| g != w) {
            return Err(WorkloadError::Mismatch {
                label: region.label.clone(),
                offset,
                got: got[offset],
                want: region.bytes[offset],
            });
        }
    }
    Ok(())
}

/// Runs the benchmark on a plain machine and validates the result.
///
/// # Errors
///
/// Simulation errors, a step-budget timeout, or an output mismatch.
pub fn run_baseline(built: &BuiltBenchmark) -> Result<Machine, WorkloadError> {
    let mut machine = Machine::load(&built.program);
    match machine.run(built.max_steps)? {
        HaltReason::StepLimit => {
            return Err(WorkloadError::Timeout {
                max_steps: built.max_steps,
            })
        }
        HaltReason::Exit(_) => {}
    }
    validate(&machine, built)?;
    Ok(machine)
}

/// Formats `words` as `.word` directives, 8 per line.
pub(crate) fn words_directive(words: &[u32]) -> String {
    let mut out = String::with_capacity(words.len() * 12);
    for chunk in words.chunks(8) {
        out.push_str("    .word ");
        let row: Vec<String> = chunk.iter().map(|w| format!("{w:#x}")).collect();
        out.push_str(&row.join(", "));
        out.push('\n');
    }
    out
}

/// Formats `bytes` as `.byte` directives, 16 per line.
pub(crate) fn bytes_directive(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 6);
    for chunk in bytes.chunks(16) {
        out.push_str("    .byte ");
        let row: Vec<String> = chunk.iter().map(std::string::ToString::to_string).collect();
        out.push_str(&row.join(", "));
        out.push('\n');
    }
    out
}

/// Crate-internal alias so kernel modules can format byte tables without
/// re-importing the private helper under a clashing name.
pub(crate) fn bytes_directive_pub(bytes: &[u8]) -> String {
    bytes_directive(bytes)
}

/// A tiny deterministic xorshift32 generator so inputs never depend on
/// external crates' stream stability.
#[derive(Debug, Clone)]
pub(crate) struct XorShift32(pub u32);

impl XorShift32 {
    pub(crate) fn next_u32(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }

    pub(crate) fn below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directives_format() {
        assert_eq!(words_directive(&[1, 2]), "    .word 0x1, 0x2\n");
        assert_eq!(bytes_directive(&[1, 255]), "    .byte 1, 255\n");
    }

    #[test]
    fn xorshift_deterministic() {
        let mut a = XorShift32(1);
        let mut b = XorShift32(1);
        for _ in 0..10 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        assert!(a.below(10) < 10);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Tiny.pick(1, 2, 3), 1);
        assert_eq!(Scale::Small.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn validate_reports_first_mismatch() {
        let src = ".data\nout: .word 0x11223344\n.text\nmain: break 0";
        let program = must_assemble("t", src);
        let built = BuiltBenchmark {
            name: "t",
            category: Category::Mixed,
            program,
            expected: vec![ExpectedRegion {
                label: "out".into(),
                bytes: vec![0x44, 0x33, 0x99, 0x11],
            }],
            max_steps: 100,
        };
        let err = run_baseline(&built).unwrap_err();
        match err {
            WorkloadError::Mismatch {
                offset, got, want, ..
            } => {
                assert_eq!((offset, got, want), (2, 0x22, 0x99));
            }
            other => panic!("unexpected {other}"),
        }
    }
}
