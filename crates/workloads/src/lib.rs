//! # dim-workloads
//!
//! MiBench-like benchmark kernels for the DIM reproduction. Each of the
//! 18 workloads from the paper's Table 2 is hand-written in MIPS
//! assembly (assembled by `dim-mips`), paired with a Rust reference
//! implementation and deterministic input generator; [`run_baseline`]
//! executes a kernel on the plain simulator and checks its output region
//! against the reference byte-for-byte.
//!
//! ```
//! use dim_workloads::{suite, Scale, run_baseline};
//! let crc = suite().into_iter().find(|s| s.name == "crc32").unwrap();
//! let built = (crc.build)(Scale::Tiny);
//! let machine = run_baseline(&built)?;
//! assert!(machine.stats.instructions > 0);
//! # Ok::<(), dim_workloads::WorkloadError>(())
//! ```

#![warn(missing_docs)]

mod framework;
/// The individual benchmark kernels.
pub mod kernels;

pub use framework::{
    run_baseline, validate, BenchmarkSpec, BuiltBenchmark, Category, ExpectedRegion, Scale,
    WorkloadError,
};

/// The full benchmark suite in the paper's Table 2 order (most dataflow
/// oriented first, most control-flow oriented last).
pub fn suite() -> Vec<BenchmarkSpec> {
    vec![
        kernels::rijndael::enc_spec(),
        kernels::rijndael::dec_spec(),
        kernels::gsm::enc_spec(),
        kernels::jpeg::enc_spec(),
        kernels::sha::spec(),
        kernels::susan::smoothing_spec(),
        kernels::crc32::spec(),
        kernels::jpeg::dec_spec(),
        kernels::patricia::spec(),
        kernels::susan::corners_spec(),
        kernels::susan::edges_spec(),
        kernels::dijkstra::spec(),
        kernels::gsm::dec_spec(),
        kernels::bitcount::spec(),
        kernels::stringsearch::spec(),
        kernels::quicksort::spec(),
        kernels::adpcm::enc_spec(),
        kernels::adpcm::dec_spec(),
    ]
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
    suite().into_iter().find(|s| s.name == name)
}

/// Per-workload static-analysis suppressions for `dim lint`.
///
/// Each entry is a diagnostic code plus the reason the finding is
/// accepted rather than fixed. The lint suite test asserts every entry
/// still fires, so stale suppressions cannot accumulate. Keep this list
/// empty unless a finding is deliberate: fixing the assembly is always
/// preferred.
pub fn lint_allowlist(name: &str) -> &'static [(&'static str, &'static str)] {
    match name {
        // `bnez $t6, find` falls straight into `bltz $s5, done`: two
        // back-to-back conditional branches. Correct on the DIM pipeline
        // (no delay slots); flagged only because delay-slot MIPS leaves a
        // branch in a branch's delay slot undefined.
        "dijkstra" => &[("W102", "back-to-back branches close the find-min loop")],
        // `bnez $t0, dy_loop` falls straight into `beqz $s6,
        // store_center` — same back-to-back-branch shape as dijkstra.
        "susan_smoothing" => &[("W102", "back-to-back branches close the mask loop")],
        _ => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_18_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 18);
        let mut names: Vec<_> = s.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("crc32").is_some());
        assert!(by_name("nope").is_none());
    }
}
