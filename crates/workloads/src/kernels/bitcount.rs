//! Bitcount (MiBench automotive): counts set bits with three different
//! methods — Kernighan's loop (data-dependent branch), a nibble lookup
//! table, and a plain shift-and-add sweep. Control oriented with tiny
//! basic blocks, like the original.

use crate::framework::{
    bytes_directive, must_assemble, words_directive, BenchmarkSpec, BuiltBenchmark, Category,
    ExpectedRegion, Scale, XorShift32,
};

/// Reference: sum of popcounts (all three methods agree by construction).
pub fn popcount_sum(values: &[u32]) -> u32 {
    values.iter().map(|v| v.count_ones()).sum()
}

fn nibble_table() -> [u8; 16] {
    let mut t = [0u8; 16];
    for (i, e) in t.iter_mut().enumerate() {
        *e = (i as u32).count_ones() as u8;
    }
    t
}

fn build(scale: Scale) -> BuiltBenchmark {
    let n = scale.pick(32, 256, 1024);
    let mut rng = XorShift32(0xb17c_0047);
    let values: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
    let sum = popcount_sum(&values);
    let expected: Vec<u8> = [sum, sum, sum]
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .collect();

    let src = format!(
        "
        .data
        vals:
{vals}
        nib:
{nib}
        .align 2
        out: .word 0, 0, 0
        .text
        main:
            la   $s0, vals
            li   $s1, {n}
            li   $s4, 0            # kernighan sum
            li   $s5, 0            # nibble-table sum
            li   $s6, 0            # shift-add sum
            la   $s7, nib
        outer:
            lw   $t0, 0($s0)

            # --- method 1: Kernighan ---
            move $t1, $t0
            li   $t2, 0
        k_loop:
            beqz $t1, k_done
            addiu $t3, $t1, -1
            and  $t1, $t1, $t3
            addiu $t2, $t2, 1
            b    k_loop
        k_done:
            addu $s4, $s4, $t2

            # --- method 2: nibble table ---
            li   $t2, 0
            move $t1, $t0
            li   $t5, 8
        n_loop:
            andi $t3, $t1, 0xf
            addu $t4, $s7, $t3
            lbu  $t3, 0($t4)
            addu $t2, $t2, $t3
            srl  $t1, $t1, 4
            addiu $t5, $t5, -1
            bnez $t5, n_loop
            addu $s5, $s5, $t2

            # --- method 3: shift and add ---
            li   $t2, 0
            move $t1, $t0
            li   $t5, 32
        s_loop:
            andi $t3, $t1, 1
            addu $t2, $t2, $t3
            srl  $t1, $t1, 1
            addiu $t5, $t5, -1
            bnez $t5, s_loop
            addu $s6, $s6, $t2

            addiu $s0, $s0, 4
            addiu $s1, $s1, -1
            bnez $s1, outer

            la   $t0, out
            sw   $s4, 0($t0)
            sw   $s5, 4($t0)
            sw   $s6, 8($t0)
            break 0
        ",
        vals = words_directive(&values),
        nib = bytes_directive(&nibble_table()),
        n = n,
    );

    BuiltBenchmark {
        name: "bitcount",
        category: Category::ControlFlow,
        program: must_assemble("bitcount", &src),
        expected: vec![ExpectedRegion {
            label: "out".into(),
            bytes: expected,
        }],
        max_steps: 400 * n as u64 + 10_000,
    }
}

/// The bitcount benchmark definition.
pub fn spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "bitcount",
        category: Category::ControlFlow,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_baseline;

    #[test]
    fn reference_sanity() {
        assert_eq!(popcount_sum(&[0xff, 0x0f]), 12);
    }

    #[test]
    fn kernel_matches_reference() {
        run_baseline(&build(Scale::Tiny)).expect("bitcount validates");
    }
}
