//! Quicksort (MiBench automotive `qsort`): iterative quicksort with an
//! explicit work stack, Lomuto partitioning, signed comparisons.
//! Heavily control-flow oriented.

use crate::framework::{
    must_assemble, words_directive, BenchmarkSpec, BuiltBenchmark, Category, ExpectedRegion, Scale,
    XorShift32,
};

/// Reference: sorted copy (signed order).
pub fn sorted_reference(values: &[u32]) -> Vec<u32> {
    let mut v: Vec<i32> = values.iter().map(|&x| x as i32).collect();
    v.sort_unstable();
    v.into_iter().map(|x| x as u32).collect()
}

fn build(scale: Scale) -> BuiltBenchmark {
    let n = scale.pick(64, 256, 1024);
    let mut rng = XorShift32(0x5017_ab1e);
    let values: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
    let expected: Vec<u8> = sorted_reference(&values)
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .collect();

    let src = format!(
        "
        .data
        arr:
{arr}
        stack: .space {stack_bytes}
        .text
        main:
            la   $s0, arr
            la   $s1, stack
            li   $s2, 0              # stack pointer (bytes)
            li   $t0, 0              # lo
            li   $t1, {hi0}          # hi = n-1
            addu $t2, $s1, $s2
            sw   $t0, 0($t2)
            sw   $t1, 4($t2)
            addiu $s2, $s2, 8
        qs_loop:
            beqz $s2, done
            addiu $s2, $s2, -8
            addu $t2, $s1, $s2
            lw   $s3, 0($t2)         # lo
            lw   $s4, 4($t2)         # hi
            slt  $t3, $s3, $s4
            beqz $t3, qs_loop

            # Lomuto partition with pivot = a[hi]
            sll  $t4, $s4, 2
            addu $t4, $s0, $t4
            lw   $s5, 0($t4)         # pivot
            addiu $s6, $s3, -1       # i = lo - 1
            move $s7, $s3            # j = lo
        part_loop:
            slt  $t3, $s7, $s4
            beqz $t3, part_done
            sll  $t5, $s7, 2
            addu $t5, $s0, $t5
            lw   $t6, 0($t5)         # a[j]
            slt  $t3, $s5, $t6       # pivot < a[j] ?
            bnez $t3, part_next
            addiu $s6, $s6, 1
            sll  $t7, $s6, 2
            addu $t7, $s0, $t7
            lw   $t8, 0($t7)
            sw   $t6, 0($t7)         # a[i] = a[j]
            sw   $t8, 0($t5)         # a[j] = old a[i]
        part_next:
            addiu $s7, $s7, 1
            b    part_loop
        part_done:
            addiu $s6, $s6, 1
            sll  $t7, $s6, 2
            addu $t7, $s0, $t7
            lw   $t8, 0($t7)
            sll  $t4, $s4, 2
            addu $t4, $s0, $t4
            lw   $t9, 0($t4)
            sw   $t9, 0($t7)         # swap a[i] <-> a[hi]
            sw   $t8, 0($t4)

            addu $t2, $s1, $s2       # push (lo, i-1)
            addiu $t3, $s6, -1
            sw   $s3, 0($t2)
            sw   $t3, 4($t2)
            addiu $s2, $s2, 8
            addu $t2, $s1, $s2       # push (i+1, hi)
            addiu $t3, $s6, 1
            sw   $t3, 0($t2)
            sw   $s4, 4($t2)
            addiu $s2, $s2, 8
            b    qs_loop
        done:
            break 0
        ",
        arr = words_directive(&values),
        stack_bytes = 16 * n,
        hi0 = n - 1,
    );

    BuiltBenchmark {
        name: "quicksort",
        category: Category::ControlFlow,
        program: must_assemble("quicksort", &src),
        expected: vec![ExpectedRegion {
            label: "arr".into(),
            bytes: expected,
        }],
        max_steps: 3000 * n as u64 + 100_000,
    }
}

/// The quicksort benchmark definition.
pub fn spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "quicksort",
        category: Category::ControlFlow,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_baseline;

    #[test]
    fn reference_sorts_signed() {
        let v = sorted_reference(&[5, 0xffff_ffff, 3]); // -1 sorts first
        assert_eq!(v, vec![0xffff_ffff, 3, 5]);
    }

    #[test]
    fn kernel_matches_reference() {
        run_baseline(&build(Scale::Tiny)).expect("quicksort validates");
    }
}
