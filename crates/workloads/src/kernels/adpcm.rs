//! RawAudio (MiBench telecomm `adpcm`): IMA/DVI ADPCM encode and decode.
//!
//! The per-sample quantizer is a chain of data-dependent branches with
//! almost no straight-line code, which is why RawAudio decode is the most
//! control-flow-oriented workload in the paper's Figure 3b. One 4-bit
//! code is stored per byte (the original packs two per byte; the packing
//! does not affect the computation being measured).

use crate::framework::{
    bytes_directive, must_assemble, words_directive, BenchmarkSpec, BuiltBenchmark, Category,
    ExpectedRegion, Scale, XorShift32,
};

/// IMA step-size table (89 entries).
const STEP_TABLE: [u32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// IMA index-adjust table (by 4-bit code).
const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// Reference IMA ADPCM encoder: one code byte per sample.
pub fn adpcm_encode_reference(samples: &[i16]) -> Vec<u8> {
    let mut valpred: i32 = 0;
    let mut index: i32 = 0;
    let mut out = Vec::with_capacity(samples.len());
    for &s in samples {
        let step = STEP_TABLE[index as usize] as i32;
        let mut diff = s as i32 - valpred;
        let sign = if diff < 0 { 8 } else { 0 };
        if sign != 0 {
            diff = -diff;
        }
        let mut delta = 0;
        let mut vpdiff = step >> 3;
        let mut st = step;
        if diff >= st {
            delta = 4;
            diff -= st;
            vpdiff += st;
        }
        st >>= 1;
        if diff >= st {
            delta |= 2;
            diff -= st;
            vpdiff += st;
        }
        st >>= 1;
        if diff >= st {
            delta |= 1;
            vpdiff += st;
        }
        if sign != 0 {
            valpred -= vpdiff;
        } else {
            valpred += vpdiff;
        }
        valpred = valpred.clamp(-32768, 32767);
        delta |= sign;
        index += INDEX_TABLE[delta as usize];
        index = index.clamp(0, 88);
        out.push(delta as u8);
    }
    out
}

/// Reference IMA ADPCM decoder.
pub fn adpcm_decode_reference(codes: &[u8]) -> Vec<i16> {
    let mut valpred: i32 = 0;
    let mut index: i32 = 0;
    let mut out = Vec::with_capacity(codes.len());
    for &c in codes {
        let delta = (c & 0xf) as i32;
        let step = STEP_TABLE[index as usize] as i32;
        index += INDEX_TABLE[delta as usize];
        index = index.clamp(0, 88);
        let sign = delta & 8;
        let dmag = delta & 7;
        // vpdiff = (delta + 0.5) * step / 4 computed in integer form.
        let mut vpdiff = step >> 3;
        if dmag & 4 != 0 {
            vpdiff += step;
        }
        if dmag & 2 != 0 {
            vpdiff += step >> 1;
        }
        if dmag & 1 != 0 {
            vpdiff += step >> 2;
        }
        if sign != 0 {
            valpred -= vpdiff;
        } else {
            valpred += vpdiff;
        }
        valpred = valpred.clamp(-32768, 32767);
        out.push(valpred as i16);
    }
    out
}

/// Deterministic test signal: a rough sine with noise, like speech-ish
/// audio.
fn gen_samples(n: usize, rng: &mut XorShift32) -> Vec<i16> {
    // Integer triangle oscillator plus noise — no floats needed.
    let mut phase: i32 = 0;
    let mut dir: i32 = 500;
    (0..n)
        .map(|_| {
            phase += dir;
            if !(-14_000..=14_000).contains(&phase) {
                dir = -dir;
            }
            let noise = (rng.below(2001) as i32) - 1000;
            (phase + noise).clamp(-32768, 32767) as i16
        })
        .collect()
}

/// Shared `.data` tables.
fn tables() -> String {
    let idx_bytes: Vec<u32> = INDEX_TABLE.iter().map(|&v| v as u32).collect();
    format!(
        "step_table:\n{}\nindex_table:\n{}\n",
        words_directive(&STEP_TABLE),
        words_directive(&idx_bytes)
    )
}

fn build_enc(scale: Scale) -> BuiltBenchmark {
    let n = scale.pick(128, 1024, 4096);
    let mut rng = XorShift32(0xadbc_0001);
    let samples = gen_samples(n, &mut rng);
    let expected = adpcm_encode_reference(&samples);
    let sample_words: Vec<u32> = samples.iter().map(|&s| s as i32 as u32).collect();

    // Samples stored as sign-extended words to keep the kernel focused on
    // the quantizer rather than lh alignment.
    let src = format!(
        "
        .data
{tables}
        samples:
{samples}
        codes: .space {n}
        .text
        main:
            la   $s0, samples
            la   $s1, codes
            li   $s2, {n}
            li   $s3, 0              # valpred
            li   $s4, 0              # index
            la   $s5, step_table
            la   $s6, index_table
        sample_loop:
            sll  $t0, $s4, 2
            addu $t0, $s5, $t0
            lw   $s7, 0($t0)         # step
            lw   $t1, 0($s0)         # sample
            subu $t2, $t1, $s3       # diff
            li   $t3, 0              # sign
            bgez $t2, diff_pos
            li   $t3, 8
            subu $t2, $zero, $t2
        diff_pos:
            li   $t4, 0              # delta
            sra  $t5, $s7, 3         # vpdiff = step >> 3
            move $t6, $s7            # st = step
            slt  $t7, $t2, $t6
            bnez $t7, enc_b2
            li   $t4, 4
            subu $t2, $t2, $t6
            addu $t5, $t5, $t6
        enc_b2:
            sra  $t6, $t6, 1
            slt  $t7, $t2, $t6
            bnez $t7, enc_b1
            ori  $t4, $t4, 2
            subu $t2, $t2, $t6
            addu $t5, $t5, $t6
        enc_b1:
            sra  $t6, $t6, 1
            slt  $t7, $t2, $t6
            bnez $t7, enc_apply
            ori  $t4, $t4, 1
            addu $t5, $t5, $t6
        enc_apply:
            beqz $t3, enc_add
            subu $s3, $s3, $t5
            b    enc_clamp
        enc_add:
            addu $s3, $s3, $t5
        enc_clamp:
            li   $t8, 32767
            slt  $t7, $t8, $s3
            beqz $t7, enc_clamp_lo
            move $s3, $t8
        enc_clamp_lo:
            li   $t8, -32768
            slt  $t7, $s3, $t8
            beqz $t7, enc_index
            move $s3, $t8
        enc_index:
            or   $t4, $t4, $t3       # delta |= sign
            sll  $t9, $t4, 2
            addu $t9, $s6, $t9
            lw   $t9, 0($t9)
            addu $s4, $s4, $t9
            bgez $s4, enc_idx_hi
            li   $s4, 0
        enc_idx_hi:
            li   $t8, 88
            slt  $t7, $t8, $s4
            beqz $t7, enc_store
            move $s4, $t8
        enc_store:
            sb   $t4, 0($s1)
            addiu $s0, $s0, 4
            addiu $s1, $s1, 1
            addiu $s2, $s2, -1
            bnez $s2, sample_loop
            break 0
        ",
        tables = tables(),
        samples = words_directive(&sample_words),
        n = n,
    );

    BuiltBenchmark {
        name: "rawaudio_enc",
        category: Category::ControlFlow,
        program: must_assemble("rawaudio_enc", &src),
        expected: vec![ExpectedRegion {
            label: "codes".into(),
            bytes: expected,
        }],
        max_steps: 100 * n as u64 + 10_000,
    }
}

fn build_dec(scale: Scale) -> BuiltBenchmark {
    let n = scale.pick(128, 1024, 4096);
    let mut rng = XorShift32(0xadbc_0002);
    let samples = gen_samples(n, &mut rng);
    let codes = adpcm_encode_reference(&samples);
    let decoded = adpcm_decode_reference(&codes);
    let expected: Vec<u8> = decoded
        .iter()
        .flat_map(|&s| (s as i32 as u32).to_le_bytes())
        .collect();

    let src = format!(
        "
        .data
{tables}
        codes:
{codes}
        .align 2
        pcm: .space {pcm_bytes}
        .text
        main:
            la   $s0, codes
            la   $s1, pcm
            li   $s2, {n}
            li   $s3, 0              # valpred
            li   $s4, 0              # index
            la   $s5, step_table
            la   $s6, index_table
        code_loop:
            lbu  $t0, 0($s0)
            andi $t0, $t0, 0xf       # delta
            sll  $t1, $s4, 2
            addu $t1, $s5, $t1
            lw   $s7, 0($t1)         # step
            sll  $t2, $t0, 2
            addu $t2, $s6, $t2
            lw   $t2, 0($t2)
            addu $s4, $s4, $t2       # index += index_table[delta]
            bgez $s4, dec_idx_hi
            li   $s4, 0
        dec_idx_hi:
            li   $t8, 88
            slt  $t7, $t8, $s4
            beqz $t7, dec_vpdiff
            move $s4, $t8
        dec_vpdiff:
            sra  $t3, $s7, 3         # vpdiff = step >> 3
            andi $t4, $t0, 4
            beqz $t4, dec_b2
            addu $t3, $t3, $s7
        dec_b2:
            andi $t4, $t0, 2
            beqz $t4, dec_b1
            sra  $t5, $s7, 1
            addu $t3, $t3, $t5
        dec_b1:
            andi $t4, $t0, 1
            beqz $t4, dec_sign
            sra  $t5, $s7, 2
            addu $t3, $t3, $t5
        dec_sign:
            andi $t4, $t0, 8
            beqz $t4, dec_add
            subu $s3, $s3, $t3
            b    dec_clamp
        dec_add:
            addu $s3, $s3, $t3
        dec_clamp:
            li   $t8, 32767
            slt  $t7, $t8, $s3
            beqz $t7, dec_clamp_lo
            move $s3, $t8
        dec_clamp_lo:
            li   $t8, -32768
            slt  $t7, $s3, $t8
            beqz $t7, dec_store
            move $s3, $t8
        dec_store:
            sw   $s3, 0($s1)
            addiu $s0, $s0, 1
            addiu $s1, $s1, 4
            addiu $s2, $s2, -1
            bnez $s2, code_loop
            break 0
        ",
        tables = tables(),
        codes = bytes_directive(&codes),
        pcm_bytes = 4 * n,
        n = n,
    );

    BuiltBenchmark {
        name: "rawaudio_dec",
        category: Category::ControlFlow,
        program: must_assemble("rawaudio_dec", &src),
        expected: vec![ExpectedRegion {
            label: "pcm".into(),
            bytes: expected,
        }],
        max_steps: 100 * n as u64 + 10_000,
    }
}

/// The RawAudio encoder benchmark definition.
pub fn enc_spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "rawaudio_enc",
        category: Category::ControlFlow,
        build: build_enc,
    }
}

/// The RawAudio decoder benchmark definition.
pub fn dec_spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "rawaudio_dec",
        category: Category::ControlFlow,
        build: build_dec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_baseline;

    #[test]
    fn encode_decode_roundtrip_tracks_signal() {
        let mut rng = XorShift32(7);
        let samples = gen_samples(256, &mut rng);
        let codes = adpcm_encode_reference(&samples);
        let decoded = adpcm_decode_reference(&codes);
        // ADPCM is lossy but must track the signal within a few steps.
        let mut err_sum: i64 = 0;
        for (s, d) in samples.iter().zip(&decoded) {
            err_sum += ((*s as i64) - (*d as i64)).abs();
        }
        let avg_err = err_sum / samples.len() as i64;
        assert!(avg_err < 2500, "average error {avg_err}");
    }

    #[test]
    fn encoder_kernel_matches_reference() {
        run_baseline(&build_enc(Scale::Tiny)).expect("rawaudio_enc validates");
    }

    #[test]
    fn decoder_kernel_matches_reference() {
        run_baseline(&build_dec(Scale::Tiny)).expect("rawaudio_dec validates");
    }
}
