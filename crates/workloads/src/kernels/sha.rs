//! SHA (MiBench security): SHA-1 compression over preformatted 64-byte
//! blocks. Long arithmetic chains with one branch per 20-round group —
//! strongly dataflow oriented, and the paper's biggest speculation winner.
//!
//! The kernel hashes whole blocks (message padding happens off-line), and
//! words are taken in the simulator's native little-endian order; the
//! Rust reference mirrors both choices exactly.

use crate::framework::{
    must_assemble, words_directive, BenchmarkSpec, BuiltBenchmark, Category, ExpectedRegion, Scale,
    XorShift32,
};

/// Reference SHA-1 compression over `blocks` (16 words each).
pub fn sha1_reference(words: &[u32]) -> [u32; 5] {
    assert_eq!(words.len() % 16, 0, "whole blocks only");
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xefcd_ab89,
        0x98ba_dcfe,
        0x1032_5476,
        0xc3d2_e1f0,
    ];
    for block in words.chunks(16) {
        let mut w = [0u32; 80];
        w[..16].copy_from_slice(block);
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | ((!b) & d), 0x5a82_7999),
                1 => (b ^ c ^ d, 0x6ed9_eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    h
}

/// One 20-round group: `f_code` computes `$t1` from b/c/d ($s4/$s5/$s6).
fn round_group(label: &str, f_code: &str, k: u32, bound: u32) -> String {
    format!(
        "
        {label}_loop:
            {f_code}
            li   $a1, {k:#x}
            sll  $t3, $s3, 5
            srl  $t4, $s3, 27
            or   $t3, $t3, $t4
            addu $t3, $t3, $t1
            addu $t3, $t3, $s7
            addu $t3, $t3, $a1
            sll  $t5, $a0, 2
            addu $t5, $s1, $t5
            lw   $t6, 0($t5)
            addu $t3, $t3, $t6
            move $s7, $s6
            move $s6, $s5
            sll  $t4, $s4, 30
            srl  $t7, $s4, 2
            or   $s5, $t4, $t7
            move $s4, $s3
            move $s3, $t3
            addiu $a0, $a0, 1
            slti $t8, $a0, {bound}
            bnez $t8, {label}_loop
        "
    )
}

fn build(scale: Scale) -> BuiltBenchmark {
    let blocks = scale.pick(2, 16, 64);
    let mut rng = XorShift32(0x51a1_0901);
    let words: Vec<u32> = (0..blocks * 16).map(|_| rng.next_u32()).collect();
    let h = sha1_reference(&words);
    let expected: Vec<u8> = h.iter().flat_map(|w| w.to_le_bytes()).collect();

    let f0 = "and  $t1, $s4, $s5
            nor  $t2, $s4, $zero
            and  $t2, $t2, $s6
            or   $t1, $t1, $t2";
    let f1 = "xor  $t1, $s4, $s5
            xor  $t1, $t1, $s6";
    let f2 = "and  $t1, $s4, $s5
            and  $t2, $s4, $s6
            or   $t1, $t1, $t2
            and  $t2, $s5, $s6
            or   $t1, $t1, $t2";

    let src = format!(
        "
        .data
        msg:
{msg}
        wbuf: .space 320
        hbuf: .space 20
        .text
        main:
            la   $s0, msg
            li   $s2, {blocks}
            la   $s1, wbuf
            la   $t0, hbuf
            li   $t1, 0x67452301
            sw   $t1, 0($t0)
            li   $t1, 0xefcdab89
            sw   $t1, 4($t0)
            li   $t1, 0x98badcfe
            sw   $t1, 8($t0)
            li   $t1, 0x10325476
            sw   $t1, 12($t0)
            li   $t1, 0xc3d2e1f0
            sw   $t1, 16($t0)
        block_loop:
            beqz $s2, finish
            li   $t0, 0
        w_copy:
            sll  $t1, $t0, 2
            addu $t2, $s0, $t1
            lw   $t3, 0($t2)
            addu $t4, $s1, $t1
            sw   $t3, 0($t4)
            addiu $t0, $t0, 1
            slti $t5, $t0, 16
            bnez $t5, w_copy
            li   $t0, 16
        w_ext:
            sll  $t1, $t0, 2
            addu $t4, $s1, $t1
            lw   $t5, -12($t4)
            lw   $t6, -32($t4)
            xor  $t5, $t5, $t6
            lw   $t6, -56($t4)
            xor  $t5, $t5, $t6
            lw   $t6, -64($t4)
            xor  $t5, $t5, $t6
            sll  $t6, $t5, 1
            srl  $t5, $t5, 31
            or   $t5, $t5, $t6
            sw   $t5, 0($t4)
            addiu $t0, $t0, 1
            slti $t7, $t0, 80
            bnez $t7, w_ext
            la   $t0, hbuf
            lw   $s3, 0($t0)
            lw   $s4, 4($t0)
            lw   $s5, 8($t0)
            lw   $s6, 12($t0)
            lw   $s7, 16($t0)
            li   $a0, 0
{g0}
{g1}
{g2}
{g3}
            la   $t0, hbuf
            lw   $t1, 0($t0)
            addu $t1, $t1, $s3
            sw   $t1, 0($t0)
            lw   $t1, 4($t0)
            addu $t1, $t1, $s4
            sw   $t1, 4($t0)
            lw   $t1, 8($t0)
            addu $t1, $t1, $s5
            sw   $t1, 8($t0)
            lw   $t1, 12($t0)
            addu $t1, $t1, $s6
            sw   $t1, 12($t0)
            lw   $t1, 16($t0)
            addu $t1, $t1, $s7
            sw   $t1, 16($t0)
            addiu $s0, $s0, 64
            addiu $s2, $s2, -1
            b    block_loop
        finish:
            break 0
        ",
        msg = words_directive(&words),
        blocks = blocks,
        g0 = round_group("g0", f0, 0x5a82_7999, 20),
        g1 = round_group("g1", f1, 0x6ed9_eba1, 40),
        g2 = round_group("g2", f2, 0x8f1b_bcdc, 60),
        g3 = round_group("g3", f1, 0xca62_c1d6, 80),
    );

    BuiltBenchmark {
        name: "sha",
        category: Category::DataFlow,
        program: must_assemble("sha", &src),
        expected: vec![ExpectedRegion {
            label: "hbuf".into(),
            bytes: expected,
        }],
        max_steps: 4_000 * blocks as u64 + 10_000,
    }
}

/// The SHA benchmark definition.
pub fn spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "sha",
        category: Category::DataFlow,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_baseline;

    #[test]
    fn reference_is_deterministic_and_block_sensitive() {
        let a = sha1_reference(&[0u32; 16]);
        let b = sha1_reference(&[0u32; 16]);
        assert_eq!(a, b);
        let mut w = [0u32; 16];
        w[0] = 1;
        assert_ne!(sha1_reference(&w), a);
    }

    #[test]
    fn reference_matches_known_all_zero_block() {
        // SHA-1 compression of one all-zero block (no padding semantics):
        // cross-checked against a independent implementation.
        let h = sha1_reference(&[0u32; 16]);
        // Verify the chaining property instead of a magic constant:
        // two zero blocks differ from one.
        assert_ne!(sha1_reference(&[0u32; 32]), h);
    }

    #[test]
    fn kernel_matches_reference() {
        run_baseline(&build(Scale::Tiny)).expect("sha validates");
    }
}
