//! GSM full-rate (MiBench telecomm): the fixed-point short-term filters.
//!
//! * `gsm_enc` — preemphasis, a 9-lag autocorrelation per 160-sample
//!   frame, and the long-term-predictor (LTP) lag search over the
//!   preceding samples (the multiply-heavy front of the GSM encoder).
//! * `gsm_dec` — an 8-tap fixed-point synthesis (IIR) filter, the core of
//!   the GSM decoder's short-term synthesis.
//!
//! All arithmetic is Q15-style integer math, mirrored exactly by the
//! Rust references.

use crate::framework::{
    must_assemble, words_directive, BenchmarkSpec, BuiltBenchmark, Category, ExpectedRegion, Scale,
    XorShift32,
};

const FRAME: usize = 160;
const LAGS: usize = 9;
/// Preemphasis coefficient (Q15), as in GSM 06.10.
const PREEMPH: i32 = 28180;
/// Synthesis filter taps (Q15), chosen stable (sum << 32768).
const TAPS: [i32; 8] = [9830, -4915, 2458, -1229, 614, -307, 154, -77];
/// LTP subframe length.
const SUB: usize = 40;
/// LTP subframes searched per frame.
const SUBS_PER_FRAME: usize = 2;
/// LTP lag search range (inclusive start, exclusive end).
const LAG_MIN: usize = 40;
const LAG_MAX: usize = 72;

fn gen_samples(n: usize, rng: &mut XorShift32) -> Vec<i32> {
    let mut phase: i32 = 0;
    let mut dir: i32 = 37;
    (0..n)
        .map(|_| {
            phase += dir;
            if !(-900..=900).contains(&phase) {
                dir = -dir;
            }
            phase + (rng.below(201) as i32) - 100
        })
        .collect()
}

/// Reference for the encoder front end: the preemphasized signal, the
/// per-frame autocorrelations, and the LTP `(lag, correlation)` pairs.
pub struct GsmEncReference {
    /// Preemphasized samples (whole signal).
    pub work: Vec<i32>,
    /// `LAGS` autocorrelation words per frame.
    pub acf: Vec<i32>,
    /// `(best_lag, best_corr)` per searched subframe (frames 1.. only).
    pub ltp: Vec<(i32, i32)>,
}

/// Reference: preemphasis, per-frame autocorrelation, LTP lag search.
pub fn gsm_enc_reference(samples: &[i32]) -> GsmEncReference {
    assert_eq!(samples.len() % FRAME, 0);
    let frames = samples.len() / FRAME;
    let mut work = vec![0i32; samples.len()];
    let mut acf = Vec::new();
    for (f, frame) in samples.chunks(FRAME).enumerate() {
        // s[n] = x[n] - (PREEMPH * s[n-1]) >> 15, prev reset per frame.
        let mut prev = 0i32;
        for (i, &x) in frame.iter().enumerate() {
            let v = x - ((PREEMPH.wrapping_mul(prev)) >> 15);
            work[f * FRAME + i] = v;
            prev = v;
        }
        // Fixed summation window (n = 8..FRAME) so every lag runs the
        // same unrolled loop; `n - k` stays in range for k <= 8.
        let s = &work[f * FRAME..(f + 1) * FRAME];
        for k in 0..LAGS {
            let mut a = 0i32;
            for n in 8..FRAME {
                a = a.wrapping_add(s[n].wrapping_mul(s[n - k]));
            }
            acf.push(a);
        }
    }
    // LTP: for frames 1.., per subframe, find the lag maximizing the
    // cross-correlation with the history (ties keep the smaller lag).
    let mut ltp = Vec::new();
    for f in 1..frames {
        for sub in 0..SUBS_PER_FRAME {
            let base = f * FRAME + sub * SUB;
            let mut best_lag = LAG_MIN as i32;
            let mut best_corr = i32::MIN;
            for lag in LAG_MIN..LAG_MAX {
                let mut corr = 0i32;
                for n in 0..SUB {
                    corr = corr.wrapping_add(work[base + n].wrapping_mul(work[base + n - lag]));
                }
                if corr > best_corr {
                    best_corr = corr;
                    best_lag = lag as i32;
                }
            }
            ltp.push((best_lag, best_corr));
        }
    }
    GsmEncReference { work, acf, ltp }
}

/// Reference: 8-tap synthesis filter over the whole signal.
pub fn gsm_dec_reference(residual: &[i32]) -> Vec<i32> {
    let mut y = vec![0i32; residual.len()];
    for n in 0..residual.len() {
        let mut acc = residual[n];
        for (k, &c) in TAPS.iter().enumerate() {
            if n > k {
                acc = acc.wrapping_add((c.wrapping_mul(y[n - k - 1])) >> 15);
            }
        }
        y[n] = acc.clamp(-32768, 32767);
    }
    y
}

fn build_enc(scale: Scale) -> BuiltBenchmark {
    let frames = scale.pick(2, 4, 8);
    let n = frames * FRAME;
    let mut rng = XorShift32(0x65a0_e0c1);
    let samples = gen_samples(n, &mut rng);
    let reference = gsm_enc_reference(&samples);
    let expected_acf: Vec<u8> = reference
        .acf
        .iter()
        .flat_map(|&v| (v as u32).to_le_bytes())
        .collect();
    let expected_ltp: Vec<u8> = reference
        .ltp
        .iter()
        .flat_map(|&(lag, corr)| {
            let mut b = (lag as u32).to_le_bytes().to_vec();
            b.extend_from_slice(&(corr as u32).to_le_bytes());
            b
        })
        .collect();

    let corr_unrolled: String = (0..8)
        .map(|u| {
            format!(
                "            lw   $t8, {o}($t4)
            lw   $t9, {o}($t6)
            mul  $a1, $t8, $t9
            addu $v0, $v0, $a1\n",
                o = 4 * u,
            )
        })
        .collect();

    let src = format!(
        "
        .data
        pcm:
{pcm}
        work: .space {work_bytes}
        acf: .space {acf_bytes}
        ltp: .space {ltp_bytes}
        .text
        main:
            la   $s0, pcm
            la   $s1, work
            la   $s2, acf
            li   $s3, {frames}
        frame_loop:
            # --- preemphasis into work[] (prev resets per frame) ---
            li   $t0, {frame}
            li   $t1, 0              # prev
            move $t2, $s0
            move $t3, $s1
        pre_loop:
            lw   $t4, 0($t2)
            li   $t5, {preemph}
            mul  $t6, $t5, $t1
            sra  $t6, $t6, 15
            subu $t4, $t4, $t6
            sw   $t4, 0($t3)
            move $t1, $t4
            addiu $t2, $t2, 4
            addiu $t3, $t3, 4
            addiu $t0, $t0, -1
            bnez $t0, pre_loop

            # --- autocorrelation: acf[k] = sum(n=8..) s[n]*s[n-k],
            #     inner product unrolled 8x (19 iterations) ---
            li   $s4, 0              # k
        lag_loop:
            li   $s5, 0              # acc
            li   $t0, 8              # n
            addiu $a0, $s1, 32       # &s[n]
            sll  $a1, $s4, 2
            subu $a1, $a0, $a1       # &s[n-k]
        acc_loop:
{unrolled}
            addiu $a0, $a0, 32
            addiu $a1, $a1, 32
            addiu $t0, $t0, 8
            slti $t6, $t0, {frame}
            bnez $t6, acc_loop
            sw   $s5, 0($s2)
            addiu $s2, $s2, 4
            addiu $s4, $s4, 1
            slti $t7, $s4, {lags}
            bnez $t7, lag_loop

            addiu $s0, $s0, {frame_bytes}
            addiu $s1, $s1, {frame_bytes}
            addiu $s3, $s3, -1
            bnez $s3, frame_loop

            # --- LTP lag search (frames 1..): per subframe, pick the lag
            #     in [LAG_MIN, LAG_MAX) maximizing the cross-correlation
            #     with the history ---
            la   $s0, work
            la   $s2, ltp
            li   $s3, 1              # f
        ltp_frame:
            li   $s4, 0              # subframe
        ltp_sub:
            li   $t0, {frame}
            mul  $t1, $s3, $t0
            li   $t3, {sub}
            mul  $t2, $s4, $t3
            addu $t1, $t1, $t2
            sll  $t1, $t1, 2
            addu $s5, $s0, $t1       # &work[base]
            li   $s6, {lag_min}      # lag
            li   $s7, -2147483648    # best_corr
            li   $a3, {lag_min}      # best_lag
        ltp_lag:
            li   $v0, 0              # corr
            move $t4, $s5
            sll  $t5, $s6, 2
            subu $t6, $s5, $t5       # &work[base - lag]
            li   $t7, {corr_iters}
        ltp_corr:
{corr_unrolled}
            addiu $t4, $t4, 32
            addiu $t6, $t6, 32
            addiu $t7, $t7, -1
            bnez $t7, ltp_corr
            slt  $t8, $s7, $v0       # corr > best?
            beqz $t8, ltp_next
            move $s7, $v0
            move $a3, $s6
        ltp_next:
            addiu $s6, $s6, 1
            slti $t9, $s6, {lag_max}
            bnez $t9, ltp_lag
            sw   $a3, 0($s2)
            sw   $s7, 4($s2)
            addiu $s2, $s2, 8
            addiu $s4, $s4, 1
            slti $t0, $s4, {subs}
            bnez $t0, ltp_sub
            addiu $s3, $s3, 1
            slti $t0, $s3, {frames}
            bnez $t0, ltp_frame
            break 0
        ",
        pcm = words_directive(&samples.iter().map(|&v| v as u32).collect::<Vec<_>>()),
        unrolled = (0..8)
            .map(|u| {
                format!(
                    "            lw   $t2, {o}($a0)
            lw   $t4, {o}($a1)
            mul  $t5, $t2, $t4
            addu $s5, $s5, $t5\n",
                    o = 4 * u,
                )
            })
            .collect::<String>(),
        corr_unrolled = corr_unrolled,
        work_bytes = 4 * n,
        acf_bytes = 4 * LAGS * frames,
        ltp_bytes = 8 * SUBS_PER_FRAME * (frames - 1),
        frames = frames,
        frame = FRAME,
        frame_bytes = 4 * FRAME,
        preemph = PREEMPH,
        lags = LAGS,
        sub = SUB,
        subs = SUBS_PER_FRAME,
        lag_min = LAG_MIN,
        lag_max = LAG_MAX,
        corr_iters = SUB / 8,
    );

    BuiltBenchmark {
        name: "gsm_enc",
        category: Category::DataFlow,
        program: must_assemble("gsm_enc", &src),
        expected: vec![
            ExpectedRegion {
                label: "acf".into(),
                bytes: expected_acf,
            },
            ExpectedRegion {
                label: "ltp".into(),
                bytes: expected_ltp,
            },
        ],
        max_steps: 120_000 * frames as u64 + 10_000,
    }
}

fn build_dec(scale: Scale) -> BuiltBenchmark {
    let frames = scale.pick(1, 4, 10);
    let n = frames * FRAME;
    let mut rng = XorShift32(0x65a0_d0d2);
    let residual = gen_samples(n, &mut rng);
    let expected: Vec<u8> = gsm_dec_reference(&residual)
        .iter()
        .flat_map(|&v| (v as u32).to_le_bytes())
        .collect();

    // The synthesis loop reads back the last 8 outputs; taps with n <= k
    // are skipped via the inner bound, matching the reference.
    let src = format!(
        "
        .data
        taps:
{taps}
        res:
{res}
        outp: .space {out_bytes}
        .text
        main:
            la   $s0, res
            la   $s1, outp
            la   $s2, taps
            li   $s3, {n}
            li   $s4, 0              # n
        sample_loop:
            sll  $t0, $s4, 2
            addu $t1, $s0, $t0
            lw   $s5, 0($t1)         # acc = residual[n]
            li   $s6, 0              # k
        tap_loop:
            # if n <= k skip this tap
            slt  $t2, $s6, $s4
            beqz $t2, tap_next
            sll  $t3, $s6, 2
            addu $t4, $s2, $t3
            lw   $t5, 0($t4)         # c[k]
            subu $t6, $s4, $s6
            addiu $t6, $t6, -1
            sll  $t6, $t6, 2
            addu $t6, $s1, $t6
            lw   $t7, 0($t6)         # y[n-k-1]
            mul  $t8, $t5, $t7
            sra  $t8, $t8, 15
            addu $s5, $s5, $t8
        tap_next:
            addiu $s6, $s6, 1
            slti $t9, $s6, 8
            bnez $t9, tap_loop
            # clamp to 16 bits
            li   $t2, 32767
            slt  $t3, $t2, $s5
            beqz $t3, clamp_lo
            move $s5, $t2
        clamp_lo:
            li   $t2, -32768
            slt  $t3, $s5, $t2
            beqz $t3, store
            move $s5, $t2
        store:
            sll  $t0, $s4, 2
            addu $t1, $s1, $t0
            sw   $s5, 0($t1)
            addiu $s4, $s4, 1
            slt  $t4, $s4, $s3
            bnez $t4, sample_loop
            break 0
        ",
        taps = words_directive(&TAPS.map(|v| v as u32)),
        res = words_directive(&residual.iter().map(|&v| v as u32).collect::<Vec<_>>()),
        out_bytes = 4 * n,
        n = n,
    );

    BuiltBenchmark {
        name: "gsm_dec",
        category: Category::Mixed,
        program: must_assemble("gsm_dec", &src),
        expected: vec![ExpectedRegion {
            label: "outp".into(),
            bytes: expected,
        }],
        max_steps: 200 * n as u64 + 10_000,
    }
}

/// The GSM encoder benchmark definition.
pub fn enc_spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "gsm_enc",
        category: Category::DataFlow,
        build: build_enc,
    }
}

/// The GSM decoder benchmark definition.
pub fn dec_spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "gsm_dec",
        category: Category::Mixed,
        build: build_dec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_baseline;

    #[test]
    fn enc_reference_shapes() {
        let mut rng = XorShift32(5);
        let s = gen_samples(2 * FRAME, &mut rng);
        let r = gsm_enc_reference(&s);
        assert_eq!(r.acf.len(), 2 * LAGS);
        // acf[0] is the energy: strictly positive for a non-zero signal,
        // and at least as large as any other lag in magnitude.
        assert!(r.acf[0] > 0);
        for &v in &r.acf[1..LAGS] {
            assert!(v.abs() <= r.acf[0]);
        }
        // LTP: one (lag, corr) pair per subframe of frame 1, with the lag
        // inside the search window.
        assert_eq!(r.ltp.len(), SUBS_PER_FRAME);
        for &(lag, _) in &r.ltp {
            assert!((LAG_MIN as i32..LAG_MAX as i32).contains(&lag));
        }
        // The reported correlation must be the true maximum over the
        // window for its subframe.
        let base = FRAME; // frame 1, subframe 0
        let max_corr = (LAG_MIN..LAG_MAX)
            .map(|lag| {
                (0..SUB).fold(0i32, |acc, n| {
                    acc.wrapping_add(r.work[base + n].wrapping_mul(r.work[base + n - lag]))
                })
            })
            .max()
            .expect("non-empty window");
        assert_eq!(r.ltp[0].1, max_corr);
    }

    #[test]
    fn dec_reference_is_stable() {
        let mut rng = XorShift32(6);
        let r = gen_samples(FRAME, &mut rng);
        let y = gsm_dec_reference(&r);
        assert!(y.iter().all(|&v| (-32768..=32767).contains(&v)));
    }

    #[test]
    fn enc_kernel_matches_reference() {
        run_baseline(&build_enc(Scale::Tiny)).expect("gsm_enc validates");
    }

    #[test]
    fn dec_kernel_matches_reference() {
        run_baseline(&build_dec(Scale::Tiny)).expect("gsm_dec validates");
    }
}
