//! JPEG (MiBench consumer): 8×8 forward DCT + quantization (encode) and
//! dequantization + inverse DCT (decode), in 8.8 fixed point.
//!
//! Like the real JPEG codec, the generated program has *many* distinct
//! code regions (the per-block transform code is specialized per block,
//! as a compiler would do for the different component planes and
//! unrolled passes), so no small set of basic blocks dominates — the
//! paper's Figure 3a shows JPEG needing ~20 blocks for 50% coverage, and
//! Table 2 shows it gaining the most from larger reconfiguration caches.
//! The inner product over `k` is fully unrolled: eight multiplies and
//! sixteen loads of straight-line code per output coefficient, which is
//! where bigger arrays (more multipliers and memory ports per row) pull
//! ahead. The encoder's quantization divides — divisions cannot map onto
//! the array, exactly as in the paper.

use crate::framework::{
    must_assemble, words_directive, BenchmarkSpec, BuiltBenchmark, Category, ExpectedRegion, Scale,
    XorShift32,
};

/// Standard JPEG luminance quantization table.
const QTABLE: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// DCT basis matrix in 8.8 fixed point:
/// `C[u][x] = round(a(u) * cos((2x+1)uπ/16) * 256)`.
fn cmat() -> [i32; 64] {
    let mut c = [0i32; 64];
    for u in 0..8 {
        let alpha = if u == 0 {
            (1.0f64 / 8.0).sqrt()
        } else {
            (2.0f64 / 8.0).sqrt()
        };
        for x in 0..8 {
            let v = alpha * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
            c[u * 8 + x] = (v * 256.0).round() as i32;
        }
    }
    c
}

/// Reference forward DCT + quantization of one 8×8 block of 0..255
/// pixels, mirroring the kernel's fixed-point math exactly.
pub fn fdct_quant_reference(pixels: &[i32; 64]) -> [i32; 64] {
    let c = cmat();
    let mut tmp = [0i32; 64];
    for u in 0..8 {
        for x in 0..8 {
            let mut acc = 0i32;
            for k in 0..8 {
                acc = acc.wrapping_add(c[u * 8 + k].wrapping_mul(pixels[k * 8 + x] - 128));
            }
            tmp[u * 8 + x] = acc;
        }
    }
    let mut out = [0i32; 64];
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0i32;
            for k in 0..8 {
                acc = acc.wrapping_add(tmp[u * 8 + k].wrapping_mul(c[v * 8 + k]));
            }
            let t = (acc.wrapping_add(32768)) >> 16;
            out[u * 8 + v] = t / QTABLE[u * 8 + v];
        }
    }
    out
}

/// Reference dequantization + inverse DCT (clamped 0..255 pixels).
pub fn idct_dequant_reference(coef: &[i32; 64]) -> [i32; 64] {
    let c = cmat();
    let mut d = [0i32; 64];
    for i in 0..64 {
        d[i] = coef[i].wrapping_mul(QTABLE[i]);
    }
    let mut tmp = [0i32; 64];
    for x in 0..8 {
        for v in 0..8 {
            let mut acc = 0i32;
            for u in 0..8 {
                acc = acc.wrapping_add(c[u * 8 + x].wrapping_mul(d[u * 8 + v]));
            }
            tmp[x * 8 + v] = acc;
        }
    }
    let mut out = [0i32; 64];
    for x in 0..8 {
        for y in 0..8 {
            let mut acc = 0i32;
            for v in 0..8 {
                acc = acc.wrapping_add(tmp[x * 8 + v].wrapping_mul(c[v * 8 + y]));
            }
            let p = ((acc.wrapping_add(32768)) >> 16) + 128;
            out[x * 8 + y] = p.clamp(0, 255);
        }
    }
    out
}

/// The standard JPEG zigzag scan order.
const ZIGZAG: [u8; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Bytes reserved per block for the run-length stream: DC word + up to
/// 63 (run, value) pairs + the (0,0) end-of-block marker.
pub const RLE_BYTES_PER_BLOCK: usize = 4 + 63 * 8 + 8;

/// Reference zigzag + run-length coding of one quantized block: the DC
/// word, then `(zero_run, value)` pairs for the AC coefficients, a
/// `(0, 0)` end marker, zero-padded to [`RLE_BYTES_PER_BLOCK`].
pub fn rle_reference(coef: &[i32; 64]) -> Vec<u8> {
    let mut zz = [0i32; 64];
    for (i, &src) in ZIGZAG.iter().enumerate() {
        zz[i] = coef[src as usize];
    }
    let mut out: Vec<u8> = Vec::with_capacity(RLE_BYTES_PER_BLOCK);
    out.extend_from_slice(&(zz[0] as u32).to_le_bytes());
    let mut run = 0u32;
    for &v in &zz[1..] {
        if v == 0 {
            run += 1;
        } else {
            out.extend_from_slice(&run.to_le_bytes());
            out.extend_from_slice(&(v as u32).to_le_bytes());
            run = 0;
        }
    }
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.resize(RLE_BYTES_PER_BLOCK, 0);
    out
}

fn gen_pixels(blocks: usize, rng: &mut XorShift32) -> Vec<i32> {
    // Smooth gradient + noise, like natural image content.
    (0..blocks * 64)
        .map(|i| {
            let x = (i % 8) as i32;
            let y = ((i / 8) % 8) as i32;
            let base = 128 + 10 * (x - 4) + 6 * (y - 4);
            (base + (rng.below(41) as i32 - 20)).clamp(0, 255)
        })
        .collect()
}

/// A fully-unrolled 8-term inner product nest over `(i, j)`:
/// * `prologue` computes the row/column cursors `$t2`/`$t3` (and
///   optionally `$t4`) from the loop registers `$s3` (i) and `$s4` (j),
/// * `term(k)` emits the straight-line code for one product into `$t7`,
/// * `post` consumes the accumulator `$s6`.
fn ip_nest(label: &str, prologue: &str, term: impl Fn(usize) -> String, post: &str) -> String {
    let mut body = String::new();
    for k in 0..8 {
        body.push_str(&term(k));
        body.push_str("            addu $s6, $s6, $t7\n");
    }
    format!(
        "
            li   $s3, 0              # i
        {label}_i:
            li   $s4, 0              # j
        {label}_j:
            {prologue}
            li   $s6, 0
{body}
            {post}
            addiu $s4, $s4, 1
            slti $t0, $s4, 8
            bnez $t0, {label}_j
            addiu $s3, $s3, 1
            slti $t0, $s3, 8
            bnez $t0, {label}_i
        "
    )
}

/// `addr = base + 4 * (8*i + j)` into `$t6`.
fn addr(base_reg: &str, row_reg: &str, col_reg: &str) -> String {
    format!(
        "sll  $t6, {row_reg}, 3
            addu $t6, $t6, {col_reg}
            sll  $t6, $t6, 2
            addu $t6, {base_reg}, $t6"
    )
}

/// Per-block encoder code: two unrolled-inner-product matmuls with
/// block-specialized labels and base addresses.
fn enc_block_code(b: usize) -> String {
    let stage1 = ip_nest(
        &format!("mm1_{b}"),
        // $t2 = &C[i*8], $t3 = &pix[j]
        "sll  $t2, $s3, 5
            addu $t2, $s0, $t2
            sll  $t3, $s4, 2
            addu $t3, $s1, $t3",
        |k| {
            format!(
                "            lw   $t8, {co}($t2)
            lw   $t9, {po}($t3)
            addiu $t9, $t9, -128
            mul  $t7, $t8, $t9\n",
                co = 4 * k,
                po = 32 * k,
            )
        },
        // tmpm[i*8+j] = acc
        &format!(
            "{}\n            sw   $s6, 0($t6)",
            addr("$s2", "$s3", "$s4")
        ),
    );
    let stage2 = ip_nest(
        &format!("mm2_{b}"),
        // $t2 = &tmpm[i*8], $t3 = &C[j*8]
        "sll  $t2, $s3, 5
            addu $t2, $s2, $t2
            sll  $t3, $s4, 5
            addu $t3, $s0, $t3",
        |k| {
            format!(
                "            lw   $t8, {o}($t2)
            lw   $t9, {o}($t3)
            mul  $t7, $t8, $t9\n",
                o = 4 * k,
            )
        },
        // coef = ((acc + 32768) >> 16) / Q[i*8+j]
        &format!(
            "li   $t1, 32768
            addu $s6, $s6, $t1
            sra  $s6, $s6, 16
            {qaddr}
            lw   $t2, 0($t6)
            div  $s6, $s6, $t2
            {oaddr}
            sw   $s6, 0($t6)",
            qaddr = addr("$s7", "$s3", "$s4"),
            oaddr = addr("$a3", "$s3", "$s4"),
        ),
    );
    let entropy = format!(
        "
            # --- zigzag reorder into zzbuf ---
            la   $t0, zzord
            la   $t1, coef+{off}
            la   $t2, zzbuf
            li   $t3, 64
        zz_{b}:
            lbu  $t4, 0($t0)
            sll  $t4, $t4, 2
            addu $t4, $t1, $t4
            lw   $t5, 0($t4)
            sw   $t5, 0($t2)
            addiu $t0, $t0, 1
            addiu $t2, $t2, 4
            addiu $t3, $t3, -1
            bnez $t3, zz_{b}

            # --- run-length code the AC coefficients ---
            la   $t0, zzbuf
            la   $t1, rle+{rle_off}
            lw   $t2, 0($t0)
            sw   $t2, 0($t1)         # DC
            addiu $t0, $t0, 4
            addiu $t1, $t1, 4
            li   $t3, 63
            li   $t4, 0              # zero run
        rle_{b}:
            lw   $t5, 0($t0)
            bnez $t5, emit_{b}
            addiu $t4, $t4, 1
            b    next_{b}
        emit_{b}:
            sw   $t4, 0($t1)
            sw   $t5, 4($t1)
            addiu $t1, $t1, 8
            li   $t4, 0
        next_{b}:
            addiu $t0, $t0, 4
            addiu $t3, $t3, -1
            bnez $t3, rle_{b}
            sw   $zero, 0($t1)       # end-of-block marker
            sw   $zero, 4($t1)
        ",
        b = b,
        off = 256 * b,
        rle_off = RLE_BYTES_PER_BLOCK * b,
    );
    format!(
        "
            la   $s1, pix+{off}
            la   $a3, coef+{off}
{stage1}
{stage2}
{entropy}
        ",
        off = 256 * b,
    )
}

/// Per-block decoder code.
fn dec_block_code(b: usize) -> String {
    let stage1 = ip_nest(
        &format!("im1_{b}"),
        // $t2 = &C[i] (column i, stride 32), $t3 = &coef[j], $t4 = &Q[j]
        "sll  $t2, $s3, 2
            addu $t2, $s0, $t2
            sll  $t3, $s4, 2
            addu $t4, $s7, $t3
            addu $t3, $s1, $t3",
        |k| {
            format!(
                "            lw   $t8, {o}($t2)
            lw   $t9, {o}($t3)
            lw   $t5, {o}($t4)
            mul  $t9, $t9, $t5
            mul  $t7, $t8, $t9\n",
                o = 32 * k,
            )
        },
        &format!(
            "{}\n            sw   $s6, 0($t6)",
            addr("$s2", "$s3", "$s4")
        ),
    );
    let stage2 = ip_nest(
        &format!("im2_{b}"),
        // $t2 = &tmpm[i*8] (offset 4k), $t3 = &C[j] (offset 32k)
        "sll  $t2, $s3, 5
            addu $t2, $s2, $t2
            sll  $t3, $s4, 2
            addu $t3, $s0, $t3",
        |k| {
            format!(
                "            lw   $t8, {a}($t2)
            lw   $t9, {c}($t3)
            mul  $t7, $t8, $t9\n",
                a = 4 * k,
                c = 32 * k,
            )
        },
        &format!(
            "li   $t1, 32768
            addu $s6, $s6, $t1
            sra  $s6, $s6, 16
            addiu $s6, $s6, 128
            bgez $s6, clamp_hi_{b}
            li   $s6, 0
        clamp_hi_{b}:
            slti $t1, $s6, 256
            bnez $t1, clamp_ok_{b}
            li   $s6, 255
        clamp_ok_{b}:
            {oaddr}
            sw   $s6, 0($t6)",
            oaddr = addr("$a3", "$s3", "$s4"),
        ),
    );
    format!(
        "
            la   $s1, coefs+{off}
            la   $a3, outp+{off}
{stage1}
{stage2}
        ",
        off = 256 * b,
    )
}

fn build_enc(scale: Scale) -> BuiltBenchmark {
    let blocks = scale.pick(1, 6, 20);
    let passes = scale.pick(2, 3, 3);
    let mut rng = XorShift32(0x09e6_0e0c);
    let pixels = gen_pixels(blocks, &mut rng);
    let mut expected = Vec::new();
    let mut expected_rle = Vec::new();
    for b in 0..blocks {
        let block: [i32; 64] = pixels[b * 64..(b + 1) * 64].try_into().expect("64 px");
        let coef = fdct_quant_reference(&block);
        for v in coef {
            expected.extend_from_slice(&(v as u32).to_le_bytes());
        }
        expected_rle.extend_from_slice(&rle_reference(&coef));
    }
    let pix_words: Vec<u32> = pixels.iter().map(|&p| p as u32).collect();
    let blocks_code: String = (0..blocks).map(enc_block_code).collect();

    let src = format!(
        "
        .data
        cmat:
{cmat}
        qtab:
{qtab}
        pix:
{pix}
        zzord:
{zzord}
        .align 2
        tmpm: .space 256
        zzbuf: .space 256
        coef: .space {coef_bytes}
        rle: .space {rle_bytes}
        .text
        main:
            la   $s0, cmat
            la   $s2, tmpm
            la   $s7, qtab
            li   $a2, {passes}
        pass_loop:
{blocks_code}
            addiu $a2, $a2, -1
            bnez $a2, pass_loop
            break 0
        ",
        cmat = words_directive(&cmat().map(|v| v as u32)),
        qtab = words_directive(&QTABLE.map(|v| v as u32)),
        pix = words_directive(&pix_words),
        zzord = crate::framework::bytes_directive_pub(&ZIGZAG),
        coef_bytes = blocks * 256,
        rle_bytes = blocks * RLE_BYTES_PER_BLOCK,
        passes = passes,
        blocks_code = blocks_code,
    );

    BuiltBenchmark {
        name: "jpeg_enc",
        category: Category::Mixed,
        program: must_assemble("jpeg_enc", &src),
        expected: vec![
            ExpectedRegion {
                label: "coef".into(),
                bytes: expected,
            },
            ExpectedRegion {
                label: "rle".into(),
                bytes: expected_rle,
            },
        ],
        max_steps: 40_000 * (blocks * passes) as u64 + 10_000,
    }
}

fn build_dec(scale: Scale) -> BuiltBenchmark {
    let blocks = scale.pick(1, 6, 20);
    let passes = scale.pick(2, 3, 3);
    let mut rng = XorShift32(0x09e6_0d0d);
    let pixels = gen_pixels(blocks, &mut rng);
    let mut coefs = Vec::new();
    let mut expected = Vec::new();
    for b in 0..blocks {
        let block: [i32; 64] = pixels[b * 64..(b + 1) * 64].try_into().expect("64 px");
        let coef = fdct_quant_reference(&block);
        coefs.extend_from_slice(&coef);
        for v in idct_dequant_reference(&coef) {
            expected.extend_from_slice(&(v as u32).to_le_bytes());
        }
    }
    let blocks_code: String = (0..blocks).map(dec_block_code).collect();

    let src = format!(
        "
        .data
        cmat:
{cmat}
        qtab:
{qtab}
        coefs:
{coefs}
        tmpm: .space 256
        outp: .space {out_bytes}
        .text
        main:
            la   $s0, cmat
            la   $s2, tmpm
            la   $s7, qtab
            li   $a2, {passes}
        pass_loop:
{blocks_code}
            addiu $a2, $a2, -1
            bnez $a2, pass_loop
            break 0
        ",
        cmat = words_directive(&cmat().map(|v| v as u32)),
        qtab = words_directive(&QTABLE.map(|v| v as u32)),
        coefs = words_directive(&coefs.iter().map(|&v| v as u32).collect::<Vec<_>>()),
        out_bytes = blocks * 256,
        passes = passes,
        blocks_code = blocks_code,
    );

    BuiltBenchmark {
        name: "jpeg_dec",
        category: Category::Mixed,
        program: must_assemble("jpeg_dec", &src),
        expected: vec![ExpectedRegion {
            label: "outp".into(),
            bytes: expected,
        }],
        max_steps: 40_000 * (blocks * passes) as u64 + 10_000,
    }
}

/// The JPEG encode benchmark definition.
pub fn enc_spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "jpeg_enc",
        category: Category::Mixed,
        build: build_enc,
    }
}

/// The JPEG decode benchmark definition.
pub fn dec_spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "jpeg_dec",
        category: Category::Mixed,
        build: build_dec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_baseline;

    #[test]
    fn dct_roundtrip_approximates_input() {
        let mut rng = XorShift32(3);
        let px = gen_pixels(1, &mut rng);
        let block: [i32; 64] = px[0..64].try_into().unwrap();
        let coef = fdct_quant_reference(&block);
        let back = idct_dequant_reference(&coef);
        let max_err = block
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .max()
            .unwrap();
        assert!(max_err < 40, "max pixel error {max_err}");
    }

    #[test]
    fn dc_coefficient_sign_follows_brightness() {
        let bright = [200i32; 64];
        let dark = [40i32; 64];
        assert!(fdct_quant_reference(&bright)[0] > 0);
        assert!(fdct_quant_reference(&dark)[0] < 0);
    }

    #[test]
    fn rle_reference_structure() {
        let mut coef = [0i32; 64];
        coef[0] = 11; // DC
        coef[8] = -3; // zigzag position 2 (one zero at position 1 first)
        let bytes = rle_reference(&coef);
        assert_eq!(bytes.len(), RLE_BYTES_PER_BLOCK);
        assert_eq!(&bytes[0..4], &11u32.to_le_bytes());
        assert_eq!(&bytes[4..8], &1u32.to_le_bytes()); // run of 1 zero
        assert_eq!(&bytes[8..12], &(-3i32 as u32).to_le_bytes());
        assert_eq!(&bytes[12..20], &[0u8; 8]); // end marker
    }

    #[test]
    fn enc_kernel_matches_reference() {
        run_baseline(&build_enc(Scale::Tiny)).expect("jpeg_enc validates");
    }

    #[test]
    fn dec_kernel_matches_reference() {
        run_baseline(&build_dec(Scale::Tiny)).expect("jpeg_dec validates");
    }
}
