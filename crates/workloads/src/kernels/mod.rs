//! One module per MiBench-like kernel.

pub mod adpcm;
pub mod bitcount;
pub mod crc32;
pub mod dijkstra;
pub mod gsm;
pub mod jpeg;
pub mod patricia;
pub mod quicksort;
pub mod rijndael;
pub mod sha;
pub mod stringsearch;
pub mod susan;
