//! Susan (MiBench automotive): the three SUSAN image kernels —
//! brightness-weighted smoothing, corner response, edge response — over a
//! small grayscale image. Smoothing is dataflow-ish; corners/edges are
//! threshold-compare loops with no distinct hot kernel, exactly the
//! "many basic blocks" case of the paper's Figure 3a.

use crate::framework::{
    bytes_directive, must_assemble, BenchmarkSpec, BuiltBenchmark, Category, ExpectedRegion, Scale,
    XorShift32,
};

/// Brightness-similarity LUT: weight = 100 * exp(-(d/27)^2), integerized.
fn brightness_lut() -> [u8; 256] {
    let mut lut = [0u8; 256];
    for (d, e) in lut.iter_mut().enumerate() {
        let x = d as f64 / 27.0;
        *e = (100.0 * (-x * x).exp()).round() as u8;
    }
    lut
}

fn gen_image(n: usize, rng: &mut XorShift32) -> Vec<u8> {
    // Blobs + noise: enough structure for corners/edges to fire.
    let mut img = vec![0u8; n * n];
    for y in 0..n {
        for x in 0..n {
            let mut v = 60 + ((x * 5 + y * 3) % 90) as i32;
            // A bright square in the middle creates edges and corners.
            if (n / 4..3 * n / 4).contains(&x) && (n / 4..3 * n / 4).contains(&y) {
                v += 90;
            }
            v += rng.below(21) as i32 - 10;
            img[y * n + x] = v.clamp(0, 255) as u8;
        }
    }
    img
}

/// Reference smoothing: 3×3 brightness-weighted mean (center excluded),
/// borders copied through.
pub fn smoothing_reference(img: &[u8], n: usize) -> Vec<u8> {
    let lut = brightness_lut();
    let mut out = img.to_vec();
    for y in 1..n - 1 {
        for x in 1..n - 1 {
            let c = img[y * n + x] as i32;
            let mut num: i32 = 0;
            let mut den: i32 = 0;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let p = img[((y as i32 + dy) as usize) * n + (x as i32 + dx) as usize] as i32;
                    let w = lut[(p - c).unsigned_abs() as usize & 0xff] as i32;
                    num += w * p;
                    den += w;
                }
            }
            out[y * n + x] = if den > 0 { (num / den) as u8 } else { c as u8 };
        }
    }
    out
}

/// Reference corner response: USAN area over a 5×5 mask (center
/// excluded), response = max(0, g - count) with g = 14.
pub fn corners_reference(img: &[u8], n: usize) -> Vec<u8> {
    const T: i32 = 20;
    const G: i32 = 14;
    let mut out = vec![0u8; n * n];
    for y in 2..n - 2 {
        for x in 2..n - 2 {
            let c = img[y * n + x] as i32;
            let mut count = 0i32;
            for dy in -2i32..=2 {
                for dx in -2i32..=2 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let p = img[((y as i32 + dy) as usize) * n + (x as i32 + dx) as usize] as i32;
                    if (p - c).abs() < T {
                        count += 1;
                    }
                }
            }
            out[y * n + x] = if count < G { (G - count) as u8 } else { 0 };
        }
    }
    out
}

/// Reference edge response: USAN over a 3×3 mask, response =
/// max(0, g - count) with g = 6.
pub fn edges_reference(img: &[u8], n: usize) -> Vec<u8> {
    const T: i32 = 15;
    const G: i32 = 6;
    let mut out = vec![0u8; n * n];
    for y in 1..n - 1 {
        for x in 1..n - 1 {
            let c = img[y * n + x] as i32;
            let mut count = 0i32;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let p = img[((y as i32 + dy) as usize) * n + (x as i32 + dx) as usize] as i32;
                    if (p - c).abs() < T {
                        count += 1;
                    }
                }
            }
            out[y * n + x] = if count < G { (G - count) as u8 } else { 0 };
        }
    }
    out
}

/// One horizontal band of the USAN-count kernel: scans a `(2R+1)²` mask
/// for rows `y0..y1`, counting neighbours whose absolute difference from
/// the center is below `t`, then stores `max(0, g - count)`.
///
/// The image is processed in bands with per-band code, mirroring the way
/// the compiled SUSAN binary spreads its work over many distinct
/// routines — this is what makes corners/edges "no distinct kernel"
/// workloads in the paper's Figure 3a.
fn usan_band_asm(b: usize, n: usize, r: usize, t: i32, g: i32, y0: usize, y1: usize) -> String {
    format!(
        "
            li   $s2, {y0}           # y
        y_loop_{b}:
            li   $s3, {r}            # x
        x_loop_{b}:
            # center = img[y*n + x]
            li   $t0, {n}
            mul  $t1, $s2, $t0
            addu $t1, $t1, $s3
            addu $t2, $s0, $t1
            lbu  $s4, 0($t2)
            li   $s5, 0              # count
{dy_rows}
            # response = max(0, g - count)
            li   $t1, {g}
            subu $t1, $t1, $s5
            bgez $t1, resp_ok_{b}
            li   $t1, 0
        resp_ok_{b}:
            li   $t0, {n}
            mul  $t2, $s2, $t0
            addu $t2, $t2, $s3
            addu $t3, $s1, $t2
            sb   $t1, 0($t3)
            addiu $s3, $s3, 1
            slti $t4, $s3, {xmax}
            bnez $t4, x_loop_{b}
            addiu $s2, $s2, 1
            slti $t4, $s2, {ymax}
            bnez $t4, y_loop_{b}
        ",
        b = b,
        n = n,
        r = r,
        g = g,
        xmax = n - r,
        ymax = y1,
        dy_rows = dy_rows_asm(b, n, r, t),
    )
}

/// The mask rows, one region of code per `dy` — real SUSAN's per-pixel
/// work likewise spreads over many small basic blocks, which is what
/// keeps the hot configuration working set large.
fn dy_rows_asm(b: usize, n: usize, r: usize, t: i32) -> String {
    let mut out = String::new();
    for (dyi, dy) in (-(r as i32)..=r as i32).enumerate() {
        out.push_str(&format!(
            "
            li   $s6, {dy}
            li   $s7, -{r}
        dx_loop_{b}_{dyi}:
            or   $t3, $s6, $s7
            beqz $t3, dx_next_{b}_{dyi}    # skip center
            addu $t4, $s2, $s6
            li   $t0, {n}
            mul  $t4, $t4, $t0
            addu $t5, $s3, $s7
            addu $t4, $t4, $t5
            addu $t5, $s0, $t4
            lbu  $t6, 0($t5)
            subu $t7, $t6, $s4
            bgez $t7, abs_done_{b}_{dyi}
            subu $t7, $zero, $t7
        abs_done_{b}_{dyi}:
            slti $t8, $t7, {t}
            addu $s5, $s5, $t8
        dx_next_{b}_{dyi}:
            addiu $s7, $s7, 1
            li   $t9, {r}
            slt  $t0, $t9, $s7
            beqz $t0, dx_loop_{b}_{dyi}
            "
        ));
    }
    out
}

/// Full USAN program: per-band specialized code inside a pass loop.
fn usan_asm(n: usize, r: usize, t: i32, g: i32, bands: usize, passes: usize) -> String {
    let rows = n - 2 * r;
    let bands = bands.min(rows).max(1);
    let mut body = String::new();
    for b in 0..bands {
        let y0 = r + rows * b / bands;
        let y1 = r + rows * (b + 1) / bands;
        if y0 < y1 {
            body.push_str(&usan_band_asm(b, n, r, t, g, y0, y1));
        }
    }
    format!(
        "
        .text
        main:
            la   $s0, img
            la   $s1, outp
            li   $a2, {passes}
        pass_loop:
{body}
            addiu $a2, $a2, -1
            bnez $a2, pass_loop
            break 0
        "
    )
}

fn image_data(img: &[u8], n: usize, with_lut: bool) -> String {
    let lut = if with_lut {
        format!("lut:\n{}", bytes_directive(&brightness_lut()))
    } else {
        String::new()
    };
    format!(
        "
        .data
{lut}
        img:
{img}
        outp: .space {sz}
",
        img = bytes_directive(img),
        sz = n * n,
    )
}

fn build_smoothing(scale: Scale) -> BuiltBenchmark {
    let n = scale.pick(12, 24, 32);
    let mut rng = XorShift32(0x505a_0001);
    let img = gen_image(n, &mut rng);
    let expected = smoothing_reference(&img, n);

    // Smoothing: weighted 3×3 mean; note the division per pixel — like
    // real SUSAN, the normalization cannot map onto the array.
    let asm = format!(
        "
        .text
        main:
            la   $s0, img
            la   $s1, outp
            la   $a1, lut

            # copy borders through: copy whole image first
            li   $t0, {total}
            move $t1, $s0
            move $t2, $s1
        copy_loop:
            lbu  $t3, 0($t1)
            sb   $t3, 0($t2)
            addiu $t1, $t1, 1
            addiu $t2, $t2, 1
            addiu $t0, $t0, -1
            bnez $t0, copy_loop

            li   $s2, 1              # y
        y_loop:
            li   $s3, 1              # x
        x_loop:
            li   $t0, {n}
            mul  $t1, $s2, $t0
            addu $t1, $t1, $s3
            addu $t2, $s0, $t1
            lbu  $s4, 0($t2)         # center
            li   $s5, 0              # num
            li   $s6, 0              # den
            li   $s7, -1             # dy
        dy_loop:
            li   $a0, -1             # dx
        dx_loop:
            or   $t3, $s7, $a0
            beqz $t3, dx_next
            addu $t4, $s2, $s7
            li   $t0, {n}
            mul  $t4, $t4, $t0
            addu $t5, $s3, $a0
            addu $t4, $t4, $t5
            addu $t5, $s0, $t4
            lbu  $t6, 0($t5)         # p
            subu $t7, $t6, $s4
            bgez $t7, abs_done
            subu $t7, $zero, $t7
        abs_done:
            andi $t7, $t7, 0xff
            addu $t8, $a1, $t7
            lbu  $t8, 0($t8)         # w
            mul  $t9, $t8, $t6
            addu $s5, $s5, $t9       # num += w*p
            addu $s6, $s6, $t8       # den += w
        dx_next:
            addiu $a0, $a0, 1
            slti $t0, $a0, 2
            bnez $t0, dx_loop
            addiu $s7, $s7, 1
            slti $t0, $s7, 2
            bnez $t0, dy_loop
            beqz $s6, store_center
            div  $t1, $s5, $s6
            b    store
        store_center:
            move $t1, $s4
        store:
            li   $t0, {n}
            mul  $t2, $s2, $t0
            addu $t2, $t2, $s3
            addu $t3, $s1, $t2
            sb   $t1, 0($t3)
            addiu $s3, $s3, 1
            slti $t4, $s3, {max}
            bnez $t4, x_loop
            addiu $s2, $s2, 1
            slti $t4, $s2, {max}
            bnez $t4, y_loop
            break 0
        ",
        n = n,
        max = n - 1,
        total = n * n,
    );

    let src = format!("{}{}", image_data(&img, n, true), asm);
    BuiltBenchmark {
        name: "susan_smoothing",
        category: Category::DataFlow,
        program: must_assemble("susan_smoothing", &src),
        expected: vec![ExpectedRegion {
            label: "outp".into(),
            bytes: expected,
        }],
        max_steps: 400 * (n * n) as u64 + 50_000,
    }
}

fn build_corners(scale: Scale) -> BuiltBenchmark {
    let n = scale.pick(12, 24, 32);
    let mut rng = XorShift32(0x505a_0002);
    let img = gen_image(n, &mut rng);
    let expected = corners_reference(&img, n);
    let bands = scale.pick(2, 5, 8);
    let src = format!(
        "{}{}",
        image_data(&img, n, false),
        usan_asm(n, 2, 20, 14, bands, 2),
    );
    BuiltBenchmark {
        name: "susan_corners",
        category: Category::Mixed,
        program: must_assemble("susan_corners", &src),
        expected: vec![ExpectedRegion {
            label: "outp".into(),
            bytes: expected,
        }],
        max_steps: 1400 * (n * n) as u64 + 50_000,
    }
}

fn build_edges(scale: Scale) -> BuiltBenchmark {
    let n = scale.pick(12, 24, 32);
    let mut rng = XorShift32(0x505a_0003);
    let img = gen_image(n, &mut rng);
    let expected = edges_reference(&img, n);
    let bands = scale.pick(2, 5, 8);
    let src = format!(
        "{}{}",
        image_data(&img, n, false),
        usan_asm(n, 1, 15, 6, bands, 2),
    );
    BuiltBenchmark {
        name: "susan_edges",
        category: Category::Mixed,
        program: must_assemble("susan_edges", &src),
        expected: vec![ExpectedRegion {
            label: "outp".into(),
            bytes: expected,
        }],
        max_steps: 400 * (n * n) as u64 + 50_000,
    }
}

/// The Susan smoothing benchmark definition.
pub fn smoothing_spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "susan_smoothing",
        category: Category::DataFlow,
        build: build_smoothing,
    }
}

/// The Susan corners benchmark definition.
pub fn corners_spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "susan_corners",
        category: Category::Mixed,
        build: build_corners,
    }
}

/// The Susan edges benchmark definition.
pub fn edges_spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "susan_edges",
        category: Category::Mixed,
        build: build_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_baseline;

    #[test]
    fn corners_fire_inside_not_on_flat_regions() {
        let n = 16;
        let mut rng = XorShift32(9);
        let img = gen_image(n, &mut rng);
        let resp = corners_reference(&img, n);
        // Some corner response exists, and borders stay zero.
        assert!(resp.iter().any(|&r| r > 0));
        assert!(resp[..2 * n].iter().all(|&r| r == 0));
    }

    #[test]
    fn smoothing_reduces_noise_energy() {
        let n = 16;
        let mut rng = XorShift32(10);
        let img = gen_image(n, &mut rng);
        let sm = smoothing_reference(&img, n);
        let rough = |v: &[u8]| -> i64 {
            let mut acc = 0i64;
            for y in 1..n - 1 {
                for x in 1..n - 2 {
                    let d = v[y * n + x] as i64 - v[y * n + x + 1] as i64;
                    acc += d * d;
                }
            }
            acc
        };
        assert!(rough(&sm) < rough(&img));
    }

    #[test]
    fn smoothing_kernel_matches_reference() {
        run_baseline(&build_smoothing(Scale::Tiny)).expect("susan_smoothing validates");
    }

    #[test]
    fn corners_kernel_matches_reference() {
        run_baseline(&build_corners(Scale::Tiny)).expect("susan_corners validates");
    }

    #[test]
    fn edges_kernel_matches_reference() {
        run_baseline(&build_edges(Scale::Tiny)).expect("susan_edges validates");
    }
}
