//! Dijkstra (MiBench network): single-source shortest paths over an
//! adjacency matrix, O(V²) selection. Mixed loads, compares and
//! branches; moderate basic blocks.

use crate::framework::{
    must_assemble, words_directive, BenchmarkSpec, BuiltBenchmark, Category, ExpectedRegion, Scale,
    XorShift32,
};

/// "No edge" weight. Small enough that `dist + INF` never wraps.
pub const INF: u32 = 0x0fff_ffff;

/// Generates the random weight matrix (row-major, `v*v` entries).
fn gen_matrix(v: usize, rng: &mut XorShift32) -> Vec<u32> {
    let mut adj = vec![INF; v * v];
    for i in 0..v {
        for j in 0..v {
            if i == j {
                adj[i * v + j] = 0;
            } else if rng.below(10) < 4 {
                adj[i * v + j] = 1 + rng.below(99);
            }
        }
    }
    adj
}

/// Reference shortest-path distances from node 0, mirroring the kernel's
/// exact selection and relaxation order (including selecting unreachable
/// nodes with distance [`INF`]).
pub fn dijkstra_reference(adj: &[u32], v: usize) -> Vec<u32> {
    let mut dist = vec![INF; v];
    let mut visited = vec![false; v];
    dist[0] = 0;
    for _ in 0..v {
        let mut u = usize::MAX;
        let mut best = INF + 1;
        for i in 0..v {
            if !visited[i] && dist[i] < best {
                best = dist[i];
                u = i;
            }
        }
        if u == usize::MAX {
            break;
        }
        visited[u] = true;
        for j in 0..v {
            if !visited[j] {
                let cand = best + adj[u * v + j];
                if cand < dist[j] {
                    dist[j] = cand;
                }
            }
        }
    }
    dist
}

fn build(scale: Scale) -> BuiltBenchmark {
    let v = scale.pick(12, 24, 40);
    let mut rng = XorShift32(0xd17b_57a1);
    let adj = gen_matrix(v, &mut rng);
    let expected: Vec<u8> = dijkstra_reference(&adj, v)
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .collect();

    let src = format!(
        "
        .data
        adj:
{adj}
        dist: .space {dist_bytes}
        visited: .space {v}
        .text
        main:
            la   $s0, adj
            la   $s1, dist
            la   $s2, visited
            li   $s3, {v}

            # dist[i] = INF, visited[i] = 0
            li   $t0, 0
        init:
            sll  $t1, $t0, 2
            addu $t1, $s1, $t1
            li   $t2, {inf}
            sw   $t2, 0($t1)
            addu $t3, $s2, $t0
            sb   $zero, 0($t3)
            addiu $t0, $t0, 1
            slt  $t4, $t0, $s3
            bnez $t4, init
            sw   $zero, 0($s1)   # dist[0] = 0

            li   $s4, 0          # outer iteration
        outer:
            # select unvisited u with minimum dist
            li   $s5, -1
            li   $s6, {inf_plus_1}
            li   $t0, 0
        find:
            addu $t1, $s2, $t0
            lbu  $t2, 0($t1)
            bnez $t2, find_next
            sll  $t3, $t0, 2
            addu $t3, $s1, $t3
            lw   $t4, 0($t3)
            sltu $t5, $t4, $s6
            beqz $t5, find_next
            move $s6, $t4
            move $s5, $t0
        find_next:
            addiu $t0, $t0, 1
            slt  $t6, $t0, $s3
            bnez $t6, find
            bltz $s5, done

            addu $t1, $s2, $s5   # visited[u] = 1
            li   $t2, 1
            sb   $t2, 0($t1)

            mul  $t3, $s5, $s3   # row base = adj + 4*V*u
            sll  $t3, $t3, 2
            addu $t3, $s0, $t3
            li   $t0, 0
        relax:
            addu $t4, $s2, $t0
            lbu  $t5, 0($t4)
            bnez $t5, relax_next
            sll  $t6, $t0, 2
            addu $t7, $t3, $t6
            lw   $t8, 0($t7)     # w(u, j)
            addu $v0, $s6, $t8   # cand = dist[u] + w
            addu $v1, $s1, $t6
            lw   $a0, 0($v1)
            sltu $a1, $v0, $a0
            beqz $a1, relax_next
            sw   $v0, 0($v1)
        relax_next:
            addiu $t0, $t0, 1
            slt  $a2, $t0, $s3
            bnez $a2, relax

            addiu $s4, $s4, 1
            slt  $a3, $s4, $s3
            bnez $a3, outer
        done:
            break 0
        ",
        adj = words_directive(&adj),
        dist_bytes = 4 * v,
        v = v,
        inf = INF,
        inf_plus_1 = INF + 1,
    );

    BuiltBenchmark {
        name: "dijkstra",
        category: Category::ControlFlow,
        program: must_assemble("dijkstra", &src),
        expected: vec![ExpectedRegion {
            label: "dist".into(),
            bytes: expected,
        }],
        max_steps: 200 * (v as u64) * (v as u64) + 100_000,
    }
}

/// The dijkstra benchmark definition.
pub fn spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "dijkstra",
        category: Category::ControlFlow,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_baseline;

    #[test]
    fn reference_simple_graph() {
        // 0 -> 1 (2), 1 -> 2 (3), 0 -> 2 (10): best 0->2 is 5.
        let v = 3;
        let mut adj = vec![INF; 9];
        adj[0] = 0;
        adj[4] = 0;
        adj[8] = 0;
        adj[1] = 2;
        adj[5] = 3;
        adj[2] = 10;
        assert_eq!(dijkstra_reference(&adj, v), vec![0, 2, 5]);
    }

    #[test]
    fn kernel_matches_reference() {
        run_baseline(&build(Scale::Tiny)).expect("dijkstra validates");
    }
}
