//! Patricia (MiBench network): digital search trie over 32-bit keys
//! (IPv4-address-like), bump-allocated nodes, insert-then-lookup —
//! pointer chasing with a branch every couple of instructions.
//!
//! The kernel is the uncompressed digital trie at the heart of Patricia
//! (path compression elided); its dynamic behaviour — bit tests, two-way
//! branches, dependent loads — is the same.

use crate::framework::{
    must_assemble, words_directive, BenchmarkSpec, BuiltBenchmark, Category, ExpectedRegion, Scale,
    XorShift32,
};
use std::collections::HashSet;

/// Reference result: `(hits, wrapping checksum of matched keys)`.
pub fn lookup_reference(inserted: &[u32], queries: &[u32]) -> (u32, u32) {
    let set: HashSet<u32> = inserted.iter().copied().collect();
    let mut hits = 0u32;
    let mut sum = 0u32;
    for &q in queries {
        if set.contains(&q) {
            hits += 1;
            sum = sum.wrapping_add(q);
        }
    }
    (hits, sum)
}

fn build(scale: Scale) -> BuiltBenchmark {
    let k = scale.pick(64, 256, 768);
    let mut rng = XorShift32(0x9a72_1c1a);
    // Clustered keys (shared high bits) make deeper tries, like real
    // routing tables.
    let keys: Vec<u32> = (0..k)
        .map(|_| {
            let prefix = (rng.below(8)) << 29;
            prefix | rng.below(1 << 16)
        })
        .collect();
    let queries: Vec<u32> = (0..2 * k)
        .map(|i| {
            if i % 2 == 0 {
                keys[rng.below(k as u32) as usize]
            } else {
                (rng.below(8) << 29) | rng.below(1 << 16)
            }
        })
        .collect();
    let (hits, sum) = lookup_reference(&keys, &queries);
    let mut expected = hits.to_le_bytes().to_vec();
    expected.extend_from_slice(&sum.to_le_bytes());

    // Node layout: [key, left, right] — 12 bytes, bump-allocated from
    // `pool` (pre-zeroed). A null pointer is 0.
    let src = format!(
        "
        .data
        keys:
{keys}
        queries:
{queries}
        out: .word 0, 0
        pool: .space {pool_bytes}
        .text
        main:
            la   $s0, keys
            li   $s1, {k}
            la   $s2, pool
            move $s3, $s2            # bump pointer
            li   $s4, 0              # root (null)

        # ---- insert all keys ----
        ins_loop:
            beqz $s1, inserts_done
            lw   $a0, 0($s0)         # key
            bnez $s4, ins_walk
            # empty trie: root = alloc(key)
            sw   $a0, 0($s3)
            move $s4, $s3
            addiu $s3, $s3, 12
            b    ins_next
        ins_walk:
            move $t0, $s4            # cur
            li   $t1, 0              # depth
        ins_step:
            lw   $t2, 0($t0)         # cur.key
            beq  $t2, $a0, ins_next  # duplicate
            srlv $t3, $a0, $t1       # bit = (key >> depth) & 1
            andi $t3, $t3, 1
            sll  $t3, $t3, 2
            addiu $t3, $t3, 4        # child offset: 4 (left) or 8 (right)
            addu $t4, $t0, $t3
            lw   $t5, 0($t4)
            beqz $t5, ins_attach
            move $t0, $t5
            addiu $t1, $t1, 1
            b    ins_step
        ins_attach:
            sw   $a0, 0($s3)         # node.key = key (children zeroed)
            sw   $s3, 0($t4)         # parent child ptr = node
            addiu $s3, $s3, 12
        ins_next:
            addiu $s0, $s0, 4
            addiu $s1, $s1, -1
            b    ins_loop
        inserts_done:

        # ---- lookups ----
            la   $s0, queries
            li   $s1, {q}
            li   $s5, 0              # hits
            li   $s6, 0              # checksum
        look_loop:
            beqz $s1, looks_done
            lw   $a0, 0($s0)
            move $t0, $s4
            li   $t1, 0
        look_step:
            beqz $t0, look_miss
            lw   $t2, 0($t0)
            beq  $t2, $a0, look_hit
            srlv $t3, $a0, $t1
            andi $t3, $t3, 1
            sll  $t3, $t3, 2
            addiu $t3, $t3, 4
            addu $t4, $t0, $t3
            lw   $t0, 0($t4)
            addiu $t1, $t1, 1
            b    look_step
        look_hit:
            addiu $s5, $s5, 1
            addu $s6, $s6, $a0
        look_miss:
            addiu $s0, $s0, 4
            addiu $s1, $s1, -1
            b    look_loop
        looks_done:
            la   $t0, out
            sw   $s5, 0($t0)
            sw   $s6, 4($t0)
            break 0
        ",
        keys = words_directive(&keys),
        queries = words_directive(&queries),
        pool_bytes = 12 * (k + 1),
        k = k,
        q = 2 * k,
    );

    BuiltBenchmark {
        name: "patricia",
        category: Category::ControlFlow,
        program: must_assemble("patricia", &src),
        expected: vec![ExpectedRegion {
            label: "out".into(),
            bytes: expected,
        }],
        max_steps: 3000 * k as u64 + 100_000,
    }
}

/// The patricia benchmark definition.
pub fn spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "patricia",
        category: Category::ControlFlow,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_baseline;

    #[test]
    fn reference_counts_hits() {
        let inserted = [1, 2, 3];
        let queries = [1, 4, 3, 3];
        assert_eq!(lookup_reference(&inserted, &queries), (3, 1 + 3 + 3));
    }

    #[test]
    fn kernel_matches_reference() {
        run_baseline(&build(Scale::Tiny)).expect("patricia validates");
    }
}
