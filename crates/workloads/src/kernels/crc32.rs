//! CRC32 (MiBench telecomm): table-driven CRC-32 over a byte buffer.
//!
//! The hottest code is a single tiny basic block — the paper's Figure 3a
//! shows just 3 basic blocks covering ~100% of CRC32's execution, making
//! it the archetypal "distinct kernel" workload.

use crate::framework::{
    bytes_directive, must_assemble, words_directive, BenchmarkSpec, BuiltBenchmark, Category,
    ExpectedRegion, Scale, XorShift32,
};

/// The IEEE 802.3 reflected CRC-32 table.
fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    for (i, entry) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *entry = c;
    }
    table
}

/// Reference CRC-32 implementation.
pub fn crc32_reference(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

fn build(scale: Scale) -> BuiltBenchmark {
    let len = scale.pick(256, 2048, 8192);
    let mut rng = XorShift32(0xc0fe_1234);
    let data: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
    let expected = crc32_reference(&data);

    let src = format!(
        "
        .data
        table:
{table}
        buf:
{buf}
        .align 2
        out: .word 0
        .text
        main:
            la   $s0, table
            la   $s1, buf
            li   $s2, {len}
            li   $v0, -1
        loop:
            lbu  $t0, 0($s1)
            xor  $t1, $v0, $t0
            andi $t1, $t1, 0xff
            sll  $t1, $t1, 2
            addu $t2, $s0, $t1
            lw   $t3, 0($t2)
            srl  $v0, $v0, 8
            xor  $v0, $v0, $t3
            addiu $s1, $s1, 1
            addiu $s2, $s2, -1
            bnez $s2, loop
            nor  $v0, $v0, $zero
            la   $t4, out
            sw   $v0, 0($t4)
            break 0
        ",
        table = words_directive(&crc_table()),
        buf = bytes_directive(&data),
        len = len,
    );

    BuiltBenchmark {
        name: "crc32",
        category: Category::ControlFlow,
        program: must_assemble("crc32", &src),
        expected: vec![ExpectedRegion {
            label: "out".into(),
            bytes: expected.to_le_bytes().to_vec(),
        }],
        max_steps: 40 * len as u64 + 10_000,
    }
}

/// The CRC32 benchmark definition.
pub fn spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "crc32",
        category: Category::ControlFlow,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_baseline;

    #[test]
    fn reference_matches_known_vector() {
        // CRC32("123456789") = 0xCBF43926 (classic check value).
        assert_eq!(crc32_reference(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn kernel_matches_reference() {
        let built = build(Scale::Tiny);
        run_baseline(&built).expect("crc32 kernel validates");
    }
}
