//! Rijndael (MiBench security): AES-128 ECB encryption and decryption.
//!
//! The most dataflow-oriented workloads in the paper — branchless xtime
//! chains and table lookups give huge basic blocks, so Rijndael profits
//! most from large array configurations (Table 2's top rows).

use crate::framework::{
    bytes_directive, must_assemble, BenchmarkSpec, BuiltBenchmark, Category, ExpectedRegion, Scale,
    XorShift32,
};

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (if x & 0x80 != 0 { 0x1b } else { 0 })
}

fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// The AES S-box, computed from the GF(2^8) inverse + affine transform.
fn sbox() -> [u8; 256] {
    // Build the inverse table by brute force (fine at test scale).
    let mut inv = [0u8; 256];
    for a in 1u16..256 {
        for b in 1u16..256 {
            if gf_mul(a as u8, b as u8) == 1 {
                inv[a as usize] = b as u8;
                break;
            }
        }
    }
    let mut s = [0u8; 256];
    for (i, e) in s.iter_mut().enumerate() {
        let x = inv[i];
        *e = x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63;
    }
    s
}

fn inv_sbox(sb: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &v) in sb.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

/// ShiftRows permutation on the flat (input-order) state:
/// `new[i] = old[map[i]]`.
fn shift_map() -> [u8; 16] {
    let mut m = [0u8; 16];
    for c in 0..4u8 {
        for r in 0..4u8 {
            m[(4 * c + r) as usize] = 4 * ((c + r) % 4) + r;
        }
    }
    m
}

fn inv_shift_map() -> [u8; 16] {
    let mut m = [0u8; 16];
    for c in 0..4u8 {
        for r in 0..4u8 {
            m[(4 * c + r) as usize] = 4 * ((c + 4 - r) % 4) + r;
        }
    }
    m
}

/// AES-128 key expansion to 176 round-key bytes (flat, ARK order).
fn expand_key(key: &[u8; 16]) -> [u8; 176] {
    const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
    let sb = sbox();
    let mut w = [[0u8; 4]; 44];
    for i in 0..4 {
        w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
    }
    for i in 4..44 {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = sb[*b as usize];
            }
            t[0] ^= RCON[i / 4 - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ t[j];
        }
    }
    let mut flat = [0u8; 176];
    for (i, word) in w.iter().enumerate() {
        flat[4 * i..4 * i + 4].copy_from_slice(word);
    }
    flat
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let a: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("4 bytes");
        state[4 * c] = xtime(a[0]) ^ xtime(a[1]) ^ a[1] ^ a[2] ^ a[3];
        state[4 * c + 1] = a[0] ^ xtime(a[1]) ^ xtime(a[2]) ^ a[2] ^ a[3];
        state[4 * c + 2] = a[0] ^ a[1] ^ xtime(a[2]) ^ xtime(a[3]) ^ a[3];
        state[4 * c + 3] = xtime(a[0]) ^ a[0] ^ a[1] ^ a[2] ^ xtime(a[3]);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let a: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("4 bytes");
        state[4 * c] = gf_mul(a[0], 14) ^ gf_mul(a[1], 11) ^ gf_mul(a[2], 13) ^ gf_mul(a[3], 9);
        state[4 * c + 1] = gf_mul(a[0], 9) ^ gf_mul(a[1], 14) ^ gf_mul(a[2], 11) ^ gf_mul(a[3], 13);
        state[4 * c + 2] = gf_mul(a[0], 13) ^ gf_mul(a[1], 9) ^ gf_mul(a[2], 14) ^ gf_mul(a[3], 11);
        state[4 * c + 3] = gf_mul(a[0], 11) ^ gf_mul(a[1], 13) ^ gf_mul(a[2], 9) ^ gf_mul(a[3], 14);
    }
}

/// Reference AES-128 single-block encryption.
pub fn aes_encrypt_block(block: &[u8; 16], rk: &[u8; 176]) -> [u8; 16] {
    let sb = sbox();
    let map = shift_map();
    let mut s = *block;
    add_round_key(&mut s, &rk[0..16]);
    for round in 1..=9 {
        let mut t = [0u8; 16];
        for i in 0..16 {
            t[i] = sb[s[map[i] as usize] as usize];
        }
        s = t;
        mix_columns(&mut s);
        add_round_key(&mut s, &rk[16 * round..16 * round + 16]);
    }
    let mut t = [0u8; 16];
    for i in 0..16 {
        t[i] = sb[s[map[i] as usize] as usize];
    }
    s = t;
    add_round_key(&mut s, &rk[160..176]);
    s
}

/// Reference AES-128 single-block decryption.
pub fn aes_decrypt_block(block: &[u8; 16], rk: &[u8; 176]) -> [u8; 16] {
    let isb = inv_sbox(&sbox());
    let imap = inv_shift_map();
    let mut s = *block;
    add_round_key(&mut s, &rk[160..176]);
    for round in (1..=9).rev() {
        let mut t = [0u8; 16];
        for i in 0..16 {
            t[i] = isb[s[imap[i] as usize] as usize];
        }
        s = t;
        add_round_key(&mut s, &rk[16 * round..16 * round + 16]);
        inv_mix_columns(&mut s);
    }
    let mut t = [0u8; 16];
    for i in 0..16 {
        t[i] = isb[s[imap[i] as usize] as usize];
    }
    s = t;
    add_round_key(&mut s, &rk[0..16]);
    s
}

/// Branchless xtime in MIPS assembly: `dst = xtime(srcreg)` (clobbers
/// `$v0`/`$v1`).
fn xt(dst: &str, src: &str) -> String {
    format!(
        "sll  {dst}, {src}, 1
            srl  $v0, {src}, 7
            subu $v1, $zero, $v0
            andi $v1, $v1, 0x1b
            xor  {dst}, {dst}, $v1
            andi {dst}, {dst}, 0xff
            "
    )
}

/// Unrolled AddRoundKey: `state[i] ^= key[i]` for 16 bytes, straight-line.
fn ark_unrolled(state: &str, key: &str) -> String {
    (0..16)
        .map(|i| {
            format!(
                "            lbu  $t1, {i}({state})
            lbu  $t9, {i}({key})
            xor  $t1, $t1, $t9
            sb   $t1, {i}({state})\n"
            )
        })
        .collect()
}

/// Unrolled SubBytes+ShiftRows: `tmp[i] = sbox[state[map[i]]]` with the
/// permutation baked into the offsets. `$t2` = sbox base, `$t3` = tmp
/// base.
fn subshift_unrolled(map: &[u8; 16]) -> String {
    (0..16)
        .map(|i| {
            format!(
                "            lbu  $t5, {src}($s0)
            addu $t5, $t2, $t5
            lbu  $t5, 0($t5)
            sb   $t5, {i}($t3)\n",
                src = map[i],
            )
        })
        .collect()
}

/// Unrolled final AddRoundKey from tmp back into the state.
fn final_ark_unrolled() -> String {
    (0..16)
        .map(|i| {
            format!(
                "            lbu  $t1, {i}($t3)
            lbu  $t9, {i}($s2)
            xor  $t1, $t1, $t9
            sb   $t1, {i}($s0)\n"
            )
        })
        .collect()
}

/// The shared encrypt kernel text. `blocks` 16-byte blocks at `buf` are
/// encrypted in place. SubBytes/ShiftRows/AddRoundKey are fully unrolled
/// (as real AES implementations are), producing the huge basic blocks
/// that make Rijndael the paper's prime beneficiary of large arrays.
fn enc_asm(blocks: usize) -> String {
    format!(
        "
        .text
        main:
            la   $s0, buf
            li   $s1, {blocks}
        block_loop:
            # --- AddRoundKey(0): state ^= rk[0..16], in place ---
            la   $s2, rk
{ark0}
            addiu $s2, $s2, 16

            li   $s3, 9              # middle rounds
        round_loop:
            # --- tmp[i] = sbox[state[shiftmap[i]]], unrolled ---
            la   $t2, sboxt
            la   $t3, tmp
{subshift}

            # --- MixColumns: state = mix(tmp), column at a time ---
            la   $t0, tmp
            li   $t1, 4              # column counter
            move $t2, $s0            # output cursor
        mixcol:
            lbu  $a0, 0($t0)
            lbu  $a1, 1($t0)
            lbu  $a2, 2($t0)
            lbu  $a3, 3($t0)
            {xt_a0}
            {xt_a1}
            {xt_a2}
            {xt_a3}
            # out0 = xt0 ^ xt1 ^ a1 ^ a2 ^ a3
            xor  $t9, $t3, $t4
            xor  $t9, $t9, $a1
            xor  $t9, $t9, $a2
            xor  $t9, $t9, $a3
            sb   $t9, 0($t2)
            # out1 = a0 ^ xt1 ^ xt2 ^ a2 ^ a3
            xor  $t9, $a0, $t4
            xor  $t9, $t9, $t5
            xor  $t9, $t9, $a2
            xor  $t9, $t9, $a3
            sb   $t9, 1($t2)
            # out2 = a0 ^ a1 ^ xt2 ^ xt3 ^ a3
            xor  $t9, $a0, $a1
            xor  $t9, $t9, $t5
            xor  $t9, $t9, $t6
            xor  $t9, $t9, $a3
            sb   $t9, 2($t2)
            # out3 = xt0 ^ a0 ^ a1 ^ a2 ^ xt3
            xor  $t9, $t3, $a0
            xor  $t9, $t9, $a1
            xor  $t9, $t9, $a2
            xor  $t9, $t9, $t6
            sb   $t9, 3($t2)
            addiu $t0, $t0, 4
            addiu $t2, $t2, 4
            addiu $t1, $t1, -1
            bnez $t1, mixcol

            # --- AddRoundKey(r): rk cursor $s2 continues, unrolled ---
{arkr}
            addiu $s2, $s2, 16

            addiu $s3, $s3, -1
            bnez $s3, round_loop

            # --- final round: subshift + ARK(10), unrolled ---
            la   $t2, sboxt
            la   $t3, tmp
{finshift}
{finark}
            addiu $s0, $s0, 16
            addiu $s1, $s1, -1
            bnez $s1, block_loop
            break 0
        ",
        blocks = blocks,
        ark0 = ark_unrolled("$s0", "$s2"),
        subshift = subshift_unrolled(&shift_map()),
        arkr = ark_unrolled("$s0", "$s2"),
        finshift = subshift_unrolled(&shift_map()),
        finark = final_ark_unrolled(),
        xt_a0 = xt("$t3", "$a0"),
        xt_a1 = xt("$t4", "$a1"),
        xt_a2 = xt("$t5", "$a2"),
        xt_a3 = xt("$t6", "$a3"),
    )
}

/// The decrypt kernel: InvShiftRows+InvSubBytes, ARK, InvMixColumns.
fn dec_asm(blocks: usize) -> String {
    // mul9/11/13/14 of $aN into $tM via x2/x4/x8 chain; clobbers $v0/$v1,
    // $t7, $t8, $t9 as scratch within each byte step.
    fn muls(src: &str, x2: &str, x4: &str, x8: &str) -> String {
        format!(
            "{xt2}{xt4}{xt8}",
            xt2 = xt(x2, src),
            xt4 = xt(x4, x2),
            xt8 = xt(x8, x4),
        )
    }
    format!(
        "
        .text
        main:
            la   $s0, buf
            li   $s1, {blocks}
        block_loop:
            # --- ARK(10): rk bytes 160..176, unrolled ---
            la   $s2, rk+160
{ark10}

            li   $s3, 9              # rounds 9..1
            la   $s2, rk+144         # rk cursor walks backwards by 16
        round_loop:
            # --- tmp[i] = invsbox[state[invshiftmap[i]]], unrolled ---
            la   $t2, invsboxt
            la   $t3, tmp
{subshift}

            # --- tmp ^= rk[16r..16r+16], unrolled ---
{arkr}
            addiu $s2, $s2, -16

            # --- state = InvMixColumns(tmp) ---
            la   $t0, tmp
            li   $t1, 4
            move $t2, $s0
        mixcol:
            # Column bytes a0..a3; per byte compute x2/x4/x8 and combine:
            # 9=x8^x, 11=x8^x2^x, 13=x8^x4^x, 14=x8^x4^x2.
            lbu  $a0, 0($t0)
            {m0}
            xor  $s4, $t5, $t3       # 14(a0) = x8 ^ x2 ^ x4
            xor  $s4, $s4, $t4
            xor  $s5, $t5, $a0       # 9(a0) = x8 ^ a0
            xor  $s6, $s5, $t4       # 13(a0) = 9 ^ x4
            xor  $s7, $s5, $t3       # 11(a0) = 9 ^ x2
            lbu  $a1, 1($t0)
            {m1}
            # out0 += 11(a1), out1 += 14(a1), out2 += 9(a1), out3 += 13(a1)
            xor  $t9, $t5, $a1       # 9(a1)
            xor  $a2, $t9, $t3       # 11(a1)
            xor  $a3, $t9, $t4       # 13(a1)
            xor  $t8, $t5, $t3       # 14(a1)
            xor  $t8, $t8, $t4
            xor  $s4, $s4, $a2
            xor  $s5, $s5, $t8
            xor  $s6, $s6, $t9
            xor  $s7, $s7, $a3
            lbu  $a1, 2($t0)
            {m2}
            xor  $t9, $t5, $a1       # 9(a2)
            xor  $a2, $t9, $t3       # 11
            xor  $a3, $t9, $t4       # 13
            xor  $t8, $t5, $t3
            xor  $t8, $t8, $t4       # 14
            xor  $s4, $s4, $a3       # out0 += 13(a2)
            xor  $s5, $s5, $a2       # out1 += 11(a2)
            xor  $s6, $s6, $t8       # out2 += 14(a2)
            xor  $s7, $s7, $t9       # out3 += 9(a2)
            lbu  $a1, 3($t0)
            {m3}
            xor  $t9, $t5, $a1       # 9(a3)
            xor  $a2, $t9, $t3       # 11
            xor  $a3, $t9, $t4       # 13
            xor  $t8, $t5, $t3
            xor  $t8, $t8, $t4       # 14
            xor  $s4, $s4, $t9       # out0 += 9(a3)
            xor  $s5, $s5, $a3       # out1 += 13(a3)
            xor  $s6, $s6, $a2       # out2 += 11(a3)
            xor  $s7, $s7, $t8       # out3 += 14(a3)
            sb   $s4, 0($t2)
            sb   $s5, 1($t2)
            sb   $s6, 2($t2)
            sb   $s7, 3($t2)
            addiu $t0, $t0, 4
            addiu $t2, $t2, 4
            addiu $t1, $t1, -1
            bnez $t1, mixcol

            addiu $s3, $s3, -1
            bnez $s3, round_loop

            # --- final: invsubshift + ARK(0), unrolled ---
            la   $t2, invsboxt
            la   $t3, tmp
{finshift}
            la   $s2, rk
{finark}
            addiu $s0, $s0, 16
            addiu $s1, $s1, -1
            bnez $s1, block_loop
            break 0
        ",
        blocks = blocks,
        ark10 = ark_unrolled("$s0", "$s2"),
        subshift = subshift_unrolled(&inv_shift_map()),
        arkr = ark_unrolled("$t3", "$s2"),
        finshift = subshift_unrolled(&inv_shift_map()),
        finark = final_ark_unrolled(),
        m0 = muls("$a0", "$t3", "$t4", "$t5"),
        m1 = muls("$a1", "$t3", "$t4", "$t5"),
        m2 = muls("$a1", "$t3", "$t4", "$t5"),
        m3 = muls("$a1", "$t3", "$t4", "$t5"),
    )
}

const KEY: [u8; 16] = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];

fn data_section(buf: &[u8]) -> String {
    let sb = sbox();
    format!(
        "
        .data
        sboxt:
{sbox}
        invsboxt:
{invsbox}
        shiftmap:
{smap}
        invshiftmap:
{ismap}
        rk:
{rk}
        tmp: .space 16
        buf:
{buf}
",
        sbox = bytes_directive(&sb),
        invsbox = bytes_directive(&inv_sbox(&sb)),
        smap = bytes_directive(&shift_map()),
        ismap = bytes_directive(&inv_shift_map()),
        rk = bytes_directive(&expand_key(&KEY)),
        buf = bytes_directive(buf),
    )
}

fn build_enc(scale: Scale) -> BuiltBenchmark {
    let blocks = scale.pick(2, 8, 32);
    let mut rng = XorShift32(ae51_enc_seed());
    let plain: Vec<u8> = (0..blocks * 16).map(|_| rng.next_u32() as u8).collect();
    let rk = expand_key(&KEY);
    let expected: Vec<u8> = plain
        .chunks(16)
        .flat_map(|b| aes_encrypt_block(b.try_into().expect("16-byte block"), &rk))
        .collect();

    let src = format!("{}{}", data_section(&plain), enc_asm(blocks));
    BuiltBenchmark {
        name: "rijndael_enc",
        category: Category::DataFlow,
        program: must_assemble("rijndael_enc", &src),
        expected: vec![ExpectedRegion {
            label: "buf".into(),
            bytes: expected,
        }],
        max_steps: 20_000 * blocks as u64 + 10_000,
    }
}

fn build_dec(scale: Scale) -> BuiltBenchmark {
    let blocks = scale.pick(2, 8, 32);
    let mut rng = XorShift32(ae51_dec_seed());
    let plain: Vec<u8> = (0..blocks * 16).map(|_| rng.next_u32() as u8).collect();
    let rk = expand_key(&KEY);
    let cipher: Vec<u8> = plain
        .chunks(16)
        .flat_map(|b| aes_encrypt_block(b.try_into().expect("16-byte block"), &rk))
        .collect();

    let src = format!("{}{}", data_section(&cipher), dec_asm(blocks));
    BuiltBenchmark {
        name: "rijndael_dec",
        category: Category::DataFlow,
        program: must_assemble("rijndael_dec", &src),
        expected: vec![ExpectedRegion {
            label: "buf".into(),
            bytes: plain,
        }],
        max_steps: 30_000 * blocks as u64 + 10_000,
    }
}

fn ae51_enc_seed() -> u32 {
    0xae51_0e0c
}
fn ae51_dec_seed() -> u32 {
    0xae51_0d0d
}

/// The Rijndael encrypt benchmark definition.
pub fn enc_spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "rijndael_enc",
        category: Category::DataFlow,
        build: build_enc,
    }
}

/// The Rijndael decrypt benchmark definition.
pub fn dec_spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "rijndael_dec",
        category: Category::DataFlow,
        build: build_dec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_baseline;

    #[test]
    fn fips197_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let ct: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let rk = expand_key(&key);
        assert_eq!(aes_encrypt_block(&pt, &rk), ct);
        assert_eq!(aes_decrypt_block(&ct, &rk), pt);
    }

    #[test]
    fn enc_kernel_matches_reference() {
        run_baseline(&build_enc(Scale::Tiny)).expect("rijndael_enc validates");
    }

    #[test]
    fn dec_kernel_matches_reference() {
        run_baseline(&build_dec(Scale::Tiny)).expect("rijndael_dec validates");
    }
}
