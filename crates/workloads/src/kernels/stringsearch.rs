//! Stringsearch (MiBench office): Boyer–Moore–Horspool search of many
//! 8-byte patterns over a segmented text buffer.
//!
//! Mirroring the MiBench harness — which calls the search routine for
//! every (string, pattern) pair — the kernel scans the text segment by
//! segment, running every pattern's *specialized* search code on each
//! segment before moving on. Visits to any one code region are short and
//! widely separated by other regions, so the working set of array
//! configurations far exceeds a small reconfiguration cache: Table 2
//! shows stringsearch among the most slot-sensitive benchmarks.

use crate::framework::{
    bytes_directive, must_assemble, BenchmarkSpec, BuiltBenchmark, Category, ExpectedRegion, Scale,
    XorShift32,
};

const M: usize = 8;
/// Segment length: short enough that one visit is only a handful of
/// Horspool iterations.
const SEG: usize = 64;

/// Reference mirroring the kernel's segmented scan: the first match that
/// lies entirely inside a segment, in segment order; -1 if none.
pub fn search_reference(text: &[u8], patterns: &[[u8; M]]) -> Vec<i32> {
    let segs = text.len() / SEG;
    patterns
        .iter()
        .map(|p| {
            for s in 0..segs {
                let seg = &text[s * SEG..(s + 1) * SEG];
                if let Some(pos) = seg.windows(M).position(|w| w == p) {
                    return (s * SEG + pos) as i32;
                }
            }
            -1
        })
        .collect()
}

/// Horspool skip table for one pattern.
fn skip_table(p: &[u8; M]) -> [u8; 256] {
    let mut t = [M as u8; 256];
    for (i, &b) in p.iter().take(M - 1).enumerate() {
        t[b as usize] = (M - 1 - i) as u8;
    }
    t
}

/// Specialized per-pattern search over the current segment
/// (`$s0` = segment base, `$a1` = segment start offset in the text).
fn pattern_code(p: usize) -> String {
    format!(
        "
            la   $t8, outp+{out_off}
            lw   $t9, 0($t8)
            bgez $t9, done_{p}       # already found in an earlier segment
            la   $a0, pats+{pat_off}
            la   $a3, skips+{skip_off}
            li   $s6, 0              # pos within segment
        search_{p}:
            li   $t0, {last}
            slt  $t1, $t0, $s6
            bnez $t1, done_{p}
            li   $t2, 0
        cmp_{p}:
            addu $t3, $s6, $t2
            addu $t3, $s0, $t3
            lbu  $t4, 0($t3)
            addu $t5, $a0, $t2
            lbu  $t6, 0($t5)
            bne  $t4, $t6, fail_{p}
            addiu $t2, $t2, 1
            slti $t7, $t2, {m}
            bnez $t7, cmp_{p}
            addu $t9, $a1, $s6       # global match position
            sw   $t9, 0($t8)
            b    done_{p}
        fail_{p}:
            addiu $t3, $s6, {m1}
            addu $t3, $s0, $t3
            lbu  $t4, 0($t3)
            addu $t5, $a3, $t4
            lbu  $t6, 0($t5)
            addu $s6, $s6, $t6
            b    search_{p}
        done_{p}:
        ",
        p = p,
        pat_off = M * p,
        skip_off = 256 * p,
        out_off = 4 * p,
        last = SEG - M,
        m = M,
        m1 = M - 1,
    )
}

fn build(scale: Scale) -> BuiltBenchmark {
    let segs = scale.pick(4, 12, 24);
    let k = scale.pick(4, 12, 24);
    let n = segs * SEG;
    let mut rng = XorShift32(0x5ea2_c41f);
    let text: Vec<u8> = (0..n).map(|_| b'a' + (rng.below(26)) as u8).collect();
    let mut patterns: Vec<[u8; M]> = Vec::with_capacity(k);
    for i in 0..k {
        if i % 3 == 2 {
            // Every third pattern is random (likely absent).
            let mut p = [0u8; M];
            for b in &mut p {
                *b = b'a' + rng.below(26) as u8;
            }
            patterns.push(p);
        } else {
            // Sampled from inside a segment (guaranteed findable).
            let seg = rng.below(segs as u32) as usize;
            let off = rng.below((SEG - M) as u32) as usize;
            let at = seg * SEG + off;
            patterns.push(text[at..at + M].try_into().expect("window is M bytes"));
        }
    }
    let results = search_reference(&text, &patterns);
    let expected: Vec<u8> = results.iter().flat_map(|w| w.to_le_bytes()).collect();
    let pat_bytes: Vec<u8> = patterns.iter().flatten().copied().collect();
    let skip_bytes: Vec<u8> = patterns.iter().flat_map(skip_table).collect();
    let searches: String = (0..k).map(pattern_code).collect();
    // Results start at -1.
    let minus_ones: Vec<u8> = std::iter::repeat_n([0xffu8; 4], k).flatten().collect();

    let src = format!(
        "
        .data
        text:
{text}
        pats:
{pats}
        skips:
{skips}
        .align 2
        outp:
{init}
        .text
        main:
            la   $s0, text
            li   $a1, 0              # segment start offset
        seg_loop:
{searches}
            addiu $s0, $s0, {seg}
            addiu $a1, $a1, {seg}
            li   $t0, {n}
            slt  $t1, $a1, $t0
            bnez $t1, seg_loop
            break 0
        ",
        text = bytes_directive(&text),
        pats = bytes_directive(&pat_bytes),
        skips = bytes_directive(&skip_bytes),
        init = bytes_directive(&minus_ones),
        seg = SEG,
        n = n,
        searches = searches,
    );

    BuiltBenchmark {
        name: "stringsearch",
        category: Category::ControlFlow,
        program: must_assemble("stringsearch", &src),
        expected: vec![ExpectedRegion {
            label: "outp".into(),
            bytes: expected,
        }],
        max_steps: 200 * (n as u64) * (k as u64) + 100_000,
    }
}

/// The stringsearch benchmark definition.
pub fn spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "stringsearch",
        category: Category::ControlFlow,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::run_baseline;

    #[test]
    fn reference_respects_segment_boundaries() {
        // Pattern placed across a segment boundary must not be found.
        let mut text = vec![b'a'; 2 * SEG];
        let pat: [u8; M] = *b"bcdefghi";
        text[SEG - 4..SEG + 4].copy_from_slice(&pat);
        assert_eq!(search_reference(&text, &[pat]), vec![-1]);
        // Fully inside a segment it is found at the right global offset.
        text[SEG + 10..SEG + 10 + M].copy_from_slice(&pat);
        assert_eq!(search_reference(&text, &[pat]), vec![(SEG + 10) as i32]);
    }

    #[test]
    fn skip_table_semantics() {
        let pat: [u8; M] = *b"abcdefgh";
        let t = skip_table(&pat);
        assert_eq!(t[b'a' as usize], 7);
        assert_eq!(t[b'g' as usize], 1);
        assert_eq!(t[b'h' as usize], 8); // last char keeps the default
        assert_eq!(t[b'z' as usize], 8);
    }

    #[test]
    fn kernel_matches_reference() {
        run_baseline(&build(Scale::Tiny)).expect("stringsearch validates");
    }
}
