//! Runs every benchmark at `Small` scale against its reference model —
//! broader input coverage than the `Tiny` unit tests, still fast enough
//! for CI.

use dim_workloads::{run_baseline, suite, Scale};

#[test]
fn all_benchmarks_validate_at_small_scale() {
    for spec in suite() {
        let built = (spec.build)(Scale::Small);
        let machine = run_baseline(&built)
            .unwrap_or_else(|e| panic!("{} failed at Small scale: {e}", spec.name));
        assert!(
            machine.stats.instructions > 5_000,
            "{}: Small scale should run a meaningful amount of work ({} instructions)",
            spec.name,
            machine.stats.instructions
        );
    }
}

#[test]
fn scales_are_ordered_by_work() {
    for spec in suite() {
        let tiny = run_baseline(&(spec.build)(Scale::Tiny))
            .unwrap_or_else(|e| panic!("{} tiny: {e}", spec.name))
            .stats
            .instructions;
        let small = run_baseline(&(spec.build)(Scale::Small))
            .unwrap_or_else(|e| panic!("{} small: {e}", spec.name))
            .stats
            .instructions;
        assert!(
            tiny < small,
            "{}: Tiny ({tiny}) must be less work than Small ({small})",
            spec.name
        );
    }
}

#[test]
fn builds_are_deterministic() {
    for spec in suite() {
        let a = (spec.build)(Scale::Tiny);
        let b = (spec.build)(Scale::Tiny);
        assert_eq!(
            a.program.text, b.program.text,
            "{}: text differs",
            spec.name
        );
        assert_eq!(
            a.program.data, b.program.data,
            "{}: data differs",
            spec.name
        );
        assert_eq!(
            a.expected.len(),
            b.expected.len(),
            "{}: oracle differs",
            spec.name
        );
        for (ra, rb) in a.expected.iter().zip(&b.expected) {
            assert_eq!(ra, rb, "{}: expected region differs", spec.name);
        }
    }
}

#[test]
fn categories_cover_the_spectrum() {
    use dim_workloads::Category;
    let s = suite();
    let count = |c: Category| s.iter().filter(|b| b.category == c).count();
    assert!(count(Category::DataFlow) >= 4);
    assert!(count(Category::Mixed) >= 4);
    assert!(count(Category::ControlFlow) >= 6);
}
