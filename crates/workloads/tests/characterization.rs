//! The suite must reproduce the paper's Figure 3 characterization
//! *structure*: dataflow benchmarks have large dynamic basic blocks,
//! control benchmarks small ones, and kernel concentration varies from
//! "one hot loop" (CRC32) to "no distinct kernel" (Susan corners).

use dim_mips_sim::{Machine, Profiler};
use dim_workloads::{by_name, suite, Category, Scale};

fn profile(name: &str) -> dim_mips_sim::Profile {
    let built = (by_name(name).expect("exists").build)(Scale::Small);
    let mut machine = Machine::load(&built.program);
    let mut profiler = Profiler::new();
    machine
        .run_with(built.max_steps, |i| profiler.observe(i))
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    profiler.finish()
}

#[test]
fn dataflow_blocks_dwarf_control_blocks() {
    // Paper Fig 3b: Rijndael at the top (~22 i/br), RawAudio D at the
    // bottom (~3.8 i/br). Our kernels must preserve the ordering with a
    // wide margin.
    let rijndael = profile("rijndael_enc").instructions_per_branch();
    let adpcm = profile("rawaudio_dec").instructions_per_branch();
    assert!(
        rijndael > 5.0 * adpcm,
        "rijndael {rijndael:.1} vs rawaudio_dec {adpcm:.1}"
    );
    assert!(
        (3.0..6.0).contains(&adpcm),
        "paper: 3.79 i/br, got {adpcm:.2}"
    );
}

#[test]
fn category_average_block_sizes_are_ordered() {
    let mut sums = std::collections::HashMap::new();
    for spec in suite() {
        let p = profile(spec.name);
        let e = sums.entry(spec.category).or_insert((0.0f64, 0usize));
        e.0 += p.instructions_per_branch();
        e.1 += 1;
    }
    let avg = |c: Category| {
        let (s, n) = sums[&c];
        s / n as f64
    };
    let d = avg(Category::DataFlow);
    let m = avg(Category::Mixed);
    let c = avg(Category::ControlFlow);
    assert!(
        d > m && m > c,
        "dataflow {d:.1} > mixed {m:.1} > control {c:.1} violated"
    );
}

#[test]
fn crc32_is_one_hot_loop_susan_corners_is_not() {
    let crc = profile("crc32");
    assert!(
        crc.blocks_for_coverage(0.95) <= 3,
        "paper: ~3 BBs cover CRC32"
    );
    let corners = profile("susan_corners");
    assert!(
        corners.blocks_for_coverage(0.5) >= 10,
        "susan corners must have no distinct kernel, needed {}",
        corners.blocks_for_coverage(0.5)
    );
}
