//! The attribution conservation law, end-to-end: for any program and
//! any accelerator setting, the scalar bucket plus every region's
//! translate-window and array cycles of the explained trace sum to the
//! system's exact total cycle count — and older-schema golden traces
//! keep replaying through the explain pipeline.

use dim_cgra::ArrayShape;
use dim_core::{System, SystemConfig};
use dim_explain::{explain_text, MissedCause};
use dim_mips::asm::{assemble, Program};
use dim_mips_sim::Machine;
use dim_obs::JsonlSink;
use proptest::prelude::*;

/// Two loops with a data-dependent branch between them, parameterized
/// so speculation, flushing, and cache pressure all get exercised.
fn program(iters1: u32, iters2: u32) -> Program {
    let src = format!(
        "
        main: li $s0, {iters1}
              li $v0, 0
        l1:   andi $t0, $s0, 1
              beqz $t0, skip
              addiu $v0, $v0, 3
              addiu $v0, $v0, 5
        skip: xor  $t1, $v0, $s0
              addu $v0, $v0, $t1
              addiu $s0, $s0, -1
              bnez $s0, l1
              li $s1, {iters2}
        l2:   sll $t2, $v0, 2
              addu $v0, $v0, $t2
              srl  $t3, $v0, 3
              xor  $v0, $v0, $t3
              addiu $s1, $s1, -1
              bnez $s1, l2
              break 0"
    );
    assemble(&src).unwrap()
}

/// Runs the program traced, explains the trace, and checks conservation.
fn check_conservation(iters1: u32, iters2: u32, slots: usize, spec: bool) -> Result<(), String> {
    let config = SystemConfig::new(ArrayShape::config1(), slots, spec);
    let mut system = System::new(Machine::load(&program(iters1, iters2)), config);
    let mut sink = JsonlSink::new(Vec::new(), "prop", system.stored_bits_per_config());
    system
        .run_probed(10_000_000, &mut sink)
        .map_err(|e| e.to_string())?;
    let (buf, io_error) = sink.into_inner();
    assert!(io_error.is_none());
    let text = String::from_utf8(buf).map_err(|e| e.to_string())?;
    let ex = explain_text(&text).map_err(|e| e.to_string())?;
    let total = system.total_cycles();
    if ex.attributed_total() != total {
        return Err(format!(
            "attribution {} != system total {} (iters1={iters1} iters2={iters2} \
             slots={slots} spec={spec})",
            ex.attributed_total(),
            total
        ));
    }
    if ex.total_cycles() != total {
        return Err(format!(
            "replayed total {} != system total {}",
            ex.total_cycles(),
            total
        ));
    }
    // Lifecycle counters must agree with the live system too.
    let stats = system.stats();
    let evict_live: u64 = ex.regions.iter().map(|r| r.evictions_live).sum();
    let evict_dead: u64 = ex.regions.iter().map(|r| r.evictions_dead).sum();
    if evict_live != stats.rcache_evictions_live || evict_dead != stats.rcache_evictions_dead {
        return Err(format!(
            "eviction split diverged: explain {evict_live}/{evict_dead} vs stats {}/{}",
            stats.rcache_evictions_live, stats.rcache_evictions_dead
        ));
    }
    let mispredicts: u64 = ex.regions.iter().map(|r| r.mispredicts).sum();
    if mispredicts != stats.misspeculations {
        return Err(format!(
            "mispredict count diverged: explain {mispredicts} vs stats {}",
            stats.misspeculations
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation holds across trip counts, cache pressure (down to a
    /// single slot, where dead evictions dominate), and speculation.
    #[test]
    fn attribution_sums_to_total_cycles(
        iters1 in 4u32..64,
        iters2 in 4u32..64,
        slots in prop_oneof![Just(1usize), Just(2), Just(4), Just(64)],
        spec in any::<bool>(),
    ) {
        if let Err(msg) = check_conservation(iters1, iters2, slots, spec) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// A speculative run under cache pressure produces at least one ranked
/// missed-speedup finding — the acceptance bar for `dim explain`.
#[test]
fn pressured_run_ranks_missed_speedup() {
    let config = SystemConfig::new(ArrayShape::config1(), 1, true);
    let mut system = System::new(Machine::load(&program(40, 40)), config);
    let mut sink = JsonlSink::new(Vec::new(), "pressure", system.stored_bits_per_config());
    system.run_probed(10_000_000, &mut sink).unwrap();
    let (buf, _) = sink.into_inner();
    let ex = explain_text(&String::from_utf8(buf).unwrap()).unwrap();
    assert!(
        ex.missed.iter().any(|m| m.cycles > 0),
        "pressured run must surface a nonzero missed-speedup finding: {:?}",
        ex.missed
    );
    assert!(!ex.render(5).is_empty());
}

/// Golden v1 trace: no telemetry, no `len`, no evict/mispredict
/// records. Must keep replaying through the explain pipeline.
#[test]
fn golden_v1_trace_explains() {
    let v1 = concat!(
        r#"{"type":"header","schema_version":1,"workload":"golden-v1","bits_per_config":128}"#,
        "\n",
        r#"{"type":"retire_batch","count":6,"base_cycles":8,"i_stall":2,"d_stall":1,"rcache_misses":6,"kinds":{"alu":4,"branch":2}}"#,
        "\n",
        r#"{"type":"trans_begin","pc":4096}"#,
        "\n",
        r#"{"type":"retire_batch","count":4,"base_cycles":4,"i_stall":0,"d_stall":0,"rcache_misses":4,"kinds":{"alu":4}}"#,
        "\n",
        r#"{"type":"trans_commit","entry_pc":4096,"instructions":4,"rows":2,"spec_blocks":1,"partial":false}"#,
        "\n",
        r#"{"type":"rcache_insert","pc":4096,"evicted":null}"#,
        "\n",
        r#"{"type":"rcache_hit","pc":4096}"#,
        "\n",
        r#"{"type":"array_invoke","entry_pc":4096,"exit_pc":4112,"covered":4,"executed":4,"loads":0,"stores":0,"rows":2,"spec_depth":0,"misspeculated":false,"flushed":false,"stall_cycles":1,"exec_cycles":2,"tail_cycles":1}"#,
        "\n",
        r#"{"type":"footer","events":25}"#,
    );
    let ex = explain_text(v1).unwrap();
    assert_eq!(ex.schema_version, 1);
    assert_eq!(ex.attributed_total(), ex.total_cycles());
    assert_eq!(ex.total_cycles(), 19);
    let region = ex.region(4096).expect("region reconstructed");
    assert_eq!(region.len, 4);
    assert_eq!(region.translate_cycles, 4);
    assert_eq!(region.array_cycles, 4);
    // v3 forensics are absent, not invented.
    assert_eq!(region.mispredicts, 0);
    assert_eq!(region.evictions_live + region.evictions_dead, 0);
    // The Chrome and folded exports still render.
    assert!(ex.chrome_trace().contains("traceEvents"));
    assert!(!ex.folded().is_empty());
}

/// Golden v2 trace: telemetry records present, still no v3 forensics.
#[test]
fn golden_v2_trace_explains() {
    let v2 = concat!(
        r#"{"type":"header","schema_version":2,"workload":"golden-v2","bits_per_config":64}"#,
        "\n",
        r#"{"type":"retire_batch","count":3,"base_cycles":3,"i_stall":0,"d_stall":0,"rcache_misses":3,"kinds":{"alu":3}}"#,
        "\n",
        r#"{"type":"telemetry","seq":0,"sim_cycles":3,"retired":3,"events":6,"host_nanos":1000}"#,
        "\n",
        r#"{"type":"trans_begin","pc":512}"#,
        "\n",
        r#"{"type":"retire_batch","count":2,"base_cycles":2,"i_stall":0,"d_stall":0,"rcache_misses":2,"kinds":{"alu":2}}"#,
        "\n",
        r#"{"type":"footer","events":11}"#,
    );
    let ex = explain_text(v2).unwrap();
    assert_eq!(ex.schema_version, 2);
    assert_eq!(ex.attributed_total(), ex.total_cycles());
    assert_eq!(ex.total_cycles(), 5);
    assert_eq!(ex.scalar_cycles, 3);
    // The abandoned window ranks as never-committed missed speedup.
    assert!(ex
        .missed
        .iter()
        .any(|m| m.pc == 512 && m.cause == MissedCause::NeverCommitted && m.cycles == 2));
}
