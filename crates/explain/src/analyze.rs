//! The trace walk: region lifecycles, exact cycle attribution, and
//! missed-speedup ranking.

use dim_obs::replay::{read_trace, ReplayError, ReplayedTrace, TraceRecord, TraceSummary};
use dim_obs::ProbeEvent;
use std::collections::HashMap;

/// Lifecycle counters and cycle attribution for one region.
///
/// A region is identified by its detection PC plus the number of
/// instructions the translated configuration covers (`len`); `len` is 0
/// until some event carries it (and in schema-v1/v2 traces, always).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Detection PC — entry of the region.
    pub pc: u32,
    /// Instructions the region's configuration covers (largest seen).
    pub len: u32,
    /// Detection windows the translator opened at this PC.
    pub detections: u64,
    /// Configurations committed from this PC.
    pub commits: u64,
    /// Commits that were interrupted prefixes rather than natural closes.
    pub partial_commits: u64,
    /// Insertions into the reconfiguration cache.
    pub inserts: u64,
    /// Reconfiguration-cache lookup hits.
    pub hits: u64,
    /// Times the region executed on the array.
    pub invocations: u64,
    /// Instructions retired through array execution of this region.
    pub executed_instructions: u64,
    /// Invocations with every speculated branch correct.
    pub full_hits: u64,
    /// Misspeculated invocations (schema v3; 0 in older traces).
    pub mispredicts: u64,
    /// Misspeculation penalty cycles charged inside this region's
    /// invocations (schema v3; 0 in older traces).
    pub mispredict_penalty_cycles: u64,
    /// Flushes after repeated misspeculation.
    pub flushes: u64,
    /// Capacity evictions after at least one reuse (schema v3).
    pub evictions_live: u64,
    /// Capacity evictions with zero reuse — dead translations (v3).
    pub evictions_dead: u64,
    /// Pipeline cycles retired while this region's detection window was
    /// open. Translation itself is free (it happens in hardware beside
    /// the pipeline); this measures the investment window, and is the
    /// sunk cost when the region never pays back.
    pub translate_cycles: u64,
    /// Cycles the array charged executing this region (reconfiguration
    /// stall + rows + write-back tail + data stalls + penalties).
    pub array_cycles: u64,
}

impl RegionStats {
    /// All cycles attributed to this region.
    pub fn attributed_cycles(&self) -> u64 {
        self.translate_cycles + self.array_cycles
    }

    /// Estimated cycles acceleration saved (negative: cost) — the
    /// instructions the array retired, priced at the trace's scalar CPI,
    /// minus what the array actually charged.
    pub fn estimated_saved_cycles(&self, scalar_cpi: f64) -> i64 {
        let scalar = self.executed_instructions as f64 * scalar_cpi;
        (scalar - self.array_cycles as f64).round() as i64
    }
}

/// Why a region shows up in the missed-speedup ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissedCause {
    /// A detection window opened (possibly repeatedly) but no
    /// configuration was ever committed — the candidate always died.
    NeverCommitted,
    /// The region was translated and cached but evicted before serving
    /// a single reuse; the translation investment was discarded.
    DeadEviction,
    /// The region did accelerate, but its misspeculation penalty
    /// exceeds the estimated cycles acceleration saved.
    MispredictDominated,
}

impl MissedCause {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            MissedCause::NeverCommitted => "never_committed",
            MissedCause::DeadEviction => "dead_eviction",
            MissedCause::MispredictDominated => "mispredict_dominated",
        }
    }

    /// One-line human description.
    pub fn describe(self) -> &'static str {
        match self {
            MissedCause::NeverCommitted => "detection window never committed a configuration",
            MissedCause::DeadEviction => "translated but evicted before any reuse",
            MissedCause::MispredictDominated => "misspeculation penalty exceeds estimated savings",
        }
    }
}

/// One ranked missed-speedup finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissedSpeedup {
    /// Region detection PC.
    pub pc: u32,
    /// Region length (0 when unknown).
    pub len: u32,
    /// The category.
    pub cause: MissedCause,
    /// Cycles attributed to the miss (sunk translate-window cycles for
    /// uncommitted/dead regions, penalty cycles for mispredict-bound
    /// regions). The ranking key.
    pub cycles: u64,
}

/// What a timeline span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A detection window on the pipeline track.
    Translate {
        /// Whether the window closed with a committed configuration.
        committed: bool,
    },
    /// An array invocation on the CGRA track.
    Invoke {
        /// Instructions actually executed.
        executed: u32,
        /// Whether a speculated branch resolved wrong.
        misspeculated: bool,
        /// Whether the invocation ended with a flush.
        flushed: bool,
    },
}

/// A duration event on the reconstructed timeline, in simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Region PC the span belongs to.
    pub pc: u32,
    /// Start, in cumulative simulated cycles from trace start.
    pub start: u64,
    /// Duration in cycles (0-length windows are kept).
    pub dur: u64,
    /// What happened.
    pub kind: SpanKind,
}

/// Kinds of point-in-time markers on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    /// A capacity eviction; `value` is the victim's reuse count.
    Evict,
    /// A misspeculation flush; `value` is 0.
    Flush,
    /// A mispredicted speculative branch; `value` is the penalty.
    Mispredict,
}

impl MarkerKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            MarkerKind::Evict => "evict",
            MarkerKind::Flush => "flush",
            MarkerKind::Mispredict => "mispredict",
        }
    }
}

/// An instantaneous event on the reconstructed timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Marker {
    /// Region PC the marker belongs to.
    pub pc: u32,
    /// Position in cumulative simulated cycles.
    pub at: u64,
    /// Kind-specific value (see [`MarkerKind`]).
    pub value: u64,
    /// What happened.
    pub kind: MarkerKind,
}

/// The full forensic analysis of one trace.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Workload name from the trace header.
    pub workload: String,
    /// Schema version the trace was written with.
    pub schema_version: u32,
    /// The replayed counters the analysis was built from.
    pub summary: TraceSummary,
    /// Pipeline cycles retired outside any detection window.
    pub scalar_cycles: u64,
    /// Pipeline cycles per pipeline-retired instruction — the price
    /// used to estimate what accelerated instructions would have cost
    /// scalar (1.0 when the trace retired nothing on the pipeline).
    pub scalar_cpi: f64,
    /// Per-region lifecycle stats, sorted by attributed cycles
    /// descending.
    pub regions: Vec<RegionStats>,
    /// Missed-speedup findings, ranked by cycles descending.
    pub missed: Vec<MissedSpeedup>,
    /// Timeline duration events, in trace order.
    pub spans: Vec<Span>,
    /// Timeline instant events, in trace order.
    pub markers: Vec<Marker>,
}

impl Explanation {
    /// Total simulated cycles of the trace.
    pub fn total_cycles(&self) -> u64 {
        self.summary.total_cycles()
    }

    /// The scalar bucket plus every region's attribution. Equals
    /// [`total_cycles`](Explanation::total_cycles) exactly — the
    /// conservation law the property test enforces.
    pub fn attributed_total(&self) -> u64 {
        self.scalar_cycles
            + self
                .regions
                .iter()
                .map(RegionStats::attributed_cycles)
                .sum::<u64>()
    }

    /// The region record for `pc`, if the trace ever mentioned it.
    pub fn region(&self, pc: u32) -> Option<&RegionStats> {
        self.regions.iter().find(|r| r.pc == pc)
    }
}

/// Formats a region id for display: `0x{pc:x}[{len}]`.
pub(crate) fn region_id(pc: u32, len: u32) -> String {
    format!("0x{pc:x}[{len}]")
}

struct Walker {
    regions: HashMap<u32, RegionStats>,
    scalar_cycles: u64,
    clock: u64,
    /// `(pc, start_clock)` of the open detection window, if any.
    open: Option<(u32, u64)>,
    spans: Vec<Span>,
    markers: Vec<Marker>,
}

impl Walker {
    fn region(&mut self, pc: u32) -> &mut RegionStats {
        self.regions.entry(pc).or_insert_with(|| RegionStats {
            pc,
            ..RegionStats::default()
        })
    }

    fn note_len(&mut self, pc: u32, len: u32) {
        let r = self.region(pc);
        r.len = r.len.max(len);
    }

    fn close_window(&mut self, committed: bool) {
        if let Some((pc, start)) = self.open.take() {
            self.spans.push(Span {
                pc,
                start,
                dur: self.clock - start,
                kind: SpanKind::Translate { committed },
            });
        }
    }

    fn event(&mut self, e: &ProbeEvent) {
        match *e {
            // Retires only appear batched in sink-written traces; handle
            // the raw event anyway so hand-built traces attribute too.
            ProbeEvent::Retire {
                base_cycles,
                i_stall,
                d_stall,
                ..
            } => {
                let cycles = base_cycles as u64 + i_stall as u64 + d_stall as u64;
                self.retire_cycles(cycles);
            }
            ProbeEvent::TransBegin { pc } => {
                self.close_window(false);
                self.open = Some((pc, self.clock));
                self.region(pc).detections += 1;
            }
            ProbeEvent::TransCommit {
                entry_pc,
                instructions,
                partial,
                ..
            } => {
                self.close_window(true);
                let r = self.region(entry_pc);
                r.commits += 1;
                if partial {
                    r.partial_commits += 1;
                }
                self.note_len(entry_pc, instructions);
            }
            ProbeEvent::RcacheHit { pc, len } => {
                self.region(pc).hits += 1;
                self.note_len(pc, len);
            }
            ProbeEvent::RcacheMiss { .. } => {}
            ProbeEvent::RcacheInsert { pc, len, .. } => {
                self.region(pc).inserts += 1;
                self.note_len(pc, len);
            }
            ProbeEvent::RcacheFlush { pc, len } => {
                self.region(pc).flushes += 1;
                self.note_len(pc, len);
                self.markers.push(Marker {
                    pc,
                    at: self.clock,
                    value: 0,
                    kind: MarkerKind::Flush,
                });
            }
            ProbeEvent::RcacheEvict { pc, len, uses } => {
                let r = self.region(pc);
                if uses > 0 {
                    r.evictions_live += 1;
                } else {
                    r.evictions_dead += 1;
                }
                self.note_len(pc, len);
                self.markers.push(Marker {
                    pc,
                    at: self.clock,
                    value: uses,
                    kind: MarkerKind::Evict,
                });
            }
            ProbeEvent::SpecMispredict {
                region_pc,
                region_len,
                penalty_cycles,
                ..
            } => {
                let r = self.region(region_pc);
                r.mispredicts += 1;
                r.mispredict_penalty_cycles += penalty_cycles as u64;
                self.note_len(region_pc, region_len);
                self.markers.push(Marker {
                    pc: region_pc,
                    at: self.clock,
                    value: penalty_cycles as u64,
                    kind: MarkerKind::Mispredict,
                });
            }
            // Cycle-neutral occupancy detail; `dim heat` owns its
            // aggregation, region forensics has no use for it. Stream
            // tags likewise: commit-time metadata, not time.
            ProbeEvent::Fabric(_) | ProbeEvent::StreamTag { .. } => {}
            ProbeEvent::ArrayInvoke(inv) => {
                let cycles = inv.total_cycles();
                let r = self.region(inv.entry_pc);
                r.invocations += 1;
                r.executed_instructions += inv.executed as u64;
                if !inv.misspeculated {
                    r.full_hits += 1;
                }
                r.array_cycles += cycles;
                self.note_len(inv.entry_pc, inv.covered);
                self.spans.push(Span {
                    pc: inv.entry_pc,
                    start: self.clock,
                    dur: cycles,
                    kind: SpanKind::Invoke {
                        executed: inv.executed,
                        misspeculated: inv.misspeculated,
                        flushed: inv.flushed,
                    },
                });
                self.clock += cycles;
            }
        }
    }

    fn retire_cycles(&mut self, cycles: u64) {
        match self.open {
            Some((pc, _)) => self.region(pc).translate_cycles += cycles,
            None => self.scalar_cycles += cycles,
        }
        self.clock += cycles;
    }
}

/// Ranks the missed-speedup findings for the analyzed regions.
fn rank_missed(regions: &[RegionStats], scalar_cpi: f64) -> Vec<MissedSpeedup> {
    let mut missed = Vec::new();
    for r in regions {
        if r.detections > 0 && r.commits == 0 {
            // Investment window with literally nothing to show for it.
            missed.push(MissedSpeedup {
                pc: r.pc,
                len: r.len,
                cause: MissedCause::NeverCommitted,
                cycles: r.translate_cycles,
            });
            continue;
        }
        if r.evictions_dead > 0 && r.invocations == 0 {
            missed.push(MissedSpeedup {
                pc: r.pc,
                len: r.len,
                cause: MissedCause::DeadEviction,
                cycles: r.translate_cycles,
            });
        }
        if r.mispredict_penalty_cycles > 0
            && (r.mispredict_penalty_cycles as i64) > r.estimated_saved_cycles(scalar_cpi).max(0)
        {
            missed.push(MissedSpeedup {
                pc: r.pc,
                len: r.len,
                cause: MissedCause::MispredictDominated,
                cycles: r.mispredict_penalty_cycles,
            });
        }
    }
    missed.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.pc.cmp(&b.pc)));
    missed
}

/// Analyzes a replayed trace into per-region lifecycles, timeline, and
/// missed-speedup ranking.
pub fn explain(trace: &ReplayedTrace) -> Explanation {
    let mut w = Walker {
        regions: HashMap::new(),
        scalar_cycles: 0,
        clock: 0,
        open: None,
        spans: Vec::new(),
        markers: Vec::new(),
    };
    for record in &trace.records {
        match record {
            TraceRecord::RetireBatch {
                base_cycles,
                i_stall,
                d_stall,
                ..
            } => w.retire_cycles(base_cycles + i_stall + d_stall),
            TraceRecord::Event(e) => w.event(e),
            TraceRecord::Header(_) | TraceRecord::Telemetry { .. } | TraceRecord::Footer { .. } => {
            }
        }
    }
    // A window still open at trace end is an abandoned candidate.
    w.close_window(false);

    let scalar_cpi = if trace.summary.retired > 0 {
        trace.summary.pipeline_cycles as f64 / trace.summary.retired as f64
    } else {
        1.0
    };
    let mut regions: Vec<RegionStats> = w.regions.into_values().collect();
    regions.sort_by(|a, b| {
        b.attributed_cycles()
            .cmp(&a.attributed_cycles())
            .then(a.pc.cmp(&b.pc))
    });
    let missed = rank_missed(&regions, scalar_cpi);

    let explanation = Explanation {
        workload: trace.header.workload.clone(),
        schema_version: trace.header.schema_version,
        summary: trace.summary,
        scalar_cycles: w.scalar_cycles,
        scalar_cpi,
        regions,
        missed,
        spans: w.spans,
        markers: w.markers,
    };
    debug_assert_eq!(
        explanation.attributed_total(),
        explanation.total_cycles(),
        "cycle attribution must conserve the trace total"
    );
    explanation
}

/// Parses trace text and analyzes it in one step.
///
/// # Errors
///
/// Returns the [`ReplayError`] if the trace fails validation.
pub fn explain_text(text: &str) -> Result<Explanation, ReplayError> {
    Ok(explain(&read_trace(text)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    const V3: &str = concat!(
        r#"{"type":"header","schema_version":3,"workload":"unit","bits_per_config":64}"#,
        "\n",
        r#"{"type":"retire_batch","count":4,"base_cycles":6,"i_stall":1,"d_stall":0,"rcache_misses":4,"kinds":{"alu":4}}"#,
        "\n",
        r#"{"type":"trans_begin","pc":64}"#,
        "\n",
        r#"{"type":"retire_batch","count":5,"base_cycles":5,"i_stall":0,"d_stall":0,"rcache_misses":5,"kinds":{"alu":5}}"#,
        "\n",
        r#"{"type":"trans_commit","entry_pc":64,"instructions":5,"rows":2,"spec_blocks":1,"partial":false}"#,
        "\n",
        r#"{"type":"rcache_insert","pc":64,"len":5,"evicted":96}"#,
        "\n",
        r#"{"type":"rcache_evict","pc":96,"len":3,"uses":0}"#,
        "\n",
        r#"{"type":"rcache_hit","pc":64,"len":5}"#,
        "\n",
        r#"{"type":"mispredict","region_pc":64,"region_len":5,"branch_pc":80,"penalty_cycles":2}"#,
        "\n",
        r#"{"type":"array_invoke","entry_pc":64,"exit_pc":84,"covered":5,"executed":3,"loads":0,"stores":0,"rows":2,"spec_depth":0,"misspeculated":true,"flushed":false,"stall_cycles":1,"exec_cycles":4,"tail_cycles":1}"#,
        "\n",
        r#"{"type":"trans_begin","pc":128}"#,
        "\n",
        r#"{"type":"retire_batch","count":2,"base_cycles":3,"i_stall":0,"d_stall":0,"rcache_misses":2,"kinds":{"alu":2}}"#,
        "\n",
        r#"{"type":"footer","events":30}"#,
    );

    #[test]
    fn attribution_conserves_total_cycles() {
        let ex = explain_text(V3).unwrap();
        assert_eq!(ex.attributed_total(), ex.total_cycles());
        // 7 scalar + 5 in region 64's window + 3 in region 128's window
        // + 6 array cycles.
        assert_eq!(ex.scalar_cycles, 7);
        assert_eq!(ex.total_cycles(), 21);
    }

    #[test]
    fn lifecycle_counters_reconstruct() {
        let ex = explain_text(V3).unwrap();
        let r = ex.region(64).unwrap();
        assert_eq!(r.len, 5);
        assert_eq!(r.detections, 1);
        assert_eq!(r.commits, 1);
        assert_eq!(r.inserts, 1);
        assert_eq!(r.hits, 1);
        assert_eq!(r.invocations, 1);
        assert_eq!(r.mispredicts, 1);
        assert_eq!(r.mispredict_penalty_cycles, 2);
        assert_eq!(r.translate_cycles, 5);
        assert_eq!(r.array_cycles, 6);
        let victim = ex.region(96).unwrap();
        assert_eq!(victim.evictions_dead, 1);
        assert_eq!(victim.evictions_live, 0);
    }

    #[test]
    fn missed_speedup_ranks_all_three_causes() {
        let ex = explain_text(V3).unwrap();
        // Region 128: opened, never committed, window still open at EOF.
        let never = ex
            .missed
            .iter()
            .find(|m| m.cause == MissedCause::NeverCommitted)
            .expect("uncommitted region ranked");
        assert_eq!(never.pc, 128);
        assert_eq!(never.cycles, 3);
        // Region 96: evicted dead without ever being invoked.
        assert!(ex
            .missed
            .iter()
            .any(|m| m.cause == MissedCause::DeadEviction && m.pc == 96));
        // Region 64: 2 penalty cycles vs an estimated saving of
        // 3 * (15/11 pipeline CPI) - 6 < 0 → mispredict-dominated.
        assert!(ex
            .missed
            .iter()
            .any(|m| m.cause == MissedCause::MispredictDominated && m.pc == 64));
    }

    #[test]
    fn timeline_spans_are_ordered_and_typed() {
        let ex = explain_text(V3).unwrap();
        assert_eq!(ex.spans.len(), 3); // 2 translate windows + 1 invoke
        let invoke = ex
            .spans
            .iter()
            .find(|s| matches!(s.kind, SpanKind::Invoke { .. }))
            .unwrap();
        assert_eq!(invoke.pc, 64);
        assert_eq!(invoke.start, 12);
        assert_eq!(invoke.dur, 6);
        assert_eq!(ex.markers.len(), 2); // evict + mispredict
        let starts: Vec<u64> = ex.spans.iter().map(|s| s.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "spans come out in timeline order");
    }

    #[test]
    fn v1_trace_explains_with_len_zero() {
        let v1 = concat!(
            r#"{"type":"header","schema_version":1,"workload":"old","bits_per_config":64}"#,
            "\n",
            r#"{"type":"rcache_insert","pc":4,"evicted":null}"#,
            "\n",
            r#"{"type":"rcache_hit","pc":4}"#,
            "\n",
            r#"{"type":"array_invoke","entry_pc":4,"exit_pc":8,"covered":2,"executed":2,"loads":0,"stores":0,"rows":1,"spec_depth":0,"misspeculated":false,"flushed":false,"stall_cycles":0,"exec_cycles":2,"tail_cycles":0}"#,
            "\n",
            r#"{"type":"footer","events":3}"#,
        );
        let ex = explain_text(v1).unwrap();
        assert_eq!(ex.schema_version, 1);
        assert_eq!(ex.attributed_total(), ex.total_cycles());
        let r = ex.region(4).unwrap();
        assert_eq!(r.len, 2); // learned from array_invoke.covered
        assert_eq!(r.hits, 1);
        assert!(ex.missed.is_empty());
    }
}
