//! # dim-explain
//!
//! Region-level acceleration forensics over JSONL traces.
//!
//! Where `dim-obs` answers *how many* (counters, histograms, per-block
//! cycle attribution), this crate answers *which region and why*: it
//! replays a trace written by [`JsonlSink`](dim_obs::JsonlSink) and
//! reconstructs, for every detected region — identified by its
//! detection PC plus covered-instruction count — the full lifecycle the
//! DIM hardware put it through: detect → translate → insert → hits →
//! speculative replays → mispredicts → evict, with exact cycle
//! attribution at every step.
//!
//! The attribution invariant, enforced by a property test: the scalar
//! bucket plus every region's translate-window and array cycles sum to
//! [`TraceSummary::total_cycles`](dim_obs::replay::TraceSummary) —
//! *exactly*, not approximately. Pipeline retire cycles land either in
//! the region whose detection window was open when they retired or in
//! the `(scalar)` bucket; array-invocation cycles land on the invoked
//! region; nothing else carries cycles.
//!
//! On top of the lifecycle the crate ranks *missed speedup*: regions
//! translated but evicted before any reuse, regions whose misspeculation
//! penalty outweighs what acceleration saved, and detection windows that
//! never produced a configuration at all.
//!
//! Three renderings share one [`Explanation`]:
//!
//! * [`Explanation::render`] — the terminal report (`dim explain`);
//! * [`Explanation::chrome_trace`] — Chrome trace-event JSON, loadable
//!   in `chrome://tracing`, Perfetto, or speedscope, with the pipeline
//!   and the array as separate tracks;
//! * [`Explanation::folded`] — collapsed-stack lines for
//!   `flamegraph.pl` / `inferno-flamegraph`.
//!
//! Traces of any supported schema version replay: version-1/2 traces
//! simply lack the v3 region-id (`len` reads as 0) and the
//! evict/mispredict forensics.

#![warn(missing_docs)]

mod analyze;
mod export;
mod report;

pub use analyze::{
    explain, explain_text, Explanation, Marker, MarkerKind, MissedCause, MissedSpeedup,
    RegionStats, Span, SpanKind,
};
