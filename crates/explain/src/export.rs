//! Chrome trace-event and collapsed-stack (flamegraph) exports.

use crate::analyze::{Explanation, MarkerKind, SpanKind};
use dim_obs::{write_escaped, ObjectWriter};

/// Track (thread) ids inside the Chrome trace: the pipeline/translator
/// side and the reconfigurable array side.
const TID_PIPELINE: u64 = 1;
const TID_ARRAY: u64 = 2;
const PID: u64 = 1;

fn meta_event(name: &str, tid: Option<u64>, value: &str) -> String {
    let mut o = ObjectWriter::new();
    o.field_str("ph", "M");
    o.field_str("name", name);
    o.field_u64("pid", PID);
    if let Some(tid) = tid {
        o.field_u64("tid", tid);
    }
    let mut args = ObjectWriter::new();
    args.field_str("name", value);
    o.field_raw("args", &args.finish());
    o.finish()
}

impl Explanation {
    /// Renders the timeline as Chrome trace-event JSON
    /// (`{"traceEvents":[...]}`), loadable in `chrome://tracing`,
    /// Perfetto, or speedscope. One simulated cycle maps to one
    /// microsecond of display time. Detection windows appear as
    /// duration events on the *pipeline* track, array invocations on
    /// the *CGRA* track, and evictions / flushes / mispredicts as
    /// instant events.
    pub fn chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(self.spans.len() + self.markers.len() + 3);
        events.push(meta_event("process_name", None, "dim simulated cycles"));
        events.push(meta_event(
            "thread_name",
            Some(TID_PIPELINE),
            "pipeline / translate",
        ));
        events.push(meta_event("thread_name", Some(TID_ARRAY), "array (CGRA)"));

        for span in &self.spans {
            let len = self.region(span.pc).map_or(0, |r| r.len);
            let mut o = ObjectWriter::new();
            o.field_str("ph", "X");
            o.field_u64("pid", PID);
            o.field_u64("ts", span.start);
            o.field_u64("dur", span.dur);
            let mut args = ObjectWriter::new();
            args.field_u64("pc", span.pc as u64);
            args.field_u64("len", len as u64);
            match span.kind {
                SpanKind::Translate { committed } => {
                    o.field_str("name", &format!("translate 0x{:x}", span.pc));
                    o.field_str("cat", "translate");
                    o.field_u64("tid", TID_PIPELINE);
                    args.field_bool("committed", committed);
                }
                SpanKind::Invoke {
                    executed,
                    misspeculated,
                    flushed,
                } => {
                    o.field_str("name", &format!("region 0x{:x}", span.pc));
                    o.field_str("cat", "invoke");
                    o.field_u64("tid", TID_ARRAY);
                    args.field_u64("executed", executed as u64);
                    args.field_bool("misspeculated", misspeculated);
                    args.field_bool("flushed", flushed);
                }
            }
            o.field_raw("args", &args.finish());
            events.push(o.finish());
        }

        for marker in &self.markers {
            let mut o = ObjectWriter::new();
            o.field_str("ph", "i");
            o.field_str("s", "t"); // thread-scoped instant
            o.field_u64("pid", PID);
            o.field_u64("ts", marker.at);
            o.field_str("name", &format!("{} 0x{:x}", marker.kind.name(), marker.pc));
            o.field_str("cat", marker.kind.name());
            let tid = match marker.kind {
                // Cache bookkeeping happens beside the pipeline; the
                // mispredict fires during array execution.
                MarkerKind::Evict | MarkerKind::Flush => TID_PIPELINE,
                MarkerKind::Mispredict => TID_ARRAY,
            };
            o.field_u64("tid", tid);
            let mut args = ObjectWriter::new();
            args.field_u64("pc", marker.pc as u64);
            match marker.kind {
                MarkerKind::Evict => args.field_u64("uses", marker.value),
                MarkerKind::Flush => args.field_u64("strikes", marker.value),
                MarkerKind::Mispredict => args.field_u64("penalty_cycles", marker.value),
            };
            o.field_raw("args", &args.finish());
            events.push(o.finish());
        }

        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&events.join(","));
        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"workload\":");
        write_escaped(&mut out, &self.workload);
        out.push_str("}}");
        out
    }

    /// Renders the attribution as collapsed-stack lines for
    /// `flamegraph.pl` or `inferno-flamegraph`: one
    /// `workload;frame;frame count` line per leaf, counts in simulated
    /// cycles. The per-line counts sum exactly to the trace's total
    /// cycles — the mispredict penalty is carved out of each region's
    /// array frame, never double-counted.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        let root = sanitize_frame(&self.workload);
        if self.scalar_cycles > 0 {
            out.push_str(&format!("{root};(scalar) {}\n", self.scalar_cycles));
        }
        for r in &self.regions {
            let frame = format!("{root};region 0x{:x}[{}]", r.pc, r.len);
            if r.translate_cycles > 0 {
                out.push_str(&format!("{frame};translate {}\n", r.translate_cycles));
            }
            // The penalty is inside array_cycles by construction; split
            // it into its own child frame without changing the sum.
            let penalty = r.mispredict_penalty_cycles.min(r.array_cycles);
            if r.array_cycles - penalty > 0 {
                out.push_str(&format!("{frame};array {}\n", r.array_cycles - penalty));
            }
            if penalty > 0 {
                out.push_str(&format!("{frame};array;mispredict_penalty {penalty}\n"));
            }
        }
        out
    }
}

/// Frame names must not contain the folded format's separators.
fn sanitize_frame(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect();
    if cleaned.is_empty() {
        "(trace)".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use crate::explain_text;
    use dim_obs::parse_json;

    const TRACE: &str = concat!(
        r#"{"type":"header","schema_version":3,"workload":"wl one","bits_per_config":64}"#,
        "\n",
        r#"{"type":"retire_batch","count":2,"base_cycles":2,"i_stall":0,"d_stall":0,"rcache_misses":2,"kinds":{"alu":2}}"#,
        "\n",
        r#"{"type":"trans_begin","pc":64}"#,
        "\n",
        r#"{"type":"retire_batch","count":3,"base_cycles":3,"i_stall":0,"d_stall":0,"rcache_misses":3,"kinds":{"alu":3}}"#,
        "\n",
        r#"{"type":"trans_commit","entry_pc":64,"instructions":3,"rows":1,"spec_blocks":1,"partial":false}"#,
        "\n",
        r#"{"type":"rcache_insert","pc":64,"len":3,"evicted":null}"#,
        "\n",
        r#"{"type":"rcache_hit","pc":64,"len":3}"#,
        "\n",
        r#"{"type":"mispredict","region_pc":64,"region_len":3,"branch_pc":68,"penalty_cycles":2}"#,
        "\n",
        r#"{"type":"array_invoke","entry_pc":64,"exit_pc":76,"covered":3,"executed":2,"loads":0,"stores":0,"rows":1,"spec_depth":0,"misspeculated":true,"flushed":false,"stall_cycles":0,"exec_cycles":5,"tail_cycles":0}"#,
        "\n",
        r#"{"type":"footer","events":16}"#,
    );

    #[test]
    fn chrome_trace_is_valid_json_with_both_tracks() {
        let ex = explain_text(TRACE).unwrap();
        let text = ex.chrome_trace();
        let v = parse_json(&text).expect("chrome export parses as JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 3 metadata + 1 translate span + 1 invoke span + 1 mispredict.
        assert_eq!(events.len(), 6);
        let invoke = events
            .iter()
            .find(|e| e.get("cat").and_then(|c| c.as_str()) == Some("invoke"))
            .expect("invoke span present");
        assert_eq!(invoke.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(invoke.get("ts").unwrap().as_u64(), Some(5));
        assert_eq!(invoke.get("dur").unwrap().as_u64(), Some(5));
        assert_eq!(invoke.get("tid").unwrap().as_u64(), Some(2));
        assert!(events
            .iter()
            .any(|e| e.get("cat").and_then(|c| c.as_str()) == Some("translate")));
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i")));
    }

    #[test]
    fn folded_lines_sum_to_total_cycles() {
        let ex = explain_text(TRACE).unwrap();
        let folded = ex.folded();
        assert!(!folded.is_empty());
        let mut sum = 0u64;
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("count-terminated line");
            assert!(stack.starts_with("wl_one;"), "{stack}");
            sum += count.parse::<u64>().expect("numeric count");
        }
        assert_eq!(sum, ex.total_cycles());
        assert!(folded.contains(";array;mispredict_penalty 2"));
    }
}
