//! Terminal report and machine-readable JSON for an [`Explanation`].

use crate::analyze::{region_id, Explanation, MissedSpeedup, RegionStats};
use dim_obs::ObjectWriter;
use std::fmt::Write as _;

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

impl Explanation {
    /// Renders the terminal forensics report: run totals, the top
    /// `top` regions by attributed cycles with their full lifecycle,
    /// and the missed-speedup ranking.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        let total = self.total_cycles();
        let _ = writeln!(
            out,
            "explain: {} (schema v{}, {} cycles)",
            if self.workload.is_empty() {
                "<unnamed>"
            } else {
                &self.workload
            },
            self.schema_version,
            total,
        );
        let accel: u64 = self
            .regions
            .iter()
            .map(RegionStats::attributed_cycles)
            .sum();
        let _ = writeln!(
            out,
            "  scalar {} cy ({:.1}%)   region-attributed {} cy ({:.1}%)   scalar CPI {:.2}",
            self.scalar_cycles,
            pct(self.scalar_cycles, total),
            accel,
            pct(accel, total),
            self.scalar_cpi,
        );
        let _ = writeln!(
            out,
            "  {} regions, {} invocations, {} mispredicts, {} evictions ({} live, {} dead)",
            self.regions.len(),
            self.summary.array_invocations,
            self.summary.misspeculations,
            self.summary.rcache_evictions_live + self.summary.rcache_evictions_dead,
            self.summary.rcache_evictions_live,
            self.summary.rcache_evictions_dead,
        );

        let shown = self.regions.len().min(top);
        if shown > 0 {
            let _ = writeln!(out, "\ntop {shown} regions by attributed cycles:");
            let _ = writeln!(
                out,
                "  {:<16} {:>10} {:>8} {:>6} {:>6} {:>8} {:>9} {:>8} {:>10}",
                "region",
                "cycles",
                "%total",
                "det",
                "hits",
                "invokes",
                "mispred",
                "evict",
                "est.saved"
            );
            for r in self.regions.iter().take(shown) {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>10} {:>7.1}% {:>6} {:>6} {:>8} {:>9} {:>8} {:>10}",
                    region_id(r.pc, r.len),
                    r.attributed_cycles(),
                    pct(r.attributed_cycles(), total),
                    r.detections,
                    r.hits,
                    r.invocations,
                    r.mispredicts,
                    r.evictions_live + r.evictions_dead,
                    r.estimated_saved_cycles(self.scalar_cpi),
                );
            }
        }

        if self.missed.is_empty() {
            let _ = writeln!(out, "\nno missed speedup detected");
        } else {
            let shown = self.missed.len().min(top);
            let _ = writeln!(
                out,
                "\nmissed speedup ({} finding{}, top {shown}):",
                self.missed.len(),
                if self.missed.len() == 1 { "" } else { "s" },
            );
            for m in self.missed.iter().take(shown) {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>10} cy  {}",
                    region_id(m.pc, m.len),
                    m.cycles,
                    m.cause.describe(),
                );
            }
        }
        out
    }

    /// Serializes the analysis as a single JSON object (regions and
    /// missed-speedup findings included; the timeline is not embedded —
    /// use [`chrome_trace`](Explanation::chrome_trace) for that).
    pub fn to_json(&self) -> String {
        let mut o = ObjectWriter::new();
        o.field_str("workload", &self.workload);
        o.field_u64("schema_version", self.schema_version as u64);
        o.field_u64("total_cycles", self.total_cycles());
        o.field_u64("scalar_cycles", self.scalar_cycles);
        o.field_f64("scalar_cpi", self.scalar_cpi);
        let regions: Vec<String> = self
            .regions
            .iter()
            .map(|r| region_json(r, self.scalar_cpi))
            .collect();
        o.field_raw("regions", &format!("[{}]", regions.join(",")));
        let missed: Vec<String> = self.missed.iter().map(missed_json).collect();
        o.field_raw("missed", &format!("[{}]", missed.join(",")));
        o.finish()
    }
}

fn region_json(r: &RegionStats, scalar_cpi: f64) -> String {
    let mut o = ObjectWriter::new();
    o.field_u64("pc", r.pc as u64);
    o.field_u64("len", r.len as u64);
    o.field_u64("detections", r.detections);
    o.field_u64("commits", r.commits);
    o.field_u64("partial_commits", r.partial_commits);
    o.field_u64("inserts", r.inserts);
    o.field_u64("hits", r.hits);
    o.field_u64("invocations", r.invocations);
    o.field_u64("executed_instructions", r.executed_instructions);
    o.field_u64("full_hits", r.full_hits);
    o.field_u64("mispredicts", r.mispredicts);
    o.field_u64("mispredict_penalty_cycles", r.mispredict_penalty_cycles);
    o.field_u64("flushes", r.flushes);
    o.field_u64("evictions_live", r.evictions_live);
    o.field_u64("evictions_dead", r.evictions_dead);
    o.field_u64("translate_cycles", r.translate_cycles);
    o.field_u64("array_cycles", r.array_cycles);
    o.field_f64(
        "estimated_saved_cycles",
        r.estimated_saved_cycles(scalar_cpi) as f64,
    );
    o.finish()
}

fn missed_json(m: &MissedSpeedup) -> String {
    let mut o = ObjectWriter::new();
    o.field_u64("pc", m.pc as u64);
    o.field_u64("len", m.len as u64);
    o.field_str("cause", m.cause.name());
    o.field_u64("cycles", m.cycles);
    o.finish()
}

#[cfg(test)]
mod tests {
    use crate::explain_text;
    use dim_obs::parse_json;

    const TRACE: &str = concat!(
        r#"{"type":"header","schema_version":3,"workload":"unit","bits_per_config":64}"#,
        "\n",
        r#"{"type":"trans_begin","pc":64}"#,
        "\n",
        r#"{"type":"retire_batch","count":3,"base_cycles":4,"i_stall":0,"d_stall":0,"rcache_misses":3,"kinds":{"alu":3}}"#,
        "\n",
        r#"{"type":"trans_commit","entry_pc":64,"instructions":3,"rows":1,"spec_blocks":1,"partial":false}"#,
        "\n",
        r#"{"type":"rcache_insert","pc":64,"len":3,"evicted":null}"#,
        "\n",
        r#"{"type":"rcache_hit","pc":64,"len":3}"#,
        "\n",
        r#"{"type":"array_invoke","entry_pc":64,"exit_pc":76,"covered":3,"executed":3,"loads":0,"stores":0,"rows":1,"spec_depth":0,"misspeculated":false,"flushed":false,"stall_cycles":1,"exec_cycles":3,"tail_cycles":0}"#,
        "\n",
        r#"{"type":"trans_begin","pc":200}"#,
        "\n",
        r#"{"type":"retire_batch","count":2,"base_cycles":2,"i_stall":0,"d_stall":0,"rcache_misses":2,"kinds":{"alu":2}}"#,
        "\n",
        r#"{"type":"footer","events":16}"#,
    );

    #[test]
    fn report_names_regions_and_missed_speedup() {
        let ex = explain_text(TRACE).unwrap();
        let report = ex.render(10);
        assert!(report.contains("0x40[3]"), "{report}");
        assert!(report.contains("missed speedup"), "{report}");
        assert!(
            report.contains("never committed a configuration"),
            "{report}"
        );
    }

    #[test]
    fn json_parses_and_carries_the_invariant() {
        let ex = explain_text(TRACE).unwrap();
        let v = parse_json(&ex.to_json()).expect("valid JSON");
        assert_eq!(v.get("workload").unwrap().as_str(), Some("unit"));
        let total = v.get("total_cycles").unwrap().as_u64().unwrap();
        let scalar = v.get("scalar_cycles").unwrap().as_u64().unwrap();
        let regions = v.get("regions").unwrap().as_array().unwrap();
        let attributed: u64 = regions
            .iter()
            .map(|r| {
                r.get("translate_cycles").unwrap().as_u64().unwrap()
                    + r.get("array_cycles").unwrap().as_u64().unwrap()
            })
            .sum();
        assert_eq!(scalar + attributed, total);
        assert!(!v.get("missed").unwrap().as_array().unwrap().is_empty());
    }
}
