//! Property tests for the energy model: totals compose, every component
//! responds monotonically to its driving counter, and power gating never
//! increases any component.

use dim_core::DimStats;
use dim_energy::{energy_breakdown, energy_breakdown_gated, PowerModel};
use dim_mips_sim::RunStats;
use proptest::prelude::*;

fn any_run_stats() -> impl Strategy<Value = RunStats> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..100_000,
        0u64..100_000,
    )
        .prop_map(|(cycles, fetches, loads, stores)| {
            let mut s = RunStats::new();
            s.cycles = cycles;
            s.fetches = fetches;
            s.loads = loads;
            s.stores = stores;
            s.instructions = fetches;
            s
        })
}

fn any_dim_stats() -> impl Strategy<Value = DimStats> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..100_000,
        0u64..100_000,
        0u64..10_000_000,
        0u64..1_000_000,
    )
        .prop_map(|(instr, exec, loads, stores, bits, observed)| {
            let mut d = DimStats::new();
            d.array_instructions = instr;
            d.array_exec_cycles = exec;
            d.array_loads = loads;
            d.array_stores = stores;
            d.cache_bits_read = bits;
            d.translated_instructions = observed;
            d.array_invocations = (instr / 8).max(1);
            d.array_occupied_rows = instr / 2;
            d
        })
}

proptest! {
    #[test]
    fn total_is_sum_of_components(proc in any_run_stats(), dim in any_dim_stats()) {
        let e = energy_breakdown(&proc, &dim, &PowerModel::default());
        let sum = e.core + e.imem + e.dmem + e.array + e.rcache + e.bt;
        prop_assert!((e.total() - sum).abs() < 1e-6);
        for v in [e.core, e.imem, e.dmem, e.array, e.rcache, e.bt] {
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn components_monotone_in_their_counters(
        proc in any_run_stats(),
        dim in any_dim_stats(),
        bump in 1u64..10_000,
    ) {
        let m = PowerModel::default();
        let base = energy_breakdown(&proc, &dim, &m);

        let mut p2 = proc;
        p2.fetches += bump;
        prop_assert!(energy_breakdown(&p2, &dim, &m).imem > base.imem);

        let mut d2 = dim;
        d2.array_instructions += bump;
        prop_assert!(energy_breakdown(&proc, &d2, &m).array > base.array);

        let mut d3 = dim;
        d3.cache_bits_read += bump;
        prop_assert!(energy_breakdown(&proc, &d3, &m).rcache > base.rcache);

        let mut p3 = proc;
        p3.loads += bump;
        prop_assert!(energy_breakdown(&p3, &dim, &m).dmem > base.dmem);
    }

    #[test]
    fn gating_never_increases_energy(
        proc in any_run_stats(),
        dim in any_dim_stats(),
        rows in 1usize..256,
    ) {
        let m = PowerModel::default();
        let plain = energy_breakdown(&proc, &dim, &m);
        let gated = energy_breakdown_gated(&proc, &dim, &m, rows);
        prop_assert!(gated.total() <= plain.total() + 1e-6);
        prop_assert!(gated.array <= plain.array + 1e-6);
        prop_assert!((gated.core - plain.core).abs() < 1e-6);
        prop_assert!((gated.imem - plain.imem).abs() < 1e-6);
    }

    #[test]
    fn average_power_scales_inverse_with_cycles(
        proc in any_run_stats(),
        dim in any_dim_stats(),
    ) {
        let e = energy_breakdown(&proc, &dim, &PowerModel::default());
        let p1 = e.average_power(1000).total();
        let p2 = e.average_power(2000).total();
        prop_assert!((p1 - 2.0 * p2).abs() < 1e-6 * p1.max(1.0));
    }
}
