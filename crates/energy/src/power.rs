//! Event-based power/energy model — the paper's Figures 5 and 6.
//!
//! Every event counted by the simulators carries an energy cost in
//! abstract 0.18µ-era units (think pJ at a nominal clock). Average power
//! per cycle (Figure 5) divides the accumulated energy by total cycles;
//! total energy (Figure 6) is the accumulation itself. The constants are
//! calibrated so the headline shapes hold: MIPS+array draws comparable
//! power per cycle (more in the core/array, less in instruction memory)
//! but finishes in fewer cycles, netting the ~1.7× energy saving the
//! paper reports for configuration #2 with 64 slots.

use dim_core::DimStats;
use dim_mips_sim::RunStats;

/// Per-event energies and per-cycle powers (abstract units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Core power per pipeline-active cycle.
    pub core_active_power: f64,
    /// Core power per cycle spent waiting on the array.
    pub core_stall_power: f64,
    /// Instruction-memory energy per fetch.
    pub imem_fetch_energy: f64,
    /// Data-memory energy per access (either side).
    pub dmem_access_energy: f64,
    /// Array energy per executed operation.
    pub array_op_energy: f64,
    /// Array static/clock power per array-active cycle.
    pub array_idle_power: f64,
    /// Reconfiguration-cache energy per bit read or written.
    pub rcache_bit_energy: f64,
    /// Detection-hardware energy per examined instruction.
    pub bt_observe_energy: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            core_active_power: 30.0,
            core_stall_power: 10.0,
            imem_fetch_energy: 22.0,
            dmem_access_energy: 28.0,
            array_op_energy: 8.5,
            array_idle_power: 26.0,
            rcache_bit_energy: 0.004,
            bt_observe_energy: 1.5,
        }
    }
}

/// Energy per subsystem (the bar segments of Figures 5/6).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Processor core (pipeline + register file + stall clocking).
    pub core: f64,
    /// Instruction memory.
    pub imem: f64,
    /// Data memory.
    pub dmem: f64,
    /// Reconfigurable array (ops + static).
    pub array: f64,
    /// Reconfiguration cache.
    pub rcache: f64,
    /// DIM binary-translation hardware.
    pub bt: f64,
}

impl EnergyBreakdown {
    /// Total energy across subsystems.
    pub fn total(&self) -> f64 {
        self.core + self.imem + self.dmem + self.array + self.rcache + self.bt
    }

    /// Scales every component by `1/cycles`, yielding average power per
    /// cycle (Figure 5).
    pub fn average_power(&self, cycles: u64) -> EnergyBreakdown {
        let c = (cycles.max(1)) as f64;
        EnergyBreakdown {
            core: self.core / c,
            imem: self.imem / c,
            dmem: self.dmem / c,
            array: self.array / c,
            rcache: self.rcache / c,
            bt: self.bt / c,
        }
    }
}

/// Computes the energy breakdown of a run from processor-side and
/// accelerator-side statistics. Pass `DimStats::default()` for a plain
/// MIPS run.
///
/// ```
/// use dim_core::DimStats;
/// use dim_energy::{energy_breakdown, PowerModel};
/// use dim_mips_sim::RunStats;
///
/// let mut proc = RunStats::new();
/// proc.cycles = 1000;
/// proc.fetches = 900;
/// let e = energy_breakdown(&proc, &DimStats::default(), &PowerModel::default());
/// assert!(e.core > 0.0 && e.imem > 0.0 && e.array == 0.0);
/// ```
pub fn energy_breakdown(proc: &RunStats, dim: &DimStats, model: &PowerModel) -> EnergyBreakdown {
    breakdown_with_gating(proc, dim, model, 1.0)
}

/// Like [`energy_breakdown`], but with *power gating* of unused rows —
/// the paper's announced future work ("techniques to switch off
/// functional units when they are not being used"). The array's static
/// power is scaled by the fraction of rows actually occupied by the
/// executed configurations.
///
/// `total_rows` is the array height (e.g. `shape.rows`); occupancy comes
/// from [`DimStats::mean_occupied_rows`].
pub fn energy_breakdown_gated(
    proc: &RunStats,
    dim: &DimStats,
    model: &PowerModel,
    total_rows: usize,
) -> EnergyBreakdown {
    let occupancy = if total_rows == 0 {
        1.0
    } else {
        (dim.mean_occupied_rows() / total_rows as f64).clamp(0.0, 1.0)
    };
    breakdown_with_gating(proc, dim, model, occupancy)
}

fn breakdown_with_gating(
    proc: &RunStats,
    dim: &DimStats,
    model: &PowerModel,
    idle_fraction: f64,
) -> EnergyBreakdown {
    let array_cycles = dim.total_array_cycles();
    EnergyBreakdown {
        core: model.core_active_power * proc.cycles as f64
            + model.core_stall_power * array_cycles as f64,
        // Array-executed instructions never touch instruction memory —
        // they replay out of the reconfiguration cache (paper §5.3).
        imem: model.imem_fetch_energy * proc.fetches as f64,
        dmem: model.dmem_access_energy * (proc.mem_accesses() + dim.array_mem_accesses()) as f64,
        array: model.array_op_energy * dim.array_instructions as f64
            + model.array_idle_power * array_cycles as f64 * idle_fraction,
        rcache: model.rcache_bit_energy * (dim.cache_bits_read + dim.cache_bits_written) as f64,
        bt: model.bt_observe_energy * dim.translated_instructions as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_cgra::ArrayShape;
    use dim_core::{System, SystemConfig};
    use dim_mips::asm::assemble;
    use dim_mips_sim::Machine;

    const LOOP: &str = "
        main: li $t0, 2000
              li $v0, 0
        loop: addu $v0, $v0, $t0
              xor  $t1, $v0, $t0
              addu $v0, $v0, $t1
              sll  $t2, $v0, 2
              addu $v0, $v0, $t2
              srl  $t3, $v0, 1
              xor  $v0, $v0, $t3
              addiu $t0, $t0, -1
              bnez $t0, loop
              break 0";

    #[test]
    fn acceleration_saves_energy_at_similar_power() {
        let program = assemble(LOOP).unwrap();
        let mut base = Machine::load(&program);
        base.run(1_000_000).unwrap();
        let mut sys = System::new(
            Machine::load(&program),
            SystemConfig::new(ArrayShape::config2(), 64, true),
        );
        sys.run(1_000_000).unwrap();

        let model = PowerModel::default();
        let e_base = energy_breakdown(&base.stats, &DimStats::default(), &model);
        let e_accel = energy_breakdown(&sys.machine().stats, sys.stats(), &model);

        // Fewer cycles and less total energy...
        assert!(sys.total_cycles() < base.stats.cycles);
        assert!(
            e_accel.total() < e_base.total(),
            "{e_accel:?} vs {e_base:?}"
        );
        // ...at broadly comparable average power per cycle.
        let p_base = e_base.average_power(base.stats.cycles).total();
        let p_accel = e_accel.average_power(sys.total_cycles()).total();
        let ratio = p_accel / p_base;
        assert!((0.4..=1.6).contains(&ratio), "power ratio {ratio}");
        // The instruction-memory share shrinks under acceleration.
        assert!(e_accel.imem < e_base.imem);
    }

    #[test]
    fn power_gating_only_reduces_array_static_energy() {
        let program = assemble(LOOP).unwrap();
        let mut sys = System::new(
            Machine::load(&program),
            SystemConfig::new(ArrayShape::config3(), 64, true),
        );
        sys.run(1_000_000).unwrap();
        let model = PowerModel::default();
        let plain = energy_breakdown(&sys.machine().stats, sys.stats(), &model);
        let gated = energy_breakdown_gated(&sys.machine().stats, sys.stats(), &model, 150);
        assert!(
            gated.array < plain.array,
            "{} !< {}",
            gated.array,
            plain.array
        );
        assert_eq!(gated.core, plain.core);
        assert_eq!(gated.imem, plain.imem);
        assert_eq!(gated.dmem, plain.dmem);
    }

    #[test]
    fn breakdown_components_nonnegative_and_total_consistent() {
        let mut proc = RunStats::new();
        proc.cycles = 100;
        proc.fetches = 90;
        proc.loads = 10;
        let mut dim = DimStats::new();
        dim.array_instructions = 50;
        dim.array_exec_cycles = 20;
        dim.cache_bits_read = 3000;
        dim.translated_instructions = 90;
        let e = energy_breakdown(&proc, &dim, &PowerModel::default());
        let sum = e.core + e.imem + e.dmem + e.array + e.rcache + e.bt;
        assert!((e.total() - sum).abs() < 1e-9);
        assert!(e.rcache > 0.0 && e.bt > 0.0);
    }
}
