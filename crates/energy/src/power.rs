//! Event-based power/energy model — the paper's Figures 5 and 6.
//!
//! Every event counted by the simulators carries an energy cost in
//! abstract 0.18µ-era units (think pJ at a nominal clock). Average power
//! per cycle (Figure 5) divides the accumulated energy by total cycles;
//! total energy (Figure 6) is the accumulation itself. The constants are
//! calibrated so the headline shapes hold: MIPS+array draws comparable
//! power per cycle (more in the core/array, less in instruction memory)
//! but finishes in fewer cycles, netting the ~1.7× energy saving the
//! paper reports for configuration #2 with 64 slots.

use crate::area::GateCosts;
use dim_cgra::{FabricHeat, UNIT_CLASSES};
use dim_core::DimStats;
use dim_mips_sim::RunStats;

/// Per-event energies and per-cycle powers (abstract units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Core power per pipeline-active cycle.
    pub core_active_power: f64,
    /// Core power per cycle spent waiting on the array.
    pub core_stall_power: f64,
    /// Instruction-memory energy per fetch.
    pub imem_fetch_energy: f64,
    /// Data-memory energy per access (either side).
    pub dmem_access_energy: f64,
    /// Array energy per executed operation.
    pub array_op_energy: f64,
    /// Array static/clock power per array-active cycle.
    pub array_idle_power: f64,
    /// Reconfiguration-cache energy per bit read or written.
    pub rcache_bit_energy: f64,
    /// Detection-hardware energy per examined instruction.
    pub bt_observe_energy: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            core_active_power: 30.0,
            core_stall_power: 10.0,
            imem_fetch_energy: 22.0,
            dmem_access_energy: 28.0,
            array_op_energy: 8.5,
            array_idle_power: 26.0,
            rcache_bit_energy: 0.004,
            bt_observe_energy: 1.5,
        }
    }
}

/// Energy per subsystem (the bar segments of Figures 5/6).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Processor core (pipeline + register file + stall clocking).
    pub core: f64,
    /// Instruction memory.
    pub imem: f64,
    /// Data memory.
    pub dmem: f64,
    /// Reconfigurable array (ops + static).
    pub array: f64,
    /// Reconfiguration cache.
    pub rcache: f64,
    /// DIM binary-translation hardware.
    pub bt: f64,
}

impl EnergyBreakdown {
    /// Total energy across subsystems.
    pub fn total(&self) -> f64 {
        self.core + self.imem + self.dmem + self.array + self.rcache + self.bt
    }

    /// Scales every component by `1/cycles`, yielding average power per
    /// cycle (Figure 5).
    pub fn average_power(&self, cycles: u64) -> EnergyBreakdown {
        let c = (cycles.max(1)) as f64;
        EnergyBreakdown {
            core: self.core / c,
            imem: self.imem / c,
            dmem: self.dmem / c,
            array: self.array / c,
            rcache: self.rcache / c,
            bt: self.bt / c,
        }
    }
}

/// Computes the energy breakdown of a run from processor-side and
/// accelerator-side statistics. Pass `DimStats::default()` for a plain
/// MIPS run.
///
/// ```
/// use dim_core::DimStats;
/// use dim_energy::{energy_breakdown, PowerModel};
/// use dim_mips_sim::RunStats;
///
/// let mut proc = RunStats::new();
/// proc.cycles = 1000;
/// proc.fetches = 900;
/// let e = energy_breakdown(&proc, &DimStats::default(), &PowerModel::default());
/// assert!(e.core > 0.0 && e.imem > 0.0 && e.array == 0.0);
/// ```
pub fn energy_breakdown(proc: &RunStats, dim: &DimStats, model: &PowerModel) -> EnergyBreakdown {
    breakdown_with_gating(proc, dim, model, 1.0)
}

/// Like [`energy_breakdown`], but with *power gating* of unused rows —
/// the paper's announced future work ("techniques to switch off
/// functional units when they are not being used"). The array's static
/// power is scaled by the fraction of rows actually occupied by the
/// executed configurations.
///
/// `total_rows` is the array height (e.g. `shape.rows`); occupancy comes
/// from [`DimStats::mean_occupied_rows`].
pub fn energy_breakdown_gated(
    proc: &RunStats,
    dim: &DimStats,
    model: &PowerModel,
    total_rows: usize,
) -> EnergyBreakdown {
    let occupancy = if total_rows == 0 {
        1.0
    } else {
        (dim.mean_occupied_rows() / total_rows as f64).clamp(0.0, 1.0)
    };
    breakdown_with_gating(proc, dim, model, occupancy)
}

/// The array component of [`EnergyBreakdown`], refined per unit class
/// into energy spent computing vs clocking idle silicon.
///
/// Indexing follows [`dim_cgra::UNIT_CLASS_NAMES`]: ALUs, multipliers,
/// load/store units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ArrayEnergySplit {
    /// Energy attributed to useful work: operation energy plus the
    /// static power of the windows in which a unit held an operation.
    pub active: [f64; UNIT_CLASSES],
    /// Static/clock energy of provisioned units that held no operation.
    pub idle: [f64; UNIT_CLASSES],
}

impl ArrayEnergySplit {
    /// Total active energy across unit classes.
    pub fn active_total(&self) -> f64 {
        self.active.iter().sum()
    }

    /// Total idle energy across unit classes.
    pub fn idle_total(&self) -> f64 {
        self.idle.iter().sum()
    }

    /// Active + idle; equals the `array` component of
    /// [`energy_breakdown`] for the same run.
    pub fn total(&self) -> f64 {
        self.active_total() + self.idle_total()
    }
}

/// Splits the array's energy into active vs idle per unit class, using
/// the fabric's busy counters and the Table 3a per-unit gate costs.
///
/// The operation energy is attributed per class by confirmed issues
/// (`heat.issued_ops`). The static energy — identical in total to the
/// static term of [`energy_breakdown`] — is apportioned across classes
/// by *provisioned silicon*: capacity thirds weighted by gates per unit
/// (an ALU third and a multiplier third do not cost the same leakage),
/// then divided within each class by that class's busy fraction. When
/// no capacity was recorded (infinite shape, or the array never ran)
/// the gate costs alone weight the classes and everything static is
/// idle.
///
/// `dim` and `heat` must come from the same run; the fabric's
/// conservation law (confirmed issues equal array-retired
/// instructions) is what makes the split sum exactly back to the
/// unsplit component.
pub fn array_energy_split(
    dim: &DimStats,
    heat: &FabricHeat,
    model: &PowerModel,
    costs: &GateCosts,
) -> ArrayEnergySplit {
    let class_gates: [f64; UNIT_CLASSES] =
        [costs.alu as f64, costs.multiplier as f64, costs.ldst as f64];
    let mut weight = [0f64; UNIT_CLASSES];
    for (c, w) in weight.iter_mut().enumerate() {
        *w = heat.capacity_thirds[c] as f64 * class_gates[c];
    }
    if weight.iter().sum::<f64>() == 0.0 {
        weight = class_gates;
    }
    let weight_total: f64 = weight.iter().sum();
    let static_total = model.array_idle_power * dim.total_array_cycles() as f64;

    let mut split = ArrayEnergySplit::default();
    for (c, &weight_c) in weight.iter().enumerate() {
        let static_c = static_total * weight_c / weight_total;
        let busy_fraction = if heat.capacity_thirds[c] == 0 {
            0.0
        } else {
            (heat.busy_thirds[c] as f64 / heat.capacity_thirds[c] as f64).clamp(0.0, 1.0)
        };
        split.active[c] =
            model.array_op_energy * heat.issued_ops[c] as f64 + static_c * busy_fraction;
        split.idle[c] = static_c * (1.0 - busy_fraction);
    }
    split
}

fn breakdown_with_gating(
    proc: &RunStats,
    dim: &DimStats,
    model: &PowerModel,
    idle_fraction: f64,
) -> EnergyBreakdown {
    let array_cycles = dim.total_array_cycles();
    EnergyBreakdown {
        core: model.core_active_power * proc.cycles as f64
            + model.core_stall_power * array_cycles as f64,
        // Array-executed instructions never touch instruction memory —
        // they replay out of the reconfiguration cache (paper §5.3).
        imem: model.imem_fetch_energy * proc.fetches as f64,
        dmem: model.dmem_access_energy * (proc.mem_accesses() + dim.array_mem_accesses()) as f64,
        array: model.array_op_energy * dim.array_instructions as f64
            + model.array_idle_power * array_cycles as f64 * idle_fraction,
        rcache: model.rcache_bit_energy * (dim.cache_bits_read + dim.cache_bits_written) as f64,
        bt: model.bt_observe_energy * dim.translated_instructions as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_cgra::ArrayShape;
    use dim_core::{System, SystemConfig};
    use dim_mips::asm::assemble;
    use dim_mips_sim::Machine;

    const LOOP: &str = "
        main: li $t0, 2000
              li $v0, 0
        loop: addu $v0, $v0, $t0
              xor  $t1, $v0, $t0
              addu $v0, $v0, $t1
              sll  $t2, $v0, 2
              addu $v0, $v0, $t2
              srl  $t3, $v0, 1
              xor  $v0, $v0, $t3
              addiu $t0, $t0, -1
              bnez $t0, loop
              break 0";

    #[test]
    fn acceleration_saves_energy_at_similar_power() {
        let program = assemble(LOOP).unwrap();
        let mut base = Machine::load(&program);
        base.run(1_000_000).unwrap();
        let mut sys = System::new(
            Machine::load(&program),
            SystemConfig::new(ArrayShape::config2(), 64, true),
        );
        sys.run(1_000_000).unwrap();

        let model = PowerModel::default();
        let e_base = energy_breakdown(&base.stats, &DimStats::default(), &model);
        let e_accel = energy_breakdown(&sys.machine().stats, sys.stats(), &model);

        // Fewer cycles and less total energy...
        assert!(sys.total_cycles() < base.stats.cycles);
        assert!(
            e_accel.total() < e_base.total(),
            "{e_accel:?} vs {e_base:?}"
        );
        // ...at broadly comparable average power per cycle.
        let p_base = e_base.average_power(base.stats.cycles).total();
        let p_accel = e_accel.average_power(sys.total_cycles()).total();
        let ratio = p_accel / p_base;
        assert!((0.4..=1.6).contains(&ratio), "power ratio {ratio}");
        // The instruction-memory share shrinks under acceleration.
        assert!(e_accel.imem < e_base.imem);
    }

    #[test]
    fn power_gating_only_reduces_array_static_energy() {
        let program = assemble(LOOP).unwrap();
        let mut sys = System::new(
            Machine::load(&program),
            SystemConfig::new(ArrayShape::config3(), 64, true),
        );
        sys.run(1_000_000).unwrap();
        let model = PowerModel::default();
        let plain = energy_breakdown(&sys.machine().stats, sys.stats(), &model);
        let gated = energy_breakdown_gated(&sys.machine().stats, sys.stats(), &model, 150);
        assert!(
            gated.array < plain.array,
            "{} !< {}",
            gated.array,
            plain.array
        );
        assert_eq!(gated.core, plain.core);
        assert_eq!(gated.imem, plain.imem);
        assert_eq!(gated.dmem, plain.dmem);
    }

    /// Touches all three unit classes: ALU work, a multiply, and
    /// memory traffic through the array.
    const MIXED: &str = "
        .data
        buf: .space 256
        .text
        main: li $t0, 1500
              la $s1, buf
              li $v0, 0
        loop: andi $t3, $t0, 63
              sll  $t4, $t3, 2
              addu $t5, $s1, $t4
              sw   $v0, 0($t5)
              lw   $t6, 0($t5)
              mul  $t7, $t6, $t0
              addu $v0, $v0, $t7
              addiu $t0, $t0, -1
              bnez $t0, loop
              break 0";

    #[test]
    fn split_sums_to_unsplit_array_energy() {
        let program = assemble(MIXED).unwrap();
        let mut sys = System::new(
            Machine::load(&program),
            SystemConfig::new(ArrayShape::config2(), 64, true),
        );
        sys.run(1_000_000).unwrap();
        assert!(sys.stats().array_invocations > 0, "array never engaged");

        let model = PowerModel::default();
        let costs = GateCosts::default();
        let e = energy_breakdown(&sys.machine().stats, sys.stats(), &model);
        let split = array_energy_split(sys.stats(), sys.fabric_heat(), &model, &costs);

        // The refinement is exact: active + idle recompose the unsplit
        // array component, which is itself Table 3-calibrated.
        let err = (split.total() - e.array).abs();
        assert!(
            err <= 1e-6 * e.array.max(1.0),
            "split {} vs array {} (err {err})",
            split.total(),
            e.array
        );
        for c in 0..UNIT_CLASSES {
            assert!(split.active[c] >= 0.0 && split.idle[c] >= 0.0);
        }
        // Every class did real work on this kernel.
        assert!(split.active.iter().all(|&a| a > 0.0), "{split:?}");
        // A sparse fabric clocks more silicon than it uses.
        assert!(split.idle_total() > 0.0);
    }

    #[test]
    fn static_split_follows_table3_gate_costs() {
        // The per-unit weights are exactly the Table 3a arithmetic in
        // results/table3_area.txt: units x gates-per-unit.
        let costs = GateCosts::default();
        assert_eq!(costs.alu * 192, 300_288);
        assert_eq!(costs.multiplier * 6, 40_134);
        assert_eq!(costs.ldst * 36, 1_980);

        // With equal capacity and zero busy everywhere, the idle energy
        // divides in gate-cost proportion.
        let mut heat = FabricHeat::new();
        for c in 0..UNIT_CLASSES {
            heat.capacity_thirds[c] = 900;
        }
        let mut dim = DimStats::new();
        dim.array_exec_cycles = 40;
        let model = PowerModel::default();
        let split = array_energy_split(&dim, &heat, &model, &costs);
        assert_eq!(split.active_total(), 0.0);
        let ratio = split.idle[1] / split.idle[0];
        let expected = costs.multiplier as f64 / costs.alu as f64;
        assert!((ratio - expected).abs() < 1e-9, "{ratio} vs {expected}");
        let total = model.array_idle_power * dim.total_array_cycles() as f64;
        assert!((split.idle_total() - total).abs() < 1e-9 * total);

        // No recorded capacity: everything static lands in idle and the
        // sum identity still holds.
        let empty = array_energy_split(&dim, &FabricHeat::new(), &model, &costs);
        assert_eq!(empty.active_total(), 0.0);
        assert!((empty.idle_total() - total).abs() < 1e-9 * total);
    }

    #[test]
    fn breakdown_components_nonnegative_and_total_consistent() {
        let mut proc = RunStats::new();
        proc.cycles = 100;
        proc.fetches = 90;
        proc.loads = 10;
        let mut dim = DimStats::new();
        dim.array_instructions = 50;
        dim.array_exec_cycles = 20;
        dim.cache_bits_read = 3000;
        dim.translated_instructions = 90;
        let e = energy_breakdown(&proc, &dim, &PowerModel::default());
        let sum = e.core + e.imem + e.dmem + e.array + e.rcache + e.bt;
        assert!((e.total() - sum).abs() < 1e-9);
        assert!(e.rcache > 0.0 && e.bt > 0.0);
    }
}
