//! # dim-energy
//!
//! Area, power and energy models for the DIM reproduction:
//!
//! * [`area_report`] — Table 3a gate counts from per-unit costs
//!   calibrated against the paper's TSMC 0.18µ synthesis results;
//! * [`energy_breakdown`] — the event-based energy model behind
//!   Figures 5 (average power per cycle) and 6 (total energy);
//! * re-exported [`cache_bytes`](dim_cgra::cache_bytes) sizes the
//!   reconfiguration cache (Table 3c).
//!
//! ```
//! use dim_cgra::ArrayShape;
//! use dim_energy::{area_report, GateCosts};
//! let gates = area_report(&ArrayShape::config1(), &GateCosts::default()).total_gates();
//! assert!(gates > 600_000);
//! ```

#![warn(missing_docs)]

mod area;
mod power;

pub use area::{area_report, AreaReport, GateCosts};
pub use power::{
    array_energy_split, energy_breakdown, energy_breakdown_gated, ArrayEnergySplit,
    EnergyBreakdown, PowerModel,
};
