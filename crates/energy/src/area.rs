//! Gate-count area model — the paper's Table 3a.
//!
//! Per-unit gate costs are calibrated from Table 3a's totals for
//! configuration #1 (e.g. 192 ALUs = 300,288 gates → 1,564 gates per
//! ALU, synthesized with the TSMC 0.18µ library).

use dim_cgra::{ArrayShape, UnitCounts};

/// Gates per functional unit / multiplexer, plus the DIM detection logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateCosts {
    /// One ALU/shifter/comparator.
    pub alu: u64,
    /// One 32×32 multiplier.
    pub multiplier: u64,
    /// One load/store unit (address path only; the port is in the cache).
    pub ldst: u64,
    /// One input (operand-select) multiplexer.
    pub input_mux: u64,
    /// One output (bus-line) multiplexer.
    pub output_mux: u64,
    /// The whole DIM binary-translation hardware.
    pub dim_hardware: u64,
    /// Transistors per gate (NAND/NOR equivalent).
    pub transistors_per_gate: u64,
}

impl Default for GateCosts {
    fn default() -> Self {
        GateCosts {
            alu: 1_564,        // 300,288 / 192
            multiplier: 6_689, // 40,134 / 6
            ldst: 55,          // 1,968 / 36 (rounded)
            input_mux: 642,    // 261,936 / 408
            output_mux: 272,   // 58,752 / 216
            dim_hardware: 1_024,
            transistors_per_gate: 4,
        }
    }
}

/// Area of one array + DIM instance (Table 3a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaReport {
    /// Physical unit counts of the shape.
    pub units: UnitCounts,
    /// Gates in ALUs.
    pub alu_gates: u64,
    /// Gates in multipliers.
    pub mult_gates: u64,
    /// Gates in LD/ST units.
    pub ldst_gates: u64,
    /// Gates in input muxes.
    pub input_mux_gates: u64,
    /// Gates in output muxes.
    pub output_mux_gates: u64,
    /// Gates in the DIM detection hardware.
    pub dim_gates: u64,
}

impl AreaReport {
    /// Total gate count.
    pub fn total_gates(&self) -> u64 {
        self.alu_gates
            + self.mult_gates
            + self.ldst_gates
            + self.input_mux_gates
            + self.output_mux_gates
            + self.dim_gates
    }

    /// Total transistors (4 per NAND/NOR-equivalent gate, as the paper
    /// assumes when comparing against the 2.4M-transistor R10000 core).
    pub fn total_transistors(&self, costs: &GateCosts) -> u64 {
        self.total_gates() * costs.transistors_per_gate
    }
}

/// Computes the Table 3a area report for a shape.
///
/// ```
/// use dim_cgra::ArrayShape;
/// use dim_energy::{area_report, GateCosts};
/// let report = area_report(&ArrayShape::config1(), &GateCosts::default());
/// // Paper: 664,102 gates total for configuration #1.
/// assert!((600_000..=720_000).contains(&report.total_gates()));
/// ```
pub fn area_report(shape: &ArrayShape, costs: &GateCosts) -> AreaReport {
    let units = shape.physical_units();
    AreaReport {
        units,
        alu_gates: units.alus as u64 * costs.alu,
        mult_gates: units.mults as u64 * costs.multiplier,
        ldst_gates: units.ldsts as u64 * costs.ldst,
        input_mux_gates: units.input_muxes as u64 * costs.input_mux,
        output_mux_gates: units.output_muxes as u64 * costs.output_mux,
        dim_gates: costs.dim_hardware,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config1_matches_table3a() {
        let r = area_report(&ArrayShape::config1(), &GateCosts::default());
        assert_eq!(r.alu_gates, 192 * 1_564); // 300,288
        assert_eq!(r.mult_gates, 6 * 6_689); // 40,134
        assert_eq!(r.ldst_gates, 36 * 55); // 1,980 ≈ 1,968
        assert_eq!(r.output_mux_gates, 216 * 272); // 58,752
        assert_eq!(r.dim_gates, 1_024);
        // Paper total: 664,102. Input-mux count is structural (432 vs the
        // paper's 408), so the total lands slightly above.
        let total = r.total_gates();
        assert!((640_000..=700_000).contains(&total), "{total}");
        // ~2.66M transistors, comparable to the paper's claim.
        let t = r.total_transistors(&GateCosts::default());
        assert!((2_500_000..=2_850_000).contains(&t), "{t}");
    }

    #[test]
    fn larger_shapes_cost_more() {
        let c = GateCosts::default();
        let a1 = area_report(&ArrayShape::config1(), &c).total_gates();
        let a2 = area_report(&ArrayShape::config2(), &c).total_gates();
        let a3 = area_report(&ArrayShape::config3(), &c).total_gates();
        assert!(a1 < a2 && a2 < a3);
    }
}
