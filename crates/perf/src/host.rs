//! Host-side measurements: wall clock, throughput, peak RSS.

/// Peak resident set size of the current process in bytes.
///
/// Read from `/proc/self/status` (`VmHWM`); returns `None` on platforms
/// without procfs so recording degrades gracefully rather than failing.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Millions of simulated instructions retired per host second.
///
/// The standard simulator-throughput figure: how much simulated work the
/// host gets through, independent of what the simulated cycles say.
pub fn sim_mips(retired_instructions: u64, wall_nanos: u64) -> f64 {
    if wall_nanos == 0 {
        return 0.0;
    }
    let seconds = wall_nanos as f64 / 1e9;
    retired_instructions as f64 / seconds / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_mips_math() {
        // 2M instructions in half a second = 4 MIPS.
        assert!((sim_mips(2_000_000, 500_000_000) - 4.0).abs() < 1e-9);
        assert_eq!(sim_mips(100, 0), 0.0);
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(bytes) = peak_rss_bytes() {
            // A running test binary occupies at least a page and (sanity
            // bound) less than a terabyte.
            assert!(bytes >= 4096);
            assert!(bytes < 1 << 40);
        }
    }
}
