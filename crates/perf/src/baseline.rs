//! The versioned on-disk baseline format.
//!
//! A baseline is one JSON object: schema version, a human-chosen name,
//! the exact record matrix it was captured with (so a gate can re-record
//! under identical parameters), and one record per workload. Parsing
//! validates the schema invariants — most importantly that every
//! workload's six attribution columns sum *exactly* to its accelerated
//! cycle total.

use crate::PerfError;
use dim_core::CycleBreakdown;
use dim_obs::{parse_json, JsonValue, ObjectWriter};

/// Version of the baseline file format.
///
/// Compatibility policy matches the trace schema: readers reject files
/// declaring a newer version and ignore unknown fields within a known
/// version.
pub const BASELINE_SCHEMA_VERSION: u32 = 1;

/// Reconfiguration-cache behaviour during the accelerated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RcacheCounters {
    /// Lookups that found a cached configuration.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Configurations inserted.
    pub inserts: u64,
    /// Insertions that displaced an entry.
    pub evictions: u64,
    /// Configurations flushed after repeated misspeculation.
    pub flushes: u64,
}

/// One hot region's footprint during the recording run: the key
/// (detection PC + covered length) plus the cycles `dim explain`
/// attributes to it. Baselines embed the top few so `perf compare` can
/// name the region a cycle regression moved into, not just the phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionSummary {
    /// Detection PC of the translated region.
    pub pc: u32,
    /// Instructions the configuration covers.
    pub len: u32,
    /// Cycles attributed to the region (translate windows + array).
    pub cycles: u64,
    /// Array invocations that entered at this PC.
    pub invocations: u64,
    /// Speculative mispredicts charged to the region.
    pub mispredicts: u64,
}

/// Fabric-utilization counters from the accelerated run — the raw
/// integers behind the gate's direction-aware utilization metrics.
/// Baselines recorded before fabric observability existed lack the
/// field entirely; it is omitted from the JSON then (the `regions`
/// pattern), so older files parse and older readers are not confused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricSummary {
    /// Unit-window thirds in which an ALU held a confirmed operation.
    pub alu_busy_thirds: u64,
    /// ALU thirds provisioned across occupied rows.
    pub alu_capacity_thirds: u64,
    /// Busy thirds for the multipliers.
    pub mult_busy_thirds: u64,
    /// Provisioned thirds for the multipliers.
    pub mult_capacity_thirds: u64,
    /// Busy thirds for the load/store units.
    pub ldst_busy_thirds: u64,
    /// Provisioned thirds for the load/store units.
    pub ldst_capacity_thirds: u64,
    /// Registers written back after configurations.
    pub writeback_writes: u64,
    /// Writeback slots available over those configurations.
    pub writeback_slots: u64,
}

impl FabricSummary {
    /// Busy thirds summed across unit classes.
    pub fn busy_total(&self) -> u64 {
        self.alu_busy_thirds + self.mult_busy_thirds + self.ldst_busy_thirds
    }

    /// Capacity thirds summed across unit classes.
    pub fn capacity_total(&self) -> u64 {
        self.alu_capacity_thirds + self.mult_capacity_thirds + self.ldst_capacity_thirds
    }
}

/// Host-side (non-deterministic) measurements for one workload.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostTelemetry {
    /// Fastest accelerated run over [`reps`](HostTelemetry::reps)
    /// repetitions, in nanoseconds — min-of-N filters scheduler noise.
    pub wall_nanos_min: u64,
    /// Mean wall time over the repetitions, in nanoseconds.
    pub wall_nanos_mean: f64,
    /// Repetitions measured.
    pub reps: u32,
    /// Millions of simulated instructions retired per host second,
    /// computed from the fastest repetition.
    pub sim_mips: f64,
    /// Peak resident set size of the recording process in bytes
    /// (0 when the platform does not expose it).
    pub peak_rss_bytes: u64,
}

/// Everything recorded about one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRecord {
    /// Workload name from the suite.
    pub name: String,
    /// Cycles on the plain scalar pipeline.
    pub scalar_cycles: u64,
    /// Total simulated cycles on the accelerated system.
    pub accel_cycles: u64,
    /// `scalar_cycles / accel_cycles`.
    pub speedup: f64,
    /// Pipeline instructions retired during the accelerated run.
    pub retired: u64,
    /// Array invocations during the accelerated run.
    pub array_invocations: u64,
    /// Exact per-phase attribution; sums to
    /// [`accel_cycles`](WorkloadRecord::accel_cycles).
    pub attribution: CycleBreakdown,
    /// Reconfiguration-cache counters.
    pub rcache: RcacheCounters,
    /// Host telemetry.
    pub host: HostTelemetry,
    /// Top regions by attributed cycles (empty in baselines recorded
    /// before region forensics existed; omitted from the JSON then, so
    /// older files parse and older readers are not confused).
    pub regions: Vec<RegionSummary>,
    /// Fabric-utilization counters (`None` in baselines recorded before
    /// fabric observability existed; omitted from the JSON then).
    pub fabric: Option<FabricSummary>,
}

/// The workload matrix a baseline was recorded under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordMatrix {
    /// Workload names, in recording order.
    pub workloads: Vec<String>,
    /// Input scale: `tiny`, `small`, or `full`.
    pub scale: String,
    /// Array shape from Table 1 (1, 2 or 3).
    pub shape: u32,
    /// Reconfiguration-cache capacity in slots.
    pub cache_slots: u64,
    /// Whether branch speculation was enabled.
    pub speculation: bool,
    /// Wall-clock repetitions per workload.
    pub host_reps: u32,
}

/// A complete baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Format version ([`BASELINE_SCHEMA_VERSION`] when written here).
    pub schema_version: u32,
    /// Human-chosen baseline name (e.g. `ci`).
    pub name: String,
    /// The matrix it was recorded under.
    pub matrix: RecordMatrix,
    /// One record per workload, in matrix order.
    pub workloads: Vec<WorkloadRecord>,
}

impl Baseline {
    /// Serializes the baseline as pretty-enough single-object JSON
    /// (one workload per line for reviewable diffs).
    pub fn to_json(&self) -> String {
        let mut matrix = ObjectWriter::new();
        let mut names = String::from("[");
        for (i, w) in self.matrix.workloads.iter().enumerate() {
            if i > 0 {
                names.push(',');
            }
            let mut s = String::new();
            dim_obs::write_escaped(&mut s, w);
            names.push_str(&s);
        }
        names.push(']');
        matrix.field_raw("workloads", &names);
        matrix.field_str("scale", &self.matrix.scale);
        matrix.field_u64("shape", self.matrix.shape as u64);
        matrix.field_u64("cache_slots", self.matrix.cache_slots);
        matrix.field_bool("speculation", self.matrix.speculation);
        matrix.field_u64("host_reps", self.matrix.host_reps as u64);

        let mut out = String::from("{\n");
        out.push_str(&format!("\"schema_version\": {},\n", self.schema_version));
        let mut name = String::new();
        dim_obs::write_escaped(&mut name, &self.name);
        out.push_str(&format!("\"name\": {name},\n"));
        out.push_str(&format!("\"matrix\": {},\n", matrix.finish()));
        out.push_str("\"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(&w.to_json());
            if i + 1 < self.workloads.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses and validates a baseline file.
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON, a newer schema version, duplicate
    /// workload names, and any workload whose attribution columns do
    /// not sum to its accelerated cycle total.
    pub fn parse(text: &str) -> Result<Baseline, PerfError> {
        let v = parse_json(text).map_err(|e| PerfError::Parse(format!("baseline: {e}")))?;
        let schema_version = get_u64(&v, "schema_version")? as u32;
        if schema_version > BASELINE_SCHEMA_VERSION {
            return Err(PerfError::Parse(format!(
                "baseline schema version {schema_version} is newer than supported \
                 {BASELINE_SCHEMA_VERSION}"
            )));
        }
        let matrix_v = v
            .get("matrix")
            .ok_or_else(|| PerfError::Parse("baseline: missing `matrix`".into()))?;
        let matrix = RecordMatrix {
            workloads: matrix_v
                .get("workloads")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| PerfError::Parse("baseline: missing `matrix.workloads`".into()))?
                .iter()
                .map(|w| {
                    w.as_str().map(str::to_string).ok_or_else(|| {
                        PerfError::Parse("baseline: non-string workload name".into())
                    })
                })
                .collect::<Result<_, _>>()?,
            scale: get_str(matrix_v, "scale")?,
            shape: get_u64(matrix_v, "shape")? as u32,
            cache_slots: get_u64(matrix_v, "cache_slots")?,
            speculation: matrix_v
                .get("speculation")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| PerfError::Parse("baseline: missing `matrix.speculation`".into()))?,
            host_reps: get_u64(matrix_v, "host_reps")? as u32,
        };
        let mut workloads = Vec::new();
        for w in v
            .get("workloads")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| PerfError::Parse("baseline: missing `workloads` array".into()))?
        {
            workloads.push(WorkloadRecord::parse(w)?);
        }
        for pair in workloads.windows(2) {
            if workloads.iter().filter(|w| w.name == pair[0].name).count() > 1 {
                return Err(PerfError::Parse(format!(
                    "baseline: duplicate workload `{}`",
                    pair[0].name
                )));
            }
        }
        Ok(Baseline {
            schema_version,
            name: get_str(&v, "name")?,
            matrix,
            workloads,
        })
    }

    /// The record for `name`, if present.
    pub fn workload(&self, name: &str) -> Option<&WorkloadRecord> {
        self.workloads.iter().find(|w| w.name == name)
    }
}

impl WorkloadRecord {
    /// Serializes the record as one JSON object on one line.
    pub fn to_json(&self) -> String {
        let mut attr = ObjectWriter::new();
        for (name, cycles) in self.attribution.named() {
            attr.field_u64(name, cycles);
        }
        let mut rc = ObjectWriter::new();
        rc.field_u64("hits", self.rcache.hits);
        rc.field_u64("misses", self.rcache.misses);
        rc.field_u64("inserts", self.rcache.inserts);
        rc.field_u64("evictions", self.rcache.evictions);
        rc.field_u64("flushes", self.rcache.flushes);
        let mut host = ObjectWriter::new();
        host.field_u64("wall_nanos_min", self.host.wall_nanos_min);
        host.field_f64("wall_nanos_mean", self.host.wall_nanos_mean);
        host.field_u64("reps", self.host.reps as u64);
        host.field_f64("sim_mips", self.host.sim_mips);
        host.field_u64("peak_rss_bytes", self.host.peak_rss_bytes);
        let mut o = ObjectWriter::new();
        o.field_str("name", &self.name);
        o.field_u64("scalar_cycles", self.scalar_cycles);
        o.field_u64("accel_cycles", self.accel_cycles);
        o.field_f64("speedup", self.speedup);
        o.field_u64("retired", self.retired);
        o.field_u64("array_invocations", self.array_invocations);
        o.field_raw("attribution", &attr.finish());
        o.field_raw("rcache", &rc.finish());
        o.field_raw("host", &host.finish());
        if !self.regions.is_empty() {
            let mut regions = String::from("[");
            for (i, r) in self.regions.iter().enumerate() {
                if i > 0 {
                    regions.push(',');
                }
                let mut ro = ObjectWriter::new();
                ro.field_u64("pc", r.pc as u64);
                ro.field_u64("len", r.len as u64);
                ro.field_u64("cycles", r.cycles);
                ro.field_u64("invocations", r.invocations);
                ro.field_u64("mispredicts", r.mispredicts);
                regions.push_str(&ro.finish());
            }
            regions.push(']');
            o.field_raw("regions", &regions);
        }
        if let Some(f) = &self.fabric {
            let mut fo = ObjectWriter::new();
            fo.field_u64("alu_busy_thirds", f.alu_busy_thirds);
            fo.field_u64("alu_capacity_thirds", f.alu_capacity_thirds);
            fo.field_u64("mult_busy_thirds", f.mult_busy_thirds);
            fo.field_u64("mult_capacity_thirds", f.mult_capacity_thirds);
            fo.field_u64("ldst_busy_thirds", f.ldst_busy_thirds);
            fo.field_u64("ldst_capacity_thirds", f.ldst_capacity_thirds);
            fo.field_u64("writeback_writes", f.writeback_writes);
            fo.field_u64("writeback_slots", f.writeback_slots);
            o.field_raw("fabric", &fo.finish());
        }
        o.finish()
    }

    fn parse(v: &JsonValue) -> Result<WorkloadRecord, PerfError> {
        let name = get_str(v, "name")?;
        let attr_v = v
            .get("attribution")
            .ok_or_else(|| PerfError::Parse(format!("workload `{name}`: missing attribution")))?;
        let attribution = CycleBreakdown {
            pipeline: get_u64(attr_v, "pipeline")?,
            i_stall: get_u64(attr_v, "i_stall")?,
            d_stall: get_u64(attr_v, "d_stall")?,
            reconfig_stall: get_u64(attr_v, "reconfig_stall")?,
            array_exec: get_u64(attr_v, "array_exec")?,
            writeback_tail: get_u64(attr_v, "writeback_tail")?,
        };
        let rc_v = v
            .get("rcache")
            .ok_or_else(|| PerfError::Parse(format!("workload `{name}`: missing rcache")))?;
        let host_v = v
            .get("host")
            .ok_or_else(|| PerfError::Parse(format!("workload `{name}`: missing host")))?;
        let mut regions = Vec::new();
        if let Some(list) = v.get("regions").and_then(JsonValue::as_array) {
            for r in list {
                regions.push(RegionSummary {
                    pc: get_u64(r, "pc")? as u32,
                    len: get_u64(r, "len")? as u32,
                    cycles: get_u64(r, "cycles")?,
                    invocations: get_u64(r, "invocations")?,
                    mispredicts: get_u64(r, "mispredicts")?,
                });
            }
        }
        let fabric = match v.get("fabric") {
            Some(fv) => {
                let f = FabricSummary {
                    alu_busy_thirds: get_u64(fv, "alu_busy_thirds")?,
                    alu_capacity_thirds: get_u64(fv, "alu_capacity_thirds")?,
                    mult_busy_thirds: get_u64(fv, "mult_busy_thirds")?,
                    mult_capacity_thirds: get_u64(fv, "mult_capacity_thirds")?,
                    ldst_busy_thirds: get_u64(fv, "ldst_busy_thirds")?,
                    ldst_capacity_thirds: get_u64(fv, "ldst_capacity_thirds")?,
                    writeback_writes: get_u64(fv, "writeback_writes")?,
                    writeback_slots: get_u64(fv, "writeback_slots")?,
                };
                // Baselines only record finite Table 1 shapes, where
                // busy can never exceed capacity.
                for (class, busy, cap) in [
                    ("alu", f.alu_busy_thirds, f.alu_capacity_thirds),
                    ("mult", f.mult_busy_thirds, f.mult_capacity_thirds),
                    ("ldst", f.ldst_busy_thirds, f.ldst_capacity_thirds),
                ] {
                    if busy > cap {
                        return Err(PerfError::Parse(format!(
                            "workload `{name}`: fabric {class} busy {busy} exceeds capacity {cap}"
                        )));
                    }
                }
                Some(f)
            }
            None => None,
        };
        let record = WorkloadRecord {
            scalar_cycles: get_u64(v, "scalar_cycles")?,
            accel_cycles: get_u64(v, "accel_cycles")?,
            speedup: get_f64(v, "speedup")?,
            retired: get_u64(v, "retired")?,
            array_invocations: get_u64(v, "array_invocations")?,
            attribution,
            rcache: RcacheCounters {
                hits: get_u64(rc_v, "hits")?,
                misses: get_u64(rc_v, "misses")?,
                inserts: get_u64(rc_v, "inserts")?,
                evictions: get_u64(rc_v, "evictions")?,
                flushes: get_u64(rc_v, "flushes")?,
            },
            host: HostTelemetry {
                wall_nanos_min: get_u64(host_v, "wall_nanos_min")?,
                wall_nanos_mean: get_f64(host_v, "wall_nanos_mean")?,
                reps: get_u64(host_v, "reps")? as u32,
                sim_mips: get_f64(host_v, "sim_mips")?,
                peak_rss_bytes: get_u64(host_v, "peak_rss_bytes")?,
            },
            regions,
            fabric,
            name,
        };
        if record.attribution.total() != record.accel_cycles {
            return Err(PerfError::Parse(format!(
                "workload `{}`: attribution columns sum to {} but accel_cycles is {}",
                record.name,
                record.attribution.total(),
                record.accel_cycles
            )));
        }
        Ok(record)
    }
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, PerfError> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| PerfError::Parse(format!("missing or non-integer field `{key}`")))
}

fn get_f64(v: &JsonValue, key: &str) -> Result<f64, PerfError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| PerfError::Parse(format!("missing or non-numeric field `{key}`")))
}

fn get_str(v: &JsonValue, key: &str) -> Result<String, PerfError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| PerfError::Parse(format!("missing or non-string field `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> Baseline {
        Baseline {
            schema_version: BASELINE_SCHEMA_VERSION,
            name: "test".into(),
            matrix: RecordMatrix {
                workloads: vec!["crc32".into()],
                scale: "tiny".into(),
                shape: 1,
                cache_slots: 64,
                speculation: true,
                host_reps: 2,
            },
            workloads: vec![WorkloadRecord {
                name: "crc32".into(),
                scalar_cycles: 1000,
                accel_cycles: 600,
                speedup: 1000.0 / 600.0,
                retired: 400,
                array_invocations: 10,
                attribution: CycleBreakdown {
                    pipeline: 400,
                    i_stall: 50,
                    d_stall: 50,
                    reconfig_stall: 40,
                    array_exec: 50,
                    writeback_tail: 10,
                },
                rcache: RcacheCounters {
                    hits: 9,
                    misses: 1,
                    inserts: 1,
                    evictions: 0,
                    flushes: 0,
                },
                host: HostTelemetry {
                    wall_nanos_min: 12345,
                    wall_nanos_mean: 13000.5,
                    reps: 2,
                    sim_mips: 32.4,
                    peak_rss_bytes: 1 << 20,
                },
                regions: vec![],
                fabric: None,
            }],
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let b = sample();
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn json_roundtrip_preserves_regions() {
        let mut b = sample();
        b.workloads[0].regions = vec![
            RegionSummary {
                pc: 0x400,
                len: 7,
                cycles: 90,
                invocations: 9,
                mispredicts: 1,
            },
            RegionSummary {
                pc: 0x440,
                len: 3,
                cycles: 10,
                invocations: 1,
                mispredicts: 0,
            },
        ];
        let json = b.to_json();
        assert!(json.contains("\"regions\""), "{json}");
        let parsed = Baseline::parse(&json).unwrap();
        assert_eq!(parsed, b);
        // A region-free record keeps the field out entirely, so files
        // from before region forensics stay byte-stable.
        assert!(!sample().to_json().contains("\"regions\""));
    }

    #[test]
    fn json_roundtrip_preserves_fabric() {
        let mut b = sample();
        b.workloads[0].fabric = Some(FabricSummary {
            alu_busy_thirds: 120,
            alu_capacity_thirds: 480,
            mult_busy_thirds: 18,
            mult_capacity_thirds: 72,
            ldst_busy_thirds: 9,
            ldst_capacity_thirds: 36,
            writeback_writes: 30,
            writeback_slots: 90,
        });
        let json = b.to_json();
        assert!(json.contains("\"fabric\""), "{json}");
        let parsed = Baseline::parse(&json).unwrap();
        assert_eq!(parsed, b);
        // A fabric-free record keeps the field out entirely, so files
        // from before fabric observability stay byte-stable.
        assert!(!sample().to_json().contains("\"fabric\""));
    }

    #[test]
    fn rejects_fabric_busy_beyond_capacity() {
        let mut b = sample();
        b.workloads[0].fabric = Some(FabricSummary {
            alu_busy_thirds: 500,
            alu_capacity_thirds: 480,
            ..FabricSummary::default()
        });
        let e = Baseline::parse(&b.to_json()).unwrap_err();
        assert!(e.to_string().contains("exceeds capacity"), "{e}");
    }

    #[test]
    fn rejects_newer_schema_version() {
        let mut b = sample();
        b.schema_version = BASELINE_SCHEMA_VERSION + 1;
        let e = Baseline::parse(&b.to_json()).unwrap_err();
        assert!(e.to_string().contains("newer"), "{e}");
    }

    #[test]
    fn rejects_attribution_that_does_not_sum() {
        let mut b = sample();
        b.workloads[0].accel_cycles += 1; // attribution now under-counts
        let e = Baseline::parse(&b.to_json()).unwrap_err();
        assert!(e.to_string().contains("attribution"), "{e}");
    }

    #[test]
    fn rejects_duplicate_workloads() {
        let mut b = sample();
        let dup = b.workloads[0].clone();
        b.workloads.push(dup);
        let e = Baseline::parse(&b.to_json()).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
    }

    #[test]
    fn ignores_unknown_fields() {
        let b = sample();
        let json = b.to_json().replace(
            "\"schema_version\": 1,",
            "\"schema_version\": 1,\n\"generator\": \"future-tool\",",
        );
        let parsed = Baseline::parse(&json).unwrap();
        assert_eq!(parsed, b);
    }
}
