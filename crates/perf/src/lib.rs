//! Performance tracking for the DIM reproduction.
//!
//! Three operations, mirroring the `dim perf` CLI verbs:
//!
//! - **record** ([`record`]) runs a workload matrix and captures, per
//!   workload, the simulated metrics (scalar/accelerated cycles,
//!   speedup, exact per-phase cycle attribution, reconfiguration-cache
//!   counters) and host telemetry (min-of-N wall clock, simulated-MIPS
//!   throughput, peak RSS) into a versioned [`Baseline`].
//! - **compare** ([`compare`]) diffs two baselines metric by metric,
//!   with an attribution waterfall showing *where* the cycles moved.
//! - **gate** ([`gate`]) checks a current baseline against a reference
//!   under a per-metric [`ToleranceSpec`] and reports regressions —
//!   tight (default zero) tolerances for deterministic simulated
//!   metrics, loose statistical ones for host wall-clock.
//!
//! Simulated metrics are bit-deterministic across hosts, so a committed
//! baseline gates CI on *any* cycle-count change; host metrics exist to
//! spot order-of-magnitude harness regressions, not single percents.

mod baseline;
mod compare;
mod gate;
mod host;
mod record;

pub use baseline::{
    Baseline, FabricSummary, HostTelemetry, RcacheCounters, RecordMatrix, WorkloadRecord,
    BASELINE_SCHEMA_VERSION,
};
pub use compare::{compare, Comparison, MetricDelta, WorkloadDiff};
pub use gate::{gate, GateFinding, GateOutcome, ToleranceSpec};
pub use host::{peak_rss_bytes, sim_mips};
pub use record::{bench_perf_json, record, RecordOptions};

use std::fmt;

/// Errors from recording, parsing, or gating.
#[derive(Debug)]
pub enum PerfError {
    /// A workload failed to run or validate (fatal: the simulator or a
    /// kernel is broken, not merely slow).
    Workload(dim_workloads::WorkloadError),
    /// A requested workload name does not exist in the suite.
    UnknownWorkload(String),
    /// A baseline file or tolerance spec failed to parse or validate.
    Parse(String),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::Workload(e) => write!(f, "workload failed: {e}"),
            PerfError::UnknownWorkload(name) => {
                write!(f, "unknown workload `{name}` (see `dim bench --list`)")
            }
            PerfError::Parse(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for PerfError {}

impl From<dim_workloads::WorkloadError> for PerfError {
    fn from(e: dim_workloads::WorkloadError) -> PerfError {
        PerfError::Workload(e)
    }
}
