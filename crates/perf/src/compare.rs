//! Diffing two baselines: per-metric deltas and attribution waterfalls.

use crate::baseline::{Baseline, RegionSummary, WorkloadRecord};
use dim_obs::ObjectWriter;

/// Whether growth or shrinkage of a metric is the regression direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    /// Regressions grow the metric (cycles, stalls, misses, wall time).
    HigherIsWorse,
    /// Regressions shrink the metric (speedup, throughput, hits).
    LowerIsWorse,
}

/// One comparable metric of a [`WorkloadRecord`].
pub(crate) struct Metric {
    /// Stable name, also the tolerance-spec key.
    pub name: &'static str,
    /// Extracts the value from a record.
    pub extract: fn(&WorkloadRecord) -> f64,
    /// Host-side (non-deterministic) rather than simulated.
    pub host: bool,
    /// Which direction is a regression.
    pub direction: Direction,
    /// Whether the record carries the metric at all. Fabric metrics are
    /// absent from baselines recorded before fabric observability; the
    /// gate skips a check when either side lacks it rather than
    /// reporting a phantom regression against zero.
    pub present: fn(&WorkloadRecord) -> bool,
}

macro_rules! metric {
    ($name:literal, $host:expr, $dir:ident, |$w:ident| $body:expr) => {
        metric!($name, $host, $dir, |$w| $body, present | _w | true)
    };
    ($name:literal, $host:expr, $dir:ident, |$w:ident| $body:expr,
     present |$p:ident| $pbody:expr) => {
        Metric {
            name: $name,
            extract: |$w: &WorkloadRecord| $body,
            host: $host,
            direction: Direction::$dir,
            present: |$p: &WorkloadRecord| $pbody,
        }
    };
}

/// `100 * num / den`, 0 when the denominator is 0.
fn fabric_pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Every metric of the baseline schema, simulated first.
pub(crate) const METRICS: &[Metric] = &[
    metric!("scalar_cycles", false, HigherIsWorse, |w| w.scalar_cycles
        as f64),
    metric!("accel_cycles", false, HigherIsWorse, |w| w.accel_cycles
        as f64),
    metric!("speedup", false, LowerIsWorse, |w| w.speedup),
    metric!("retired", false, HigherIsWorse, |w| w.retired as f64),
    metric!(
        "array_invocations",
        false,
        LowerIsWorse,
        |w| w.array_invocations as f64
    ),
    metric!(
        "attribution.pipeline",
        false,
        HigherIsWorse,
        |w| w.attribution.pipeline as f64
    ),
    metric!(
        "attribution.i_stall",
        false,
        HigherIsWorse,
        |w| w.attribution.i_stall as f64
    ),
    metric!(
        "attribution.d_stall",
        false,
        HigherIsWorse,
        |w| w.attribution.d_stall as f64
    ),
    metric!(
        "attribution.reconfig_stall",
        false,
        HigherIsWorse,
        |w| w.attribution.reconfig_stall as f64
    ),
    metric!(
        "attribution.array_exec",
        false,
        HigherIsWorse,
        |w| w.attribution.array_exec as f64
    ),
    metric!(
        "attribution.writeback_tail",
        false,
        HigherIsWorse,
        |w| w.attribution.writeback_tail as f64
    ),
    metric!("rcache_hits", false, LowerIsWorse, |w| w.rcache.hits as f64),
    metric!("rcache_misses", false, HigherIsWorse, |w| w.rcache.misses
        as f64),
    metric!("rcache_inserts", false, HigherIsWorse, |w| w.rcache.inserts
        as f64),
    metric!(
        "rcache_evictions",
        false,
        HigherIsWorse,
        |w| w.rcache.evictions as f64
    ),
    metric!("rcache_flushes", false, HigherIsWorse, |w| w.rcache.flushes
        as f64),
    metric!(
        "fabric_util_pct",
        false,
        LowerIsWorse,
        |w| w
            .fabric
            .map_or(0.0, |f| fabric_pct(f.busy_total(), f.capacity_total())),
        present | w | w.fabric.is_some()
    ),
    metric!(
        "fabric_alu_busy_pct",
        false,
        LowerIsWorse,
        |w| w.fabric.map_or(0.0, |f| fabric_pct(
            f.alu_busy_thirds,
            f.alu_capacity_thirds
        )),
        present | w | w.fabric.is_some()
    ),
    metric!(
        "fabric_mult_busy_pct",
        false,
        LowerIsWorse,
        |w| w.fabric.map_or(0.0, |f| fabric_pct(
            f.mult_busy_thirds,
            f.mult_capacity_thirds
        )),
        present | w | w.fabric.is_some()
    ),
    metric!(
        "fabric_ldst_busy_pct",
        false,
        LowerIsWorse,
        |w| w.fabric.map_or(0.0, |f| fabric_pct(
            f.ldst_busy_thirds,
            f.ldst_capacity_thirds
        )),
        present | w | w.fabric.is_some()
    ),
    metric!(
        "writeback_saturation_pct",
        false,
        HigherIsWorse,
        |w| w
            .fabric
            .map_or(0.0, |f| fabric_pct(f.writeback_writes, f.writeback_slots)),
        present | w | w.fabric.is_some()
    ),
    metric!(
        "wall_nanos_min",
        true,
        HigherIsWorse,
        |w| w.host.wall_nanos_min as f64
    ),
    metric!("sim_mips", true, LowerIsWorse, |w| w.host.sim_mips),
    metric!(
        "peak_rss_bytes",
        true,
        HigherIsWorse,
        |w| w.host.peak_rss_bytes as f64
    ),
];

/// Looks up a metric by its tolerance-spec key.
pub(crate) fn metric_by_name(name: &str) -> Option<&'static Metric> {
    METRICS.iter().find(|m| m.name == name)
}

/// Relative change from `base` to `cur`: positive means grew.
///
/// A zero base with a nonzero current reports infinity — rendered as
/// "new" — so divisions never poison a report with NaN.
pub(crate) fn rel_delta(base: f64, cur: f64) -> f64 {
    if base == 0.0 {
        if cur == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (cur - base) / base
    }
}

/// One metric's before/after pair.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name.
    pub metric: &'static str,
    /// Value in the reference baseline.
    pub base: f64,
    /// Value in the current baseline.
    pub cur: f64,
    /// `(cur - base) / base`.
    pub rel: f64,
    /// Host-side metric (expected to vary between machines).
    pub host: bool,
}

/// All deltas for one workload present in both baselines.
#[derive(Debug, Clone)]
pub struct WorkloadDiff {
    /// Workload name.
    pub name: String,
    /// Every metric's delta, in [`METRICS`] order.
    pub deltas: Vec<MetricDelta>,
    /// Attribution waterfall: `(category, base, cur)` cycles.
    pub waterfall: Vec<(&'static str, u64, u64)>,
    /// Per-region cycle movement, `(region id, base, cur)` — empty
    /// unless both baselines embed region tables. A region missing from
    /// one side's table counts 0 cycles there.
    pub region_moves: Vec<(String, u64, u64)>,
}

/// The full diff of two baselines.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Name of the reference baseline.
    pub base_name: String,
    /// Name of the current baseline.
    pub cur_name: String,
    /// Workloads only the reference has.
    pub only_in_base: Vec<String>,
    /// Workloads only the current has.
    pub only_in_cur: Vec<String>,
    /// Per-workload diffs, in reference order.
    pub workloads: Vec<WorkloadDiff>,
}

/// Diffs `cur` against the reference `base`.
pub fn compare(base: &Baseline, cur: &Baseline) -> Comparison {
    let mut workloads = Vec::new();
    let mut only_in_base = Vec::new();
    for b in &base.workloads {
        let Some(c) = cur.workload(&b.name) else {
            only_in_base.push(b.name.clone());
            continue;
        };
        let deltas = METRICS
            .iter()
            .map(|m| {
                let bv = (m.extract)(b);
                let cv = (m.extract)(c);
                MetricDelta {
                    metric: m.name,
                    base: bv,
                    cur: cv,
                    rel: rel_delta(bv, cv),
                    host: m.host,
                }
            })
            .collect();
        let waterfall = b
            .attribution
            .named()
            .iter()
            .zip(c.attribution.named().iter())
            .map(|(&(name, bn), &(_, cn))| (name, bn, cn))
            .collect();
        workloads.push(WorkloadDiff {
            name: b.name.clone(),
            deltas,
            waterfall,
            region_moves: region_moves(&b.regions, &c.regions),
        });
    }
    let only_in_cur = cur
        .workloads
        .iter()
        .filter(|c| base.workload(&c.name).is_none())
        .map(|c| c.name.clone())
        .collect();
    Comparison {
        base_name: base.name.clone(),
        cur_name: cur.name.clone(),
        only_in_base,
        only_in_cur,
        workloads,
    }
}

/// Joins two region tables on `(pc, len)`, ordered by the base table's
/// ranking with current-only regions appended. Empty unless both sides
/// recorded regions, so diffs against pre-forensics baselines stay
/// quiet rather than reporting everything as "new".
fn region_moves(base: &[RegionSummary], cur: &[RegionSummary]) -> Vec<(String, u64, u64)> {
    if base.is_empty() || cur.is_empty() {
        return Vec::new();
    }
    let cycles_in = |table: &[RegionSummary], pc: u32, len: u32| {
        table
            .iter()
            .find(|r| r.pc == pc && r.len == len)
            .map_or(0, |r| r.cycles)
    };
    let mut moves = Vec::new();
    for r in base {
        moves.push((
            format!("0x{:x}[{}]", r.pc, r.len),
            r.cycles,
            cycles_in(cur, r.pc, r.len),
        ));
    }
    for r in cur {
        if !base.iter().any(|b| b.pc == r.pc && b.len == r.len) {
            moves.push((format!("0x{:x}[{}]", r.pc, r.len), 0, r.cycles));
        }
    }
    moves
}

fn fmt_rel(rel: f64) -> String {
    if rel.is_infinite() {
        "new".to_string()
    } else {
        format!("{:+.2}%", rel * 100.0)
    }
}

impl Comparison {
    /// Renders the diff for humans: changed metrics plus a per-workload
    /// attribution waterfall showing where the cycles moved.
    pub fn render(&self) -> String {
        let mut s = format!("comparing `{}` -> `{}`\n", self.base_name, self.cur_name);
        for name in &self.only_in_base {
            s.push_str(&format!("  {name}: missing from current baseline\n"));
        }
        for name in &self.only_in_cur {
            s.push_str(&format!("  {name}: new in current baseline\n"));
        }
        for w in &self.workloads {
            let changed: Vec<&MetricDelta> = w
                .deltas
                .iter()
                .filter(|d| d.rel != 0.0 && !d.host)
                .collect();
            s.push_str(&format!("{}:\n", w.name));
            if changed.is_empty() {
                s.push_str("  simulated metrics identical\n");
            }
            for d in &changed {
                s.push_str(&format!(
                    "  {:<28} {:>14} -> {:>14}  {}\n",
                    d.metric,
                    trim_float(d.base),
                    trim_float(d.cur),
                    fmt_rel(d.rel)
                ));
            }
            let total_base: u64 = w.waterfall.iter().map(|&(_, b, _)| b).sum();
            let total_cur: u64 = w.waterfall.iter().map(|&(_, _, c)| c).sum();
            if total_base != total_cur {
                s.push_str("  attribution waterfall (cycles):\n");
                for &(cat, b, c) in &w.waterfall {
                    let delta = c as i128 - b as i128;
                    s.push_str(&format!(
                        "    {:<16} {:>12} -> {:>12}  {:>+8}\n",
                        cat, b, c, delta
                    ));
                }
                s.push_str(&format!(
                    "    {:<16} {:>12} -> {:>12}  {:>+8}\n",
                    "total",
                    total_base,
                    total_cur,
                    total_cur as i128 - total_base as i128
                ));
            }
            let moved: Vec<_> = w.region_moves.iter().filter(|(_, b, c)| b != c).collect();
            if !moved.is_empty() {
                s.push_str("  region movement (attributed cycles):\n");
                for (id, b, c) in moved {
                    s.push_str(&format!(
                        "    {:<16} {:>12} -> {:>12}  {:>+8}\n",
                        id,
                        b,
                        c,
                        *c as i128 - *b as i128
                    ));
                }
            }
            for d in w.deltas.iter().filter(|d| d.host && d.rel != 0.0) {
                s.push_str(&format!(
                    "  {:<28} {:>14} -> {:>14}  {} (host, informational)\n",
                    d.metric,
                    trim_float(d.base),
                    trim_float(d.cur),
                    fmt_rel(d.rel)
                ));
            }
        }
        s
    }

    /// Serializes the full diff as one JSON object.
    pub fn to_json(&self) -> String {
        let mut workloads = String::from("[");
        for (i, w) in self.workloads.iter().enumerate() {
            if i > 0 {
                workloads.push(',');
            }
            let mut deltas = String::from("[");
            for (j, d) in w.deltas.iter().enumerate() {
                if j > 0 {
                    deltas.push(',');
                }
                let mut o = ObjectWriter::new();
                o.field_str("metric", d.metric);
                o.field_f64("base", d.base);
                o.field_f64("cur", d.cur);
                o.field_f64("rel", d.rel);
                o.field_bool("host", d.host);
                deltas.push_str(&o.finish());
            }
            deltas.push(']');
            let mut waterfall = String::from("[");
            for (j, &(cat, b, c)) in w.waterfall.iter().enumerate() {
                if j > 0 {
                    waterfall.push(',');
                }
                let mut o = ObjectWriter::new();
                o.field_str("category", cat);
                o.field_u64("base", b);
                o.field_u64("cur", c);
                waterfall.push_str(&o.finish());
            }
            waterfall.push(']');
            let mut regions = String::from("[");
            for (j, (id, b, c)) in w.region_moves.iter().enumerate() {
                if j > 0 {
                    regions.push(',');
                }
                let mut o = ObjectWriter::new();
                o.field_str("region", id);
                o.field_u64("base", *b);
                o.field_u64("cur", *c);
                regions.push_str(&o.finish());
            }
            regions.push(']');
            let mut o = ObjectWriter::new();
            o.field_str("name", &w.name);
            o.field_raw("deltas", &deltas);
            o.field_raw("waterfall", &waterfall);
            o.field_raw("region_moves", &regions);
            workloads.push_str(&o.finish());
        }
        workloads.push(']');
        let mut only_base = String::from("[");
        for (i, n) in self.only_in_base.iter().enumerate() {
            if i > 0 {
                only_base.push(',');
            }
            dim_obs::write_escaped(&mut only_base, n);
        }
        only_base.push(']');
        let mut only_cur = String::from("[");
        for (i, n) in self.only_in_cur.iter().enumerate() {
            if i > 0 {
                only_cur.push(',');
            }
            dim_obs::write_escaped(&mut only_cur, n);
        }
        only_cur.push(']');
        let mut o = ObjectWriter::new();
        o.field_str("base", &self.base_name);
        o.field_str("cur", &self.cur_name);
        o.field_raw("only_in_base", &only_base);
        o.field_raw("only_in_cur", &only_cur);
        o.field_raw("workloads", &workloads);
        o.finish()
    }
}

fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{Baseline, HostTelemetry, RcacheCounters, RecordMatrix, WorkloadRecord};
    use dim_core::CycleBreakdown;

    fn sample() -> Baseline {
        Baseline {
            schema_version: crate::BASELINE_SCHEMA_VERSION,
            name: "a".into(),
            matrix: RecordMatrix {
                workloads: vec!["crc32".into()],
                scale: "tiny".into(),
                shape: 1,
                cache_slots: 64,
                speculation: true,
                host_reps: 1,
            },
            workloads: vec![WorkloadRecord {
                name: "crc32".into(),
                scalar_cycles: 1000,
                accel_cycles: 600,
                speedup: 1000.0 / 600.0,
                retired: 400,
                array_invocations: 10,
                attribution: CycleBreakdown {
                    pipeline: 500,
                    i_stall: 0,
                    d_stall: 0,
                    reconfig_stall: 40,
                    array_exec: 50,
                    writeback_tail: 10,
                },
                rcache: RcacheCounters {
                    hits: 9,
                    misses: 1,
                    inserts: 1,
                    evictions: 0,
                    flushes: 0,
                },
                host: HostTelemetry {
                    wall_nanos_min: 1000,
                    wall_nanos_mean: 1100.0,
                    reps: 1,
                    sim_mips: 10.0,
                    peak_rss_bytes: 0,
                },
                regions: vec![],
                fabric: None,
            }],
        }
    }

    #[test]
    fn identical_baselines_diff_clean() {
        let a = sample();
        let cmp = compare(&a, &a);
        assert!(cmp.workloads[0].deltas.iter().all(|d| d.rel == 0.0));
        assert!(cmp.render().contains("simulated metrics identical"));
        dim_obs::parse_json(&cmp.to_json()).unwrap();
    }

    #[test]
    fn regression_shows_in_waterfall() {
        let a = sample();
        let mut b = sample();
        b.name = "b".into();
        b.workloads[0].accel_cycles = 660;
        b.workloads[0].attribution.pipeline = 560; // +60 all in pipeline
        b.workloads[0].speedup = 1000.0 / 660.0;
        let cmp = compare(&a, &b);
        let accel = cmp.workloads[0]
            .deltas
            .iter()
            .find(|d| d.metric == "accel_cycles")
            .unwrap();
        assert!((accel.rel - 0.1).abs() < 1e-12);
        let rendered = cmp.render();
        assert!(rendered.contains("attribution waterfall"), "{rendered}");
        assert!(rendered.contains("+60"), "{rendered}");
    }

    #[test]
    fn region_movement_names_the_shifted_region() {
        use crate::baseline::RegionSummary;
        let mut a = sample();
        a.workloads[0].regions = vec![RegionSummary {
            pc: 0x400,
            len: 7,
            cycles: 80,
            invocations: 8,
            mispredicts: 0,
        }];
        let mut b = sample();
        b.name = "b".into();
        b.workloads[0].regions = vec![
            RegionSummary {
                pc: 0x400,
                len: 7,
                cycles: 120,
                invocations: 8,
                mispredicts: 4,
            },
            RegionSummary {
                pc: 0x500,
                len: 3,
                cycles: 15,
                invocations: 2,
                mispredicts: 0,
            },
        ];
        let cmp = compare(&a, &b);
        let rendered = cmp.render();
        assert!(rendered.contains("region movement"), "{rendered}");
        assert!(rendered.contains("0x400[7]"), "{rendered}");
        assert!(rendered.contains("+40"), "{rendered}");
        assert!(rendered.contains("0x500[3]"), "{rendered}");
        let v = dim_obs::parse_json(&cmp.to_json()).unwrap();
        let moves = v.get("workloads").unwrap().as_array().unwrap()[0]
            .get("region_moves")
            .unwrap()
            .as_array()
            .unwrap()
            .len();
        assert_eq!(moves, 2);

        // Against a pre-forensics baseline (no regions) the section is
        // suppressed entirely.
        let old = sample();
        let cmp = compare(&old, &b);
        assert!(cmp.workloads[0].region_moves.is_empty());
        assert!(!cmp.render().contains("region movement"));
    }

    #[test]
    fn disjoint_workloads_are_reported() {
        let a = sample();
        let mut b = sample();
        b.workloads[0].name = "sha".into();
        let cmp = compare(&a, &b);
        assert_eq!(cmp.only_in_base, vec!["crc32".to_string()]);
        assert_eq!(cmp.only_in_cur, vec!["sha".to_string()]);
        assert!(cmp.workloads.is_empty());
    }

    #[test]
    fn rel_delta_handles_zero_base() {
        assert_eq!(rel_delta(0.0, 0.0), 0.0);
        assert!(rel_delta(0.0, 5.0).is_infinite());
        assert!((rel_delta(100.0, 110.0) - 0.1).abs() < 1e-12);
    }
}
