//! The regression gate: per-metric tolerances, violations, notes.

use crate::baseline::Baseline;
use crate::compare::{metric_by_name, rel_delta, Direction, METRICS};
use crate::PerfError;
use dim_obs::ObjectWriter;

/// Per-metric relative tolerances, parsed from a small TOML subset:
///
/// ```toml
/// # 0.05 allows a 5% regression before the gate fails.
/// [simulated]
/// accel_cycles = 0.0
/// speedup = 0.0
///
/// [host]
/// wall_nanos_min = 0.5
/// ```
///
/// Simulated metrics are deterministic, so their tolerances are
/// typically zero; host metrics are noisy and are only checked when
/// listed under `[host]`. Unknown metric names are rejected — a typo in
/// a tolerance spec must not silently disable a check.
#[derive(Debug, Clone, PartialEq)]
pub struct ToleranceSpec {
    /// `(metric, tolerance)` pairs to check, simulated and host alike.
    pub entries: Vec<(String, f64)>,
}

impl ToleranceSpec {
    /// The strict default: every simulated metric at zero tolerance,
    /// no host checks.
    pub fn strict() -> ToleranceSpec {
        ToleranceSpec {
            entries: METRICS
                .iter()
                .filter(|m| !m.host)
                .map(|m| (m.name.to_string(), 0.0))
                .collect(),
        }
    }

    /// Parses a tolerance spec.
    ///
    /// # Errors
    ///
    /// Rejects unknown sections, unknown metric names, metrics listed
    /// under the wrong section, and non-numeric or negative tolerances.
    pub fn parse(text: &str) -> Result<ToleranceSpec, PerfError> {
        let mut entries = Vec::new();
        let mut section: Option<&str> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = match name.trim() {
                    "simulated" => Some("simulated"),
                    "host" => Some("host"),
                    other => {
                        return Err(PerfError::Parse(format!(
                            "tolerance spec line {lineno}: unknown section `[{other}]`"
                        )))
                    }
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(PerfError::Parse(format!(
                    "tolerance spec line {lineno}: expected `key = value`"
                )));
            };
            let key = key.trim();
            let section = section.ok_or_else(|| {
                PerfError::Parse(format!(
                    "tolerance spec line {lineno}: entry before any [section]"
                ))
            })?;
            let metric = metric_by_name(key).ok_or_else(|| {
                PerfError::Parse(format!(
                    "tolerance spec line {lineno}: unknown metric `{key}`"
                ))
            })?;
            let in_host = section == "host";
            if metric.host != in_host {
                return Err(PerfError::Parse(format!(
                    "tolerance spec line {lineno}: metric `{key}` belongs under [{}]",
                    if metric.host { "host" } else { "simulated" }
                )));
            }
            let tol: f64 = value.trim().parse().map_err(|_| {
                PerfError::Parse(format!(
                    "tolerance spec line {lineno}: non-numeric tolerance for `{key}`"
                ))
            })?;
            if !tol.is_finite() || tol < 0.0 {
                return Err(PerfError::Parse(format!(
                    "tolerance spec line {lineno}: tolerance for `{key}` must be finite and >= 0"
                )));
            }
            entries.push((key.to_string(), tol));
        }
        if entries.is_empty() {
            return Err(PerfError::Parse(
                "tolerance spec lists no metrics to check".into(),
            ));
        }
        Ok(ToleranceSpec { entries })
    }
}

/// One gate check that moved beyond its tolerance.
#[derive(Debug, Clone)]
pub struct GateFinding {
    /// Workload the finding is about.
    pub workload: String,
    /// Metric name (or `missing-workload`).
    pub metric: String,
    /// Reference value.
    pub base: f64,
    /// Current value.
    pub cur: f64,
    /// Relative change.
    pub rel: f64,
    /// Tolerance that applied.
    pub tolerance: f64,
}

/// The gate's verdict: regressions beyond tolerance, plus informational
/// notes (improvements and new workloads never fail the gate).
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Regressions: each one fails the gate.
    pub violations: Vec<GateFinding>,
    /// Improvements beyond tolerance and other non-fatal observations.
    pub notes: Vec<String>,
    /// Checks performed (workload × metric pairs).
    pub checks: u64,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the verdict for humans.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            if v.metric == "missing-workload" {
                s.push_str(&format!(
                    "  FAIL {}: present in baseline but missing from current run\n",
                    v.workload
                ));
                continue;
            }
            let rel = if v.rel.is_infinite() {
                "was zero".to_string()
            } else {
                format!("{:+.2}%", v.rel * 100.0)
            };
            s.push_str(&format!(
                "  FAIL {} {}: {} -> {} ({}, tolerance {:.2}%)\n",
                v.workload,
                v.metric,
                v.base,
                v.cur,
                rel,
                v.tolerance * 100.0
            ));
        }
        for note in &self.notes {
            s.push_str(&format!("  note {note}\n"));
        }
        if self.ok() {
            s.push_str(&format!("gate PASSED ({} checks)\n", self.checks));
        } else {
            s.push_str(&format!(
                "gate FAILED: {} violation(s) in {} checks\n",
                self.violations.len(),
                self.checks
            ));
        }
        s
    }

    /// Serializes the verdict as one JSON object.
    pub fn to_json(&self) -> String {
        let mut violations = String::from("[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                violations.push(',');
            }
            let mut o = ObjectWriter::new();
            o.field_str("workload", &v.workload);
            o.field_str("metric", &v.metric);
            o.field_f64("base", v.base);
            o.field_f64("cur", v.cur);
            o.field_f64("rel", v.rel);
            o.field_f64("tolerance", v.tolerance);
            violations.push_str(&o.finish());
        }
        violations.push(']');
        let mut notes = String::from("[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                notes.push(',');
            }
            dim_obs::write_escaped(&mut notes, n);
        }
        notes.push(']');
        let mut o = ObjectWriter::new();
        o.field_bool("ok", self.ok());
        o.field_u64("checks", self.checks);
        o.field_raw("violations", &violations);
        o.field_raw("notes", &notes);
        o.finish()
    }
}

/// Checks `cur` against the reference `base` under `spec`.
///
/// Only movements in each metric's regression direction count as
/// violations; movements the other way beyond tolerance become notes
/// suggesting a baseline refresh. Baselines recorded under different
/// matrices cannot be compared and fail immediately.
pub fn gate(base: &Baseline, cur: &Baseline, spec: &ToleranceSpec) -> GateOutcome {
    let mut out = GateOutcome::default();
    if base.matrix != cur.matrix {
        out.violations.push(GateFinding {
            workload: "*".into(),
            metric: "matrix".into(),
            base: 0.0,
            cur: 0.0,
            rel: 0.0,
            tolerance: 0.0,
        });
        out.notes.push(format!(
            "record matrices differ (baseline `{}` vs current `{}`) — re-record with \
             identical parameters",
            base.name, cur.name
        ));
        return out;
    }
    for b in &base.workloads {
        let Some(c) = cur.workload(&b.name) else {
            out.violations.push(GateFinding {
                workload: b.name.clone(),
                metric: "missing-workload".into(),
                base: 0.0,
                cur: 0.0,
                rel: 0.0,
                tolerance: 0.0,
            });
            continue;
        };
        for (name, tol) in &spec.entries {
            let metric = metric_by_name(name).expect("spec validated at parse time");
            if !(metric.present)(b) || !(metric.present)(c) {
                out.notes.push(format!(
                    "{} {}: absent from one side (pre-fabric baseline?) — check skipped",
                    b.name, name
                ));
                continue;
            }
            let bv = (metric.extract)(b);
            let cv = (metric.extract)(c);
            let rel = rel_delta(bv, cv);
            out.checks += 1;
            let (regressed, improved) = match metric.direction {
                Direction::HigherIsWorse => (rel > *tol, rel < -*tol),
                Direction::LowerIsWorse => (rel < -*tol, rel > *tol),
            };
            if regressed {
                out.violations.push(GateFinding {
                    workload: b.name.clone(),
                    metric: name.clone(),
                    base: bv,
                    cur: cv,
                    rel,
                    tolerance: *tol,
                });
            } else if improved && !metric.host {
                out.notes.push(format!(
                    "{} {} improved {} -> {} ({:+.2}%) — consider refreshing the baseline",
                    b.name,
                    name,
                    bv,
                    cv,
                    rel * 100.0
                ));
            }
        }
    }
    for c in &cur.workloads {
        if base.workload(&c.name).is_none() {
            out.notes.push(format!(
                "{} is new in the current run (not in the baseline)",
                c.name
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{Baseline, HostTelemetry, RcacheCounters, RecordMatrix, WorkloadRecord};
    use dim_core::CycleBreakdown;

    fn sample() -> Baseline {
        Baseline {
            schema_version: crate::BASELINE_SCHEMA_VERSION,
            name: "ref".into(),
            matrix: RecordMatrix {
                workloads: vec!["crc32".into()],
                scale: "tiny".into(),
                shape: 1,
                cache_slots: 64,
                speculation: true,
                host_reps: 1,
            },
            workloads: vec![WorkloadRecord {
                name: "crc32".into(),
                scalar_cycles: 1000,
                accel_cycles: 600,
                speedup: 1000.0 / 600.0,
                retired: 400,
                array_invocations: 10,
                attribution: CycleBreakdown {
                    pipeline: 500,
                    i_stall: 0,
                    d_stall: 0,
                    reconfig_stall: 40,
                    array_exec: 50,
                    writeback_tail: 10,
                },
                rcache: RcacheCounters {
                    hits: 9,
                    misses: 1,
                    inserts: 1,
                    evictions: 0,
                    flushes: 0,
                },
                host: HostTelemetry {
                    wall_nanos_min: 1000,
                    wall_nanos_mean: 1000.0,
                    reps: 1,
                    sim_mips: 10.0,
                    peak_rss_bytes: 1 << 20,
                },
                regions: vec![],
                fabric: None,
            }],
        }
    }

    #[test]
    fn identical_baselines_pass_strict() {
        let b = sample();
        let out = gate(&b, &b, &ToleranceSpec::strict());
        assert!(out.ok(), "{}", out.render());
        assert!(out.checks > 0);
        dim_obs::parse_json(&out.to_json()).unwrap();
    }

    #[test]
    fn five_percent_cycle_regression_fails() {
        let base = sample();
        let mut cur = sample();
        // Inject a 5% simulated-cycle regression, keeping the
        // attribution invariant intact (all growth in pipeline).
        cur.workloads[0].accel_cycles = 630;
        cur.workloads[0].attribution.pipeline += 30;
        cur.workloads[0].speedup = 1000.0 / 630.0;
        let out = gate(&base, &cur, &ToleranceSpec::strict());
        assert!(!out.ok());
        assert!(out
            .violations
            .iter()
            .any(|v| v.metric == "accel_cycles" && (v.rel - 0.05).abs() < 1e-9));
        assert!(out.violations.iter().any(|v| v.metric == "speedup"));
        assert!(out.render().contains("gate FAILED"));
    }

    #[test]
    fn tolerance_absorbs_small_regressions() {
        let base = sample();
        let mut cur = sample();
        cur.workloads[0].accel_cycles = 612; // +2%
        cur.workloads[0].attribution.pipeline += 12;
        cur.workloads[0].speedup = 1000.0 / 612.0;
        let spec = ToleranceSpec::parse(
            "[simulated]\n\
             accel_cycles = 0.05\n\
             speedup = 0.05\n",
        )
        .unwrap();
        assert!(gate(&base, &cur, &spec).ok());
        let strict = gate(&base, &cur, &ToleranceSpec::strict());
        assert!(!strict.ok());
    }

    #[test]
    fn improvements_are_notes_not_violations() {
        let base = sample();
        let mut cur = sample();
        cur.workloads[0].accel_cycles = 540; // 10% faster
        cur.workloads[0].attribution.pipeline -= 60;
        cur.workloads[0].speedup = 1000.0 / 540.0;
        let out = gate(&base, &cur, &ToleranceSpec::strict());
        assert!(out.ok(), "{}", out.render());
        assert!(out.notes.iter().any(|n| n.contains("refreshing")));
    }

    #[test]
    fn missing_workload_fails() {
        let base = sample();
        let mut cur = sample();
        cur.workloads.clear();
        let out = gate(&base, &cur, &ToleranceSpec::strict());
        assert!(!out.ok());
        assert!(out.render().contains("missing from current run"));
    }

    #[test]
    fn matrix_mismatch_fails_immediately() {
        let base = sample();
        let mut cur = sample();
        cur.matrix.cache_slots = 16;
        let out = gate(&base, &cur, &ToleranceSpec::strict());
        assert!(!out.ok());
        assert_eq!(out.checks, 0);
    }

    #[test]
    fn host_checks_are_opt_in_and_loose() {
        let base = sample();
        let mut cur = sample();
        cur.workloads[0].host.wall_nanos_min = 1400; // +40% wall time
        assert!(gate(&base, &cur, &ToleranceSpec::strict()).ok());
        let spec = ToleranceSpec::parse("[host]\nwall_nanos_min = 0.25\n").unwrap();
        let out = gate(&base, &cur, &spec);
        assert!(!out.ok());
        let loose = ToleranceSpec::parse("[host]\nwall_nanos_min = 0.5\n").unwrap();
        assert!(gate(&base, &cur, &loose).ok());
    }

    #[test]
    fn fabric_utilization_drop_fails_and_absence_skips() {
        use crate::baseline::FabricSummary;
        let mut base = sample();
        base.workloads[0].fabric = Some(FabricSummary {
            alu_busy_thirds: 240,
            alu_capacity_thirds: 480,
            mult_busy_thirds: 36,
            mult_capacity_thirds: 72,
            ldst_busy_thirds: 18,
            ldst_capacity_thirds: 36,
            writeback_writes: 30,
            writeback_slots: 90,
        });
        let mut cur = base.clone();
        let f = cur.workloads[0].fabric.as_mut().unwrap();
        f.alu_busy_thirds = 120; // utilization halves
        let spec =
            ToleranceSpec::parse("[simulated]\nfabric_util_pct = 0.0\nfabric_alu_busy_pct = 0.0\n")
                .unwrap();
        let out = gate(&base, &cur, &spec);
        assert!(!out.ok());
        assert!(out.violations.iter().any(|v| v.metric == "fabric_util_pct"));
        assert!(out
            .violations
            .iter()
            .any(|v| v.metric == "fabric_alu_busy_pct"));

        // Writeback saturation regresses in the other direction.
        let mut hot = base.clone();
        hot.workloads[0].fabric.as_mut().unwrap().writeback_writes = 89;
        let spec = ToleranceSpec::parse("[simulated]\nwriteback_saturation_pct = 0.0\n").unwrap();
        assert!(!gate(&base, &hot, &spec).ok());

        // Against a pre-fabric baseline the checks are skipped with a
        // note, never reported as phantom regressions against zero.
        let old = sample();
        assert!(old.workloads[0].fabric.is_none());
        let spec = ToleranceSpec::parse("[simulated]\nwriteback_saturation_pct = 0.0\n").unwrap();
        let out = gate(&old, &cur, &spec);
        assert!(out.ok(), "{}", out.render());
        assert_eq!(out.checks, 0);
        assert!(out.notes.iter().any(|n| n.contains("skipped")));
    }

    #[test]
    fn spec_rejects_typos_and_wrong_sections() {
        assert!(ToleranceSpec::parse("[simulated]\naccell_cycles = 0.0\n").is_err());
        assert!(ToleranceSpec::parse("[simulated]\nwall_nanos_min = 0.5\n").is_err());
        assert!(ToleranceSpec::parse("[host]\naccel_cycles = 0.0\n").is_err());
        assert!(ToleranceSpec::parse("[mystery]\n").is_err());
        assert!(ToleranceSpec::parse("accel_cycles = 0.0\n").is_err());
        assert!(ToleranceSpec::parse("[simulated]\naccel_cycles = -0.1\n").is_err());
        assert!(ToleranceSpec::parse("# only comments\n").is_err());
        let ok = ToleranceSpec::parse(
            "# comment\n[simulated]\naccel_cycles = 0.0 # trailing\n[host]\nsim_mips = 0.9\n",
        )
        .unwrap();
        assert_eq!(ok.entries.len(), 2);
    }
}
