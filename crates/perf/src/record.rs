//! Capturing a baseline: run the matrix, collect every metric.

use crate::baseline::{
    Baseline, FabricSummary, HostTelemetry, RcacheCounters, RecordMatrix, RegionSummary,
    WorkloadRecord,
};
use crate::host::{peak_rss_bytes, sim_mips};
use crate::PerfError;
use dim_bench::{run_baseline, run_explained, run_instrumented, speedup};
use dim_cgra::ArrayShape;
use dim_core::SystemConfig;
use dim_obs::{CycleProfiler, MetricsRegistry, ObjectWriter, Probe};
use dim_workloads::{by_name, Scale};
use std::time::Instant;

/// How many regions a baseline embeds per workload.
const TOP_REGIONS: usize = 5;

/// What to record and under which system parameters.
#[derive(Debug, Clone)]
pub struct RecordOptions {
    /// Baseline name stamped into the file.
    pub name: String,
    /// Workloads to run, in order.
    pub workloads: Vec<String>,
    /// Input scale (`tiny`, `small`, `full`).
    pub scale: String,
    /// Array shape from Table 1 (1, 2 or 3).
    pub shape: u32,
    /// Reconfiguration-cache slots.
    pub cache_slots: u64,
    /// Branch speculation on/off.
    pub speculation: bool,
    /// Wall-clock repetitions per workload (min-of-N); clamped to >= 1.
    pub host_reps: u32,
}

impl RecordOptions {
    /// Options reconstructed from a stored matrix, so a gate re-records
    /// under exactly the parameters the reference was captured with.
    pub fn from_matrix(name: &str, matrix: &RecordMatrix) -> RecordOptions {
        RecordOptions {
            name: name.to_string(),
            workloads: matrix.workloads.clone(),
            scale: matrix.scale.clone(),
            shape: matrix.shape,
            cache_slots: matrix.cache_slots,
            speculation: matrix.speculation,
            host_reps: matrix.host_reps,
        }
    }

    fn matrix(&self) -> RecordMatrix {
        RecordMatrix {
            workloads: self.workloads.clone(),
            scale: self.scale.clone(),
            shape: self.shape,
            cache_slots: self.cache_slots,
            speculation: self.speculation,
            host_reps: self.host_reps.max(1),
        }
    }

    fn parse_scale(&self) -> Result<Scale, PerfError> {
        match self.scale.as_str() {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "full" => Ok(Scale::Full),
            other => Err(PerfError::Parse(format!(
                "unknown scale `{other}` (expected tiny, small or full)"
            ))),
        }
    }

    fn shape(&self) -> Result<ArrayShape, PerfError> {
        match self.shape {
            1 => Ok(ArrayShape::config1()),
            2 => Ok(ArrayShape::config2()),
            3 => Ok(ArrayShape::config3()),
            other => Err(PerfError::Parse(format!(
                "unknown array shape `{other}` (expected 1, 2 or 3)"
            ))),
        }
    }
}

/// Runs the matrix and captures a [`Baseline`].
///
/// Simulated metrics come from one instrumented run per workload (the
/// simulator is deterministic, repetitions cannot change them); the
/// wall clock is additionally sampled over `host_reps` runs and the
/// minimum kept, the standard trick for a low-noise point estimate.
///
/// # Errors
///
/// Fails on unknown workloads/scales/shapes and on any workload that
/// does not run and validate — a baseline must only ever hold correct
/// runs.
pub fn record(opts: &RecordOptions) -> Result<Baseline, PerfError> {
    let scale = opts.parse_scale()?;
    let shape = opts.shape()?;
    if opts.workloads.is_empty() {
        return Err(PerfError::Parse("no workloads selected".into()));
    }
    let reps = opts.host_reps.max(1);
    let mut workloads = Vec::new();
    for name in &opts.workloads {
        let spec = by_name(name).ok_or_else(|| PerfError::UnknownWorkload(name.clone()))?;
        let built = (spec.build)(scale);
        let base = run_baseline(&built)?;
        let scalar_cycles = base.stats.cycles;

        let config = SystemConfig::new(shape, opts.cache_slots as usize, opts.speculation);
        let mut first = None;
        let mut wall = Vec::with_capacity(reps as usize);
        for _ in 0..reps {
            let mut probes = (CycleProfiler::new(), MetricsRegistry::new());
            let started = Instant::now();
            let run = run_instrumented(&built, config, &mut probes)?;
            wall.push(started.elapsed().as_nanos() as u64);
            probes.finish();
            if first.is_none() {
                first = Some((run, probes));
            }
        }
        let (run, (profiler, metrics)) = first.expect("reps >= 1");
        let profile = profiler.into_profile();
        let attribution = run.system.cycle_breakdown();
        // Two independent derivations of the same attribution model:
        // the profiler (event stream) and the counters. Both must
        // account for every cycle.
        assert_eq!(profile.total_cycles(), run.cycles);
        assert_eq!(attribution.total(), run.cycles);

        let wall_min = wall.iter().copied().min().expect("reps >= 1");
        let wall_mean = wall.iter().sum::<u64>() as f64 / wall.len() as f64;
        let retired = run.system.machine().stats.instructions;

        // One traced run reconstructs the per-region footprint; the
        // simulator is deterministic, so it sees exactly the run the
        // metrics above describe. Regions come back sorted by
        // attributed cycles — keep the top few.
        let explained = run_explained(&built, config)?;
        debug_assert_eq!(explained.run.cycles, run.cycles);
        let regions: Vec<RegionSummary> = explained
            .explanation
            .regions
            .iter()
            .take(TOP_REGIONS)
            .map(|r| RegionSummary {
                pc: r.pc,
                len: r.len,
                cycles: r.attributed_cycles(),
                invocations: r.invocations,
                mispredicts: r.mispredicts,
            })
            .collect();
        let heat = run.system.fabric_heat();
        let fabric = Some(FabricSummary {
            alu_busy_thirds: heat.busy_thirds[0],
            alu_capacity_thirds: heat.capacity_thirds[0],
            mult_busy_thirds: heat.busy_thirds[1],
            mult_capacity_thirds: heat.capacity_thirds[1],
            ldst_busy_thirds: heat.busy_thirds[2],
            ldst_capacity_thirds: heat.capacity_thirds[2],
            writeback_writes: heat.writeback_writes,
            writeback_slots: heat.writeback_slots,
        });
        workloads.push(WorkloadRecord {
            name: name.clone(),
            scalar_cycles,
            accel_cycles: run.cycles,
            speedup: speedup(scalar_cycles, run.cycles),
            retired,
            array_invocations: run.system.stats().array_invocations,
            attribution,
            rcache: RcacheCounters {
                hits: metrics.rcache_hits,
                misses: metrics.rcache_misses,
                inserts: metrics.rcache_inserts,
                evictions: metrics.rcache_evictions,
                flushes: metrics.rcache_flushes,
            },
            host: HostTelemetry {
                wall_nanos_min: wall_min,
                wall_nanos_mean: wall_mean,
                reps,
                sim_mips: sim_mips(retired, wall_min),
                peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
            },
            regions,
            fabric,
        });
    }
    Ok(Baseline {
        schema_version: crate::BASELINE_SCHEMA_VERSION,
        name: opts.name.clone(),
        matrix: opts.matrix(),
        workloads,
    })
}

/// Host-telemetry export for harness consumption (`BENCH_perf.json`):
/// the non-deterministic side of a recording, kept out of the baseline
/// diff surface that gates regressions.
pub fn bench_perf_json(baseline: &Baseline) -> String {
    let mut per = String::from("[");
    for (i, w) in baseline.workloads.iter().enumerate() {
        if i > 0 {
            per.push(',');
        }
        let mut o = ObjectWriter::new();
        o.field_str("workload", &w.name);
        o.field_u64("wall_nanos_min", w.host.wall_nanos_min);
        o.field_f64("wall_nanos_mean", w.host.wall_nanos_mean);
        o.field_f64("sim_mips", w.host.sim_mips);
        o.field_u64("retired", w.retired);
        per.push_str(&o.finish());
    }
    per.push(']');
    let total_wall: u64 = baseline
        .workloads
        .iter()
        .map(|w| w.host.wall_nanos_min)
        .sum();
    let mut o = ObjectWriter::new();
    o.field_str("bench", "perf");
    o.field_str("baseline", &baseline.name);
    o.field_u64("workloads", baseline.workloads.len() as u64);
    o.field_u64("total_wall_nanos_min", total_wall);
    o.field_u64(
        "peak_rss_bytes",
        baseline
            .workloads
            .iter()
            .map(|w| w.host.peak_rss_bytes)
            .max()
            .unwrap_or(0),
    );
    o.field_raw("per_workload", &per);
    o.finish()
}
