//! End-to-end: record a real baseline, round-trip it through the file
//! format, and gate it — including the injected-regression drill the CI
//! gate's usefulness rests on.

use dim_perf::{compare, gate, record, Baseline, RecordOptions, ToleranceSpec};

fn tiny_options() -> RecordOptions {
    RecordOptions {
        name: "test".into(),
        workloads: vec!["crc32".into(), "sha".into()],
        scale: "tiny".into(),
        shape: 1,
        cache_slots: 64,
        speculation: true,
        host_reps: 2,
    }
}

#[test]
fn record_roundtrips_and_gates_green() {
    let opts = tiny_options();
    let baseline = record(&opts).expect("record succeeds");
    assert_eq!(baseline.workloads.len(), 2);
    for w in &baseline.workloads {
        // The core schema invariant: attribution accounts for every
        // simulated cycle, exactly.
        assert_eq!(w.attribution.total(), w.accel_cycles);
        assert!(w.speedup > 1.0, "{} should accelerate", w.name);
        assert!(w.host.wall_nanos_min > 0);
        assert!(w.host.reps == 2);
    }

    for w in &baseline.workloads {
        // Fabric utilization is always captured on fresh recordings,
        // with busy never exceeding the provisioned capacity.
        let f = w.fabric.expect("fabric counters recorded");
        assert!(f.capacity_total() > 0, "{} never used the array", w.name);
        assert!(f.busy_total() <= f.capacity_total());
        assert!(f.writeback_writes <= f.writeback_slots);
    }

    // File-format round trip preserves everything.
    let parsed = Baseline::parse(&baseline.to_json()).expect("parses");
    assert_eq!(parsed, baseline);

    // Recording again is deterministic on the simulated side, so the
    // strict gate (host checks off) passes against the fresh record.
    let again = record(&opts).expect("re-record succeeds");
    let outcome = gate(&baseline, &again, &ToleranceSpec::strict());
    assert!(outcome.ok(), "{}", outcome.render());

    // And the comparison agrees nothing simulated moved.
    let cmp = compare(&baseline, &again);
    for w in &cmp.workloads {
        for d in w.deltas.iter().filter(|d| !d.host) {
            assert_eq!(d.rel, 0.0, "{} {} moved", w.name, d.metric);
        }
    }
}

#[test]
fn injected_regression_fails_the_gate() {
    let baseline = record(&tiny_options()).expect("record succeeds");
    let mut regressed = baseline.clone();
    // Inject a >=5% simulated-cycle regression into one workload,
    // keeping the attribution invariant intact.
    let w = &mut regressed.workloads[0];
    let extra = w.accel_cycles / 20 + 1; // just over 5%
    w.accel_cycles += extra;
    w.attribution.pipeline += extra;
    w.speedup = w.scalar_cycles as f64 / w.accel_cycles as f64;

    // Even a 4.9% tolerance must flag it...
    let spec = ToleranceSpec::parse(
        "[simulated]\n\
         accel_cycles = 0.049\n",
    )
    .unwrap();
    let outcome = gate(&baseline, &regressed, &spec);
    assert!(!outcome.ok(), "gate must catch the regression");
    assert!(outcome
        .violations
        .iter()
        .any(|v| v.metric == "accel_cycles" && v.rel >= 0.05));

    // ...and the strict default certainly does.
    assert!(!gate(&baseline, &regressed, &ToleranceSpec::strict()).ok());

    // The doctored file still passes schema validation (the attribution
    // invariant was preserved), so it is the gate, not the parser, that
    // catches it.
    Baseline::parse(&regressed.to_json()).expect("still schema-valid");
}

#[test]
fn unknown_workload_is_rejected() {
    let mut opts = tiny_options();
    opts.workloads = vec!["not-a-kernel".into()];
    let err = record(&opts).unwrap_err();
    assert!(err.to_string().contains("unknown workload"), "{err}");
}
