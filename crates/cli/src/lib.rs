//! # dim-cli
//!
//! Library backing the `dim` command-line tool: assemble, disassemble,
//! run and transparently accelerate MIPS programs from the shell.
//!
//! ```
//! let mut out = Vec::new();
//! dim_cli::dispatch(&["help".into()], &mut out)?;
//! assert!(String::from_utf8(out)?.contains("usage"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod debugger;
mod spans;

pub use debugger::debug_session;

use dim_cgra::{ArrayShape, StreamingCert};
use dim_core::{System, SystemConfig};
use dim_mips::asm::{assemble, Program};
use dim_mips::{disassemble_labeled, image};
use dim_mips_sim::{HaltReason, Machine, Profiler};
use dim_obs::status::{read_status, StatusEntry, STATUS_FILE_NAME};
use dim_obs::{CycleProfiler, FlightGuard, JsonlSink, MetricsRegistry, Probe};
use std::fmt;
use std::io::{BufWriter, Write};
use std::path::Path;

/// CLI failure: carries the message shown to the user.
#[derive(Debug)]
pub struct CliError(String);

impl CliError {
    fn new(msg: impl Into<String>) -> CliError {
        CliError(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

const USAGE: &str = "\
usage: dim <command> [options]

commands:
  asm    <in.s> [-o <out.dimg>]      assemble to a program image
  disasm <file>                      disassemble an image or source file
  run    <file> [--max-steps N] [--profile] [--caches] [--trace-out <t.jsonl>]
                [--telemetry-interval N]
                                     run on the plain MIPS simulator
  accel  <file> [--config 1|2|3|ideal] [--slots N] [--no-spec] [--compare]
                [--dump-configs] [--trace] [--trace-out <t.jsonl>] [--metrics]
                [--rcache-save <f.dimrc>] [--rcache-load <f.dimrc>]
                [--telemetry-interval N] [--flight N] [--watchdog]
                [--flight-out <f.jsonl>] [--certs <f.jsonl>]
                                     run with the DIM accelerator attached;
                                     rcache snapshots warm-start later runs;
                                     --flight keeps a last-N-events ring,
                                     --watchdog checks stream invariants live
                                     and fails (with a flight dump) on a trip,
                                     --flight-out always dumps the window,
                                     --certs installs `dim prove` streaming
                                     certificates so matching commits tag
                                     their rcache entries stream_ok(K)
  profile <file> [--config 1|2|3|ideal] [--slots N] [--no-spec] [--caches]
                 [--top N] [--json]  per-block cycle attribution of an
                                     accelerated run
  trace  <t.jsonl> [--stats]         validate a trace and print its summary
                                     (--stats adds per-kind record counts and,
                                     for flight dumps, per-kind drop totals)
  heat   <t.jsonl | file> [--json] [--rows N] [--chrome-out <f.json>]
                [--config 1|2|3|ideal] [--slots N] [--no-spec] [--max-steps N]
                                     per-unit fabric utilization heatmap: from a
                                     schema-v4 trace (aggregate + traversal
                                     depth profile, Chrome counter export) or by
                                     running a workload (exact per-row per-class
                                     occupancy, reconciled against the cycle
                                     breakdown)
  explain <t.jsonl> [--top N] [--json] [--chrome-out <f.json>]
                    [--folded-out <f.folded>]
                                     region-level acceleration forensics over a
                                     trace: lifecycle table, missed-speedup
                                     ranking, Chrome-trace timeline and
                                     collapsed-stack flamegraph exports
  compare <file>                     cycles on scalar / 2-wide superscalar /
                                     DIM configs #1..#3 side by side
  suite  [--scale tiny|small|full]   run + validate the MiBench-like suite
  sweep  <spec> [--jobs N] [--out <dir>] [--limit N] [--warm on|off]
                [--bench-out <dir>] [--explain] [--flight N]
                [--telemetry-interval N]
                                     expand a sweep spec and run the grid on a
                                     work-stealing pool (resumable; see
                                     docs/sweeps.md for the spec format); live
                                     status lands in <dir>/status.dimstat and
                                     failing cells dump their flight window to
                                     <dir>/flight/ (--flight 0 disables)
  top    <dir-or-status-file> [--follow]
                                     render the live telemetry published by a
                                     running sweep or accel: per-worker state,
                                     progress, rcache hit rate, sim-MIPS, and —
                                     for serving daemons — p99 request latency
                                     and queue depth
                                     (--follow polls until the run finishes)
  perf   record --out <f.json> [--name N] [--workloads a,b,c] [--scale S]
                [--shape 1|2|3] [--slots N] [--no-spec] [--reps N]
                [--bench-out <dir>]
                                     run the workload matrix and write a
                                     versioned performance baseline
  perf   compare <base> <current> [--json]
                                     diff two baselines metric by metric with
                                     a cycle-attribution waterfall
  perf   gate --baseline <f.json> [--current <f.json>]
              [--tolerance-spec <f.toml>] [--json]
                                     re-record (or load --current) and fail on
                                     regressions beyond per-metric tolerances
  lint   <file> [--allow C1,C2] [--json] [--candidates] [--config 1|2|3]
                                     static CFG/dataflow analysis of a workload
                                     binary; --candidates adds the static set
                                     of DIM-accelerable regions
  lint   --suite [--scale tiny|small|full] [--json]
                                     lint all bundled workloads with their
                                     per-workload allowlists applied
  verify <f.dimrc> [--json]          structurally verify every configuration
                                     in an rcache snapshot
  prove  <file> [--json] [--cert-out <f.jsonl>]
                                     static stride/alias prover: classify every
                                     memory access of every self-loop, run the
                                     cross-iteration alias test, and emit
                                     streaming-eligibility certificates for
                                     regions that pass
  prove  --suite [--scale tiny|small|full] [--json] [--cert-out <f.jsonl>]
                                     prove all bundled workloads
  prove  --check <f.jsonl>           re-validate a certificate file (version,
                                     checksum, structural invariants)
  serve  --socket <path> [--jobs N] [--queue N] [--tenant-quota N]
         [--shard-dir <dir>] [--status-dir <dir>] [--flight N]
         [--telemetry-interval N]
                                     persistent acceleration daemon on a Unix
                                     socket: bounded request queue with busy
                                     backpressure, per-tenant quotas, and
                                     shared verifier-gated warm rcache shards
                                     that warm-start from and drain to
                                     <shard-dir>/*.dimrc; live telemetry in
                                     <status-dir>/status.dimstat (dim top) and
                                     a wall-clock span dump in
                                     <status-dir>/spans.dimspan at drain
                                     (dim spans)
  serve  --selftest [--jobs N] [--clients N] [--requests N] [--bench-out <dir>]
                                     in-process load generator against a real
                                     daemon: cold-vs-warm ramp, latency
                                     percentiles, and span-derived stage
                                     breakdowns -> BENCH_serve.json (the span
                                     dump lands beside it)
  submit <socket> <request.file> [--json]
                                     send one request file to a running daemon
                                     and print the reply (see docs/serving.md)
  spans  <spans.dimspan> [--json] [--chrome-out <f.json>]
                                     analyze a wall-clock span dump from serve
                                     or sweep: per-stage latency percentiles,
                                     per-tenant aggregation, the slowest
                                     request's waterfall + critical path, and
                                     engine host-time attribution; exits
                                     non-zero on span-law violations
  debug  <file> [--script <cmds>]    scriptable debugger (stdin by default)
  help                               show this text

<file> may be assembly source (.s) or a `dim asm` image (.dimg).
";

/// Loads a program from either assembly source or an image file,
/// deciding by content (image magic) rather than extension.
fn load_program(path: &str) -> Result<Program, CliError> {
    let bytes =
        std::fs::read(Path::new(path)).map_err(|e| CliError::new(format!("{path}: {e}")))?;
    if bytes.starts_with(b"DIM1") {
        return image::load(&bytes).map_err(|e| CliError::new(format!("{path}: {e}")));
    }
    let src = String::from_utf8(bytes)
        .map_err(|_| CliError::new(format!("{path}: not UTF-8 assembly source")))?;
    assemble(&src).map_err(|e| CliError::new(format!("{path}:{e}")))
}

/// Strict argument validation: every flag must be known, flags taking a
/// value must have one, no flag may repeat, and at most `positionals`
/// non-flag arguments are accepted. A typo like `--slot 16` must fail
/// loudly rather than silently run with defaults.
fn check_flags(
    cmd: &str,
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
    positionals: usize,
) -> Result<(), CliError> {
    let mut seen: Vec<&str> = Vec::new();
    let mut positional_count = 0;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if arg.starts_with('-') {
            if seen.contains(&arg) {
                return Err(CliError::new(format!(
                    "{cmd}: `{arg}` given more than once"
                )));
            }
            if value_flags.contains(&arg) {
                if i + 1 >= args.len() {
                    return Err(CliError::new(format!("{arg} requires a value")));
                }
                i += 1;
            } else if !bool_flags.contains(&arg) {
                return Err(CliError::new(format!(
                    "{cmd}: unknown flag `{arg}` (see `dim help`)"
                )));
            }
            seen.push(arg);
        } else {
            positional_count += 1;
            if positional_count > positionals {
                return Err(CliError::new(format!("{cmd}: unexpected argument `{arg}`")));
            }
        }
        i += 1;
    }
    Ok(())
}

fn parse_flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(std::string::String::as_str)
            .map(Some)
            .ok_or_else(|| CliError::new(format!("{flag} requires a value"))),
    }
}

/// Flight-recorder window `dim accel` uses when `--watchdog` or
/// `--flight-out` asks for a recorder without `--flight` sizing one.
const DEFAULT_ACCEL_FLIGHT: usize = 65_536;

/// Shared parsing for `--telemetry-interval`, used identically by
/// `run`, `accel` and `sweep`: a positive cycle count. 0 is rejected
/// rather than silently meaning "off" — omitting the flag means off.
fn parse_telemetry_interval(args: &[String]) -> Result<Option<u64>, CliError> {
    let interval: Option<u64> = parse_flag_value(args, "--telemetry-interval")?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::new("--telemetry-interval: not a number"))
        })
        .transpose()?;
    if interval == Some(0) {
        return Err(CliError::new(
            "--telemetry-interval: must be at least 1 cycle (omit the flag to disable)",
        ));
    }
    Ok(interval)
}

type FileSink = JsonlSink<BufWriter<std::fs::File>>;

fn open_trace_sink(path: &str, workload: &str, bits_per_config: u64) -> Result<FileSink, CliError> {
    let file = std::fs::File::create(path)
        .map_err(|e| CliError::new(format!("--trace-out {path}: {e}")))?;
    Ok(JsonlSink::new(
        BufWriter::new(file),
        workload,
        bits_per_config,
    ))
}

fn close_trace_sink(mut sink: FileSink, path: &str, out: &mut impl Write) -> Result<(), CliError> {
    sink.finish();
    let events = sink.events();
    let (_, io_err) = sink.into_inner();
    if let Some(e) = io_err {
        return Err(CliError::new(format!("--trace-out {path}: {e}")));
    }
    writeln!(out, "trace: {events} events -> {path}")?;
    Ok(())
}

fn attach_caches(machine: &mut Machine) {
    use dim_mips_sim::{CacheConfig, CacheSim};
    machine.icache = Some(CacheSim::new(CacheConfig::icache_4k()));
    machine.dcache = Some(CacheSim::new(CacheConfig::dcache_4k()));
}

fn report_halt(out: &mut impl Write, halt: HaltReason) -> Result<(), CliError> {
    match halt {
        HaltReason::Exit(code) => writeln!(out, "program exited (code {code})")?,
        HaltReason::StepLimit => writeln!(out, "step limit reached before the program halted")?,
    }
    Ok(())
}

fn cmd_asm(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let input = args
        .first()
        .ok_or_else(|| CliError::new("asm: missing input file"))?;
    let program = load_program(input)?;
    let default_out = format!(
        "{}.dimg",
        input.strip_suffix(".s").unwrap_or(input.as_str())
    );
    let output = parse_flag_value(args, "-o")?.unwrap_or(&default_out);
    std::fs::write(output, image::save(&program))?;
    writeln!(
        out,
        "{}: {} instructions, {} data bytes -> {}",
        input,
        program.text.len(),
        program.data.len(),
        output
    )?;
    Ok(())
}

fn cmd_disasm(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let input = args
        .first()
        .ok_or_else(|| CliError::new("disasm: missing input file"))?;
    let program = load_program(input)?;
    write!(
        out,
        "{}",
        disassemble_labeled(program.text_base, &program.text)
    )?;
    Ok(())
}

fn cmd_run(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    check_flags(
        "run",
        args,
        &["--max-steps", "--trace-out", "--telemetry-interval"],
        &["--profile", "--caches"],
        1,
    )?;
    let input = args
        .first()
        .ok_or_else(|| CliError::new("run: missing input file"))?;
    let program = load_program(input)?;
    let max_steps: u64 = parse_flag_value(args, "--max-steps")?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::new("--max-steps: not a number"))
        })
        .transpose()?
        .unwrap_or(100_000_000);
    let mut machine = Machine::load(&program);
    if args.iter().any(|a| a == "--caches") {
        attach_caches(&mut machine);
    }
    let trace_out = parse_flag_value(args, "--trace-out")?;
    let telemetry = parse_telemetry_interval(args)?;
    if telemetry.is_some() && trace_out.is_none() {
        return Err(CliError::new(
            "run: --telemetry-interval requires --trace-out (it sets the \
             trace's telemetry cadence)",
        ));
    }
    let halt = if let Some(path) = trace_out {
        if args.iter().any(|a| a == "--profile") {
            return Err(CliError::new(
                "run: --profile and --trace-out are mutually exclusive",
            ));
        }
        // A plain pipeline run has no reconfiguration cache, so the
        // header records 0 bits per configuration.
        let mut sink = open_trace_sink(path, input, 0)?;
        if let Some(interval) = telemetry {
            sink.set_telemetry_interval(interval);
        }
        let halt = machine
            .run_probed(max_steps, &mut sink)
            .map_err(|e| CliError::new(e.to_string()))?;
        close_trace_sink(sink, path, out)?;
        halt
    } else if args.iter().any(|a| a == "--profile") {
        let mut profiler = Profiler::new();
        let halt = machine
            .run_with(max_steps, |i| profiler.observe(i))
            .map_err(|e| CliError::new(e.to_string()))?;
        let profile = profiler.finish();
        writeln!(out, "basic blocks: {}", profile.block_count())?;
        writeln!(
            out,
            "instructions/branch: {:.2}",
            profile.instructions_per_branch()
        )?;
        for (frac, n) in profile.coverage_curve(&[0.5, 0.9, 0.99]) {
            writeln!(out, "blocks for {:.0}% coverage: {n}", frac * 100.0)?;
        }
        halt
    } else {
        machine
            .run(max_steps)
            .map_err(|e| CliError::new(e.to_string()))?
    };
    if !machine.output.is_empty() {
        writeln!(out, "--- program output ---")?;
        out.write_all(&machine.output)?;
        writeln!(out, "\n----------------------")?;
    }
    writeln!(
        out,
        "{} instructions, {} cycles (IPC {:.2})",
        machine.stats.instructions,
        machine.stats.cycles,
        machine.stats.ipc()
    )?;
    if let Some(d) = &machine.dcache {
        writeln!(
            out,
            "dcache miss rate: {:.2}%",
            100.0 * d.stats().miss_rate()
        )?;
    }
    report_halt(out, halt)
}

fn cmd_accel(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    check_flags(
        "accel",
        args,
        &[
            "--config",
            "--slots",
            "--max-steps",
            "--trace-out",
            "--rcache-save",
            "--rcache-load",
            "--telemetry-interval",
            "--flight",
            "--flight-out",
            "--certs",
        ],
        &[
            "--no-spec",
            "--compare",
            "--dump-configs",
            "--trace",
            "--metrics",
            "--watchdog",
        ],
        1,
    )?;
    let input = args
        .first()
        .ok_or_else(|| CliError::new("accel: missing input file"))?;
    let program = load_program(input)?;
    let config_choice = parse_flag_value(args, "--config")?.unwrap_or("1");
    let shape = match config_choice {
        "1" => ArrayShape::config1(),
        "2" => ArrayShape::config2(),
        "3" => ArrayShape::config3(),
        "ideal" => ArrayShape::infinite(),
        other => return Err(CliError::new(format!("--config: unknown `{other}`"))),
    };
    let slots: usize = parse_flag_value(args, "--slots")?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::new("--slots: not a number"))
        })
        .transpose()?
        .unwrap_or(64);
    let speculation = !args.iter().any(|a| a == "--no-spec");
    let max_steps: u64 = parse_flag_value(args, "--max-steps")?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::new("--max-steps: not a number"))
        })
        .transpose()?
        .unwrap_or(100_000_000);
    let rcache_load = parse_flag_value(args, "--rcache-load")?;
    let rcache_save = parse_flag_value(args, "--rcache-save")?;
    if (rcache_load.is_some() || rcache_save.is_some()) && config_choice == "ideal" {
        return Err(CliError::new(
            "accel: rcache snapshots are not supported with --config ideal \
             (the idealized array has no finite cache to persist)",
        ));
    }

    let mut system = System::new(
        Machine::load(&program),
        SystemConfig::new(shape, slots, speculation),
    );
    if let Some(path) = rcache_load {
        let bytes =
            std::fs::read(path).map_err(|e| CliError::new(format!("--rcache-load {path}: {e}")))?;
        system.load_rcache(&bytes).map_err(|e| {
            CliError::new(format!(
                "--rcache-load {path}: {e}\n\
                 hint: a snapshot only loads into a system with the same \
                 --config, --slots and speculation settings it was saved from"
            ))
        })?;
        writeln!(
            out,
            "rcache: loaded {} configuration(s) from {path}",
            system.cache().len()
        )?;
    }
    let certs_path = parse_flag_value(args, "--certs")?;
    if let Some(path) = certs_path {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::new(format!("--certs {path}: {e}")))?;
        let mut certs = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            certs.push(
                StreamingCert::parse_json(line)
                    .map_err(|e| CliError::new(format!("--certs {path}:{}: {e}", i + 1)))?,
            );
        }
        let installed = system
            .install_stream_certs(certs)
            .map_err(|e| CliError::new(format!("--certs {path}: {e}")))?;
        writeln!(
            out,
            "stream: installed {installed} certificate(s) from {path}"
        )?;
    }
    if args.iter().any(|a| a == "--trace") {
        system.enable_trace(64);
    }
    let trace_out = parse_flag_value(args, "--trace-out")?;
    let telemetry = parse_telemetry_interval(args)?;
    let want_metrics = args.iter().any(|a| a == "--metrics");
    let flight_out = parse_flag_value(args, "--flight-out")?;
    let want_watchdog = args.iter().any(|a| a == "--watchdog");
    let flight_capacity: Option<usize> = parse_flag_value(args, "--flight")?
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| CliError::new("--flight: not a number"))
                .and_then(|n| {
                    if n == 0 {
                        Err(CliError::new(
                            "--flight: capacity must be at least 1 event \
                             (omit the flag to disable the recorder)",
                        ))
                    } else {
                        Ok(n)
                    }
                })
        })
        .transpose()?;
    // --watchdog and --flight-out imply a recorder; give it a roomy
    // default window when --flight didn't size one explicitly.
    let flight_capacity = flight_capacity
        .or_else(|| (want_watchdog || flight_out.is_some()).then_some(DEFAULT_ACCEL_FLIGHT));

    let mut metrics =
        want_metrics.then(|| MetricsRegistry::with_interval(telemetry.unwrap_or(100_000)));
    let mut sink: Option<FileSink> = match trace_out {
        Some(path) => {
            let mut s = open_trace_sink(path, input, system.stored_bits_per_config())?;
            if let Some(interval) = telemetry {
                s.set_telemetry_interval(interval);
            }
            Some(s)
        }
        None => None,
    };
    let mut guard = flight_capacity.map(|capacity| {
        let mut g = FlightGuard::new(input, capacity, slots, system.stored_bits_per_config());
        // A warm-started cache already holds configurations the stream
        // never inserted; seed them so the watchdog doesn't cry wolf on
        // the first legitimate hit.
        for config in system.cache().iter() {
            g.watchdog_mut().seed_resident(config.entry_pc);
        }
        g
    });

    let halt = if metrics.is_some() || sink.is_some() || guard.is_some() {
        let mut probe = (sink.as_mut(), (metrics.as_mut(), guard.as_mut()));
        let halt = system
            .run_probed(max_steps, &mut probe)
            .map_err(|e| CliError::new(e.to_string()))?;
        probe.finish();
        halt
    } else {
        system
            .run(max_steps)
            .map_err(|e| CliError::new(e.to_string()))?
    };
    if let Some(sink) = sink.take() {
        close_trace_sink(sink, trace_out.unwrap_or_default(), out)?;
    }

    if let Some(g) = &guard {
        let tripped = g.violation().is_some();
        // A forced dump always lands at --flight-out; a watchdog trip
        // with no destination still dumps, next to the input.
        let dump_path: Option<String> = match flight_out {
            Some(path) => Some(path.to_string()),
            None if tripped => Some(format!("{input}.flight.jsonl")),
            None => None,
        };
        if let Some(path) = &dump_path {
            let text = g.trip_dump().map_or_else(|| g.dump(), str::to_string);
            std::fs::write(path, text)
                .map_err(|e| CliError::new(format!("--flight-out {path}: {e}")))?;
            writeln!(
                out,
                "flight: {} of {} event(s) retained ({} dropped) -> {path}",
                g.recorder().retained(),
                g.recorder().total(),
                g.recorder().total_dropped(),
            )?;
        }
        if let Some(v) = g.violation() {
            return Err(CliError::new(format!(
                "accel: watchdog {v}{}",
                dump_path
                    .map(|p| format!(" (flight dump: {p})"))
                    .unwrap_or_default()
            )));
        }
    }
    if !system.machine().output.is_empty() {
        writeln!(out, "--- program output ---")?;
        out.write_all(&system.machine().output)?;
        writeln!(out, "\n----------------------")?;
    }
    writeln!(out, "{}", system.report())?;
    if certs_path.is_some() {
        writeln!(
            out,
            "stream: {} commit(s) tagged stream_ok, {} rcache entry(ies) tagged now",
            system.stream_tags_applied(),
            system.cache().stream_tag_count()
        )?;
    }
    if let Some(metrics) = &metrics {
        writeln!(out, "--- metrics ---")?;
        write!(out, "{}", metrics.render())?;
    }
    if let Some(trace) = system.trace() {
        writeln!(out, "--- last array invocations ---")?;
        write!(out, "{trace}")?;
    }
    if args.iter().any(|a| a == "--dump-configs") {
        for config in system.cache().iter() {
            write!(out, "{}", dim_cgra::render_occupancy(config))?;
        }
    }
    if args.iter().any(|a| a == "--compare") {
        let mut baseline = Machine::load(&program);
        baseline
            .run(max_steps)
            .map_err(|e| CliError::new(e.to_string()))?;
        writeln!(
            out,
            "baseline {} cycles -> speedup {:.2}x",
            baseline.stats.cycles,
            baseline.stats.cycles as f64 / system.total_cycles().max(1) as f64
        )?;
    }
    if let Some(path) = rcache_save {
        let bytes = system.save_rcache();
        dim_sweep::atomic_write(Path::new(path), &bytes)
            .map_err(|e| CliError::new(format!("--rcache-save {path}: {e}")))?;
        writeln!(
            out,
            "rcache: saved {} configuration(s) ({} bytes) to {path}",
            system.cache().len(),
            bytes.len()
        )?;
    }
    report_halt(out, halt)
}

fn cmd_sweep(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    use dim_sweep::{bench_compare, run_sweep, SweepOptions, SweepSpec};
    check_flags(
        "sweep",
        args,
        &[
            "--jobs",
            "--out",
            "--limit",
            "--bench-out",
            "--warm",
            "--flight",
            "--telemetry-interval",
        ],
        &["--explain"],
        1,
    )?;
    let input = args
        .first()
        .ok_or_else(|| CliError::new("sweep: missing spec file"))?;
    let text = std::fs::read_to_string(Path::new(input))
        .map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let spec = SweepSpec::parse(&text).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let jobs: usize = parse_flag_value(args, "--jobs")?
        .map(|v| v.parse().map_err(|_| CliError::new("--jobs: not a number")))
        .transpose()?
        .unwrap_or(1);
    if jobs == 0 {
        return Err(CliError::new("--jobs: must be at least 1"));
    }
    let limit: Option<usize> = parse_flag_value(args, "--limit")?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::new("--limit: not a number"))
        })
        .transpose()?;
    let warm = parse_flag_value(args, "--warm")?
        .map(|v| match v {
            "on" => Ok(true),
            "off" => Ok(false),
            other => Err(CliError::new(format!(
                "--warm: expected on|off, got `{other}`"
            ))),
        })
        .transpose()?;

    if let Some(bench_out) = parse_flag_value(args, "--bench-out")? {
        if limit.is_some() {
            return Err(CliError::new(
                "sweep: --limit and --bench-out are mutually exclusive \
                 (a truncated run cannot be compared)",
            ));
        }
        let compare = bench_compare(&spec, Path::new(bench_out), jobs)
            .map_err(|e| CliError::new(e.to_string()))?;
        writeln!(
            out,
            "bench: {} cells, serial {:.3}s, parallel({}) {:.3}s, speedup {:.2}x, identical: {}",
            compare.cells,
            compare.serial_seconds,
            compare.jobs,
            compare.parallel_seconds,
            compare.speedup,
            compare.identical
        )?;
        writeln!(
            out,
            "wrote {}",
            Path::new(bench_out).join("BENCH_sweep.json").display()
        )?;
        if !compare.identical {
            return Err(CliError::new(
                "sweep: parallel results diverged from serial — this is an engine bug",
            ));
        }
        return Ok(());
    }

    let out_dir = parse_flag_value(args, "--out")?.unwrap_or("sweep-out");
    let mut opts = SweepOptions::new(Path::new(out_dir).to_path_buf());
    opts.jobs = jobs;
    opts.limit = limit;
    opts.warm_rcache = warm;
    opts.explain = args.iter().any(|a| a == "--explain");
    // Unlike accel's, sweep's recorder is on by default; `--flight 0`
    // switches the per-worker recorder + watchdog off.
    if let Some(capacity) = parse_flag_value(args, "--flight")? {
        opts.flight_capacity = capacity
            .parse()
            .map_err(|_| CliError::new("--flight: not a number"))?;
    }
    opts.telemetry_interval = parse_telemetry_interval(args)?.unwrap_or(0);
    let outcome = run_sweep(&spec, &opts).map_err(|e| CliError::new(e.to_string()))?;
    if opts.explain && outcome.executed > 0 {
        writeln!(
            out,
            "forensics: per-cell explain reports under {}",
            opts.out_dir.join("explain").display()
        )?;
    }
    writeln!(
        out,
        "telemetry: {} (watch with `dim top {} --follow`)",
        opts.out_dir.join(STATUS_FILE_NAME).display(),
        opts.out_dir.display()
    )?;
    writeln!(
        out,
        "sweep: {} cells ({} executed, {} skipped) in {:.3}s with {} worker(s), {} steal(s)",
        outcome.total_cells,
        outcome.executed,
        outcome.skipped,
        outcome.wall_seconds,
        outcome.pool.threads,
        outcome.pool.total_steals()
    )?;
    if outcome.complete {
        writeln!(
            out,
            "complete: report at {}",
            opts.out_dir.join("report.txt").display()
        )?;
    } else {
        writeln!(
            out,
            "incomplete ({} cells remain): rerun the same command to resume",
            outcome.total_cells - outcome.executed - outcome.skipped
        )?;
    }
    Ok(())
}

fn cmd_profile(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let input = args
        .first()
        .ok_or_else(|| CliError::new("profile: missing input file"))?;
    let program = load_program(input)?;
    let shape = match parse_flag_value(args, "--config")?.unwrap_or("1") {
        "1" => ArrayShape::config1(),
        "2" => ArrayShape::config2(),
        "3" => ArrayShape::config3(),
        "ideal" => ArrayShape::infinite(),
        other => return Err(CliError::new(format!("--config: unknown `{other}`"))),
    };
    let slots: usize = parse_flag_value(args, "--slots")?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::new("--slots: not a number"))
        })
        .transpose()?
        .unwrap_or(64);
    let speculation = !args.iter().any(|a| a == "--no-spec");
    let max_steps: u64 = parse_flag_value(args, "--max-steps")?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::new("--max-steps: not a number"))
        })
        .transpose()?
        .unwrap_or(100_000_000);
    let top: usize = parse_flag_value(args, "--top")?
        .map(|v| v.parse().map_err(|_| CliError::new("--top: not a number")))
        .transpose()?
        .unwrap_or(20);

    let mut system = System::new(
        Machine::load(&program),
        SystemConfig::new(shape, slots, speculation),
    );
    if args.iter().any(|a| a == "--caches") {
        attach_caches(system.machine_mut());
    }
    let mut profiler = CycleProfiler::new();
    let halt = system
        .run_probed(max_steps, &mut profiler)
        .map_err(|e| CliError::new(e.to_string()))?;
    let profile = profiler.into_profile();
    if profile.total_cycles() != system.total_cycles() {
        return Err(CliError::new(format!(
            "cycle attribution mismatch: profile accounts for {} cycles, run took {} — \
             this is a simulator bug",
            profile.total_cycles(),
            system.total_cycles()
        )));
    }
    if args.iter().any(|a| a == "--json") {
        writeln!(out, "{}", profile.to_json())?;
        return Ok(());
    }
    write!(out, "{}", profile.render(top))?;
    report_halt(out, halt)
}

fn cmd_trace(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    check_flags("trace", args, &[], &["--stats"], 1)?;
    let input = args
        .first()
        .ok_or_else(|| CliError::new("trace: missing trace file"))?;
    let text = std::fs::read_to_string(Path::new(input))
        .map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let trace =
        dim_obs::replay::read_trace(&text).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let s = &trace.summary;
    writeln!(
        out,
        "valid trace: workload `{}`, schema v{}, {} records",
        trace.header.workload,
        trace.header.schema_version,
        trace.records.len()
    )?;
    writeln!(
        out,
        "  pipeline: {} retired, {} cycles",
        s.retired, s.pipeline_cycles
    )?;
    writeln!(
        out,
        "  array:    {} invocations, {} instructions, {} cycles, {} misspeculations",
        s.array_invocations,
        s.array_instructions,
        s.array_exec_cycles + s.reconfig_stall_cycles + s.writeback_tail_cycles,
        s.misspeculations
    )?;
    writeln!(
        out,
        "  rcache:   {} hits, {} misses, {} built, {} flushed",
        s.rcache_hits, s.rcache_misses, s.configs_built, s.config_flushes
    )?;
    writeln!(out, "  total:    {} cycles", s.total_cycles())?;
    if args.iter().any(|a| a == "--stats") {
        writeln!(out, "  records by kind:")?;
        for (kind, count) in trace.record_stats() {
            writeln!(out, "    {kind:<14} {count:>10}")?;
        }
        if !trace.header.dropped.is_empty() {
            let total: u64 = trace.header.dropped.iter().map(|(_, n)| *n).sum();
            writeln!(out, "  dropped by kind (flight window, {total} total):")?;
            for (kind, count) in &trace.header.dropped {
                writeln!(out, "    {kind:<14} {count:>10}")?;
            }
        }
    }
    Ok(())
}

/// Percentage with one decimal, or `-` when the denominator is unknown.
fn heat_pct(num: u64, den: u64) -> String {
    if den == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// A `#` bar scaled so the largest value fills `width` columns.
fn heat_bar(value: u64, max: u64, width: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let filled = ((value as f64 / max as f64) * width as f64).round() as usize;
    "#".repeat(filled.min(width))
}

fn cmd_heat(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    check_flags(
        "heat",
        args,
        &[
            "--config",
            "--slots",
            "--max-steps",
            "--chrome-out",
            "--rows",
        ],
        &["--json", "--no-spec"],
        1,
    )?;
    let input = args
        .first()
        .ok_or_else(|| CliError::new("heat: missing trace or workload file"))?;
    let bytes =
        std::fs::read(Path::new(input)).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let want_json = args.iter().any(|a| a == "--json");
    let row_limit: usize = parse_flag_value(args, "--rows")?
        .map(|v| v.parse().map_err(|_| CliError::new("--rows: not a number")))
        .transpose()?
        .unwrap_or(32);
    // A JSONL trace opens with its `{"type":"header",...}` line; anything
    // else (assembly source, image magic) is a workload to run.
    if bytes.starts_with(b"{") {
        for flag in ["--config", "--slots", "--max-steps", "--no-spec"] {
            if args.iter().any(|a| a == flag) {
                return Err(CliError::new(format!(
                    "heat: `{flag}` only applies when running a workload; `{input}` is a trace"
                )));
            }
        }
        let text = String::from_utf8(bytes)
            .map_err(|_| CliError::new(format!("{input}: not UTF-8 JSONL")))?;
        heat_from_trace(
            input,
            &text,
            want_json,
            parse_flag_value(args, "--chrome-out")?,
            row_limit,
            out,
        )
    } else {
        if parse_flag_value(args, "--chrome-out")?.is_some() {
            return Err(CliError::new(
                "heat: --chrome-out needs per-invocation samples, which only a trace \
                 carries — record one with `dim accel <file> --trace-out <t.jsonl>` \
                 and point `dim heat` at it",
            ));
        }
        heat_from_run(input, args, want_json, row_limit, out)
    }
}

/// Runs `input` accelerated and renders the per-row fabric heat the
/// system accumulated, after checking the accounting reconciles exactly
/// with the cycle breakdown.
fn heat_from_run(
    input: &str,
    args: &[String],
    want_json: bool,
    row_limit: usize,
    out: &mut impl Write,
) -> Result<(), CliError> {
    use dim_cgra::{UNIT_CLASSES, UNIT_CLASS_NAMES};
    use dim_mips::FuClass;

    let program = load_program(input)?;
    let config_choice = parse_flag_value(args, "--config")?.unwrap_or("1");
    let shape = match config_choice {
        "1" => ArrayShape::config1(),
        "2" => ArrayShape::config2(),
        "3" => ArrayShape::config3(),
        "ideal" => ArrayShape::infinite(),
        other => return Err(CliError::new(format!("--config: unknown `{other}`"))),
    };
    let slots: usize = parse_flag_value(args, "--slots")?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::new("--slots: not a number"))
        })
        .transpose()?
        .unwrap_or(64);
    let speculation = !args.iter().any(|a| a == "--no-spec");
    let max_steps: u64 = parse_flag_value(args, "--max-steps")?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::new("--max-steps: not a number"))
        })
        .transpose()?
        .unwrap_or(100_000_000);
    let mut system = System::new(
        Machine::load(&program),
        SystemConfig::new(shape, slots, speculation),
    );
    let halt = system
        .run(max_steps)
        .map_err(|e| CliError::new(e.to_string()))?;
    let heat = system.fabric_heat();
    let breakdown = system.cycle_breakdown();
    if heat.exec_cycles + heat.residual_cycles != breakdown.array_exec {
        return Err(CliError::new(format!(
            "fabric accounting mismatch: heat accounts for {} + {} cycles, the run \
             charged {} array-exec cycles — this is a simulator bug",
            heat.exec_cycles, heat.residual_cycles, breakdown.array_exec
        )));
    }
    if want_json {
        writeln!(out, "{}", dim_core::fabric_heat_json(heat))?;
        return Ok(());
    }
    writeln!(
        out,
        "fabric heat: `{input}`, config {config_choice}, {} invocation(s)",
        heat.invocations
    )?;
    let busy = heat.total_busy_thirds();
    writeln!(
        out,
        "  util: {} of unit capacity (alu {}, mult {}, ldst {})",
        heat_pct(busy, heat.total_capacity_thirds()),
        heat_pct(heat.busy_thirds[0], heat.capacity_thirds[0]),
        heat_pct(heat.busy_thirds[1], heat.capacity_thirds[1]),
        heat_pct(heat.busy_thirds[2], heat.capacity_thirds[2]),
    )?;
    let issued: u64 = heat.issued_ops.iter().sum();
    writeln!(
        out,
        "  ops: {} issued, {} squashed ({} of configured)",
        issued,
        heat.squashed_ops,
        heat_pct(heat.squashed_ops, issued + heat.squashed_ops),
    )?;
    writeln!(
        out,
        "  exec: {} cycle(s) in rows + {} residual (stall/misspec) = {} array-exec",
        heat.exec_cycles, heat.residual_cycles, breakdown.array_exec
    )?;
    writeln!(
        out,
        "  writeback: {} write(s) into {} port-slot(s) ({} saturated)",
        heat.writeback_writes,
        heat.writeback_slots,
        heat_pct(heat.writeback_writes, heat.writeback_slots),
    )?;
    // Per-row heatmap: busy% per class against that row's physical units
    // over the same traversal windows.
    let per_row_units: [u64; UNIT_CLASSES] = [
        shape.units_per_row(FuClass::Alu) as u64,
        shape.units_per_row(FuClass::Multiplier) as u64,
        shape.units_per_row(FuClass::LoadStore) as u64,
    ];
    let shown = heat.rows().iter().take(row_limit);
    let max_traversals = heat.rows().iter().map(|r| r.traversals).max().unwrap_or(0);
    writeln!(
        out,
        "  {:>7} {:>10} {:>7} {:>7} {:>7}  traversals",
        "row", "trav", UNIT_CLASS_NAMES[0], UNIT_CLASS_NAMES[1], UNIT_CLASS_NAMES[2]
    )?;
    for (i, row) in shown.enumerate() {
        if row.traversals == 0 {
            continue;
        }
        let class_pct =
            |c: usize| heat_pct(row.busy_thirds[c], per_row_units[c] * row.active_thirds);
        writeln!(
            out,
            "  row {:>3} {:>10} {:>7} {:>7} {:>7}  {}",
            i,
            row.traversals,
            class_pct(0),
            class_pct(1),
            class_pct(2),
            heat_bar(row.traversals, max_traversals, 32),
        )?;
    }
    if heat.rows().len() > row_limit || heat.overflow_row().traversals > 0 {
        let hidden: u64 = heat
            .rows()
            .iter()
            .skip(row_limit)
            .map(|r| r.traversals)
            .sum::<u64>()
            + heat.overflow_row().traversals;
        writeln!(
            out,
            "  ... deeper rows: {hidden} traversal(s) (raise --rows to see them)"
        )?;
    }
    report_halt(out, halt)
}

/// Summarizes the schema-v4 `fabric` records of an existing trace, with
/// optional Chrome counter-track export sampled per invocation.
fn heat_from_trace(
    input: &str,
    text: &str,
    want_json: bool,
    chrome_out: Option<&str>,
    row_limit: usize,
    out: &mut impl Write,
) -> Result<(), CliError> {
    use dim_obs::replay::{read_trace, TraceRecord};
    use dim_obs::{ObjectWriter, ProbeEvent};

    let trace = read_trace(text).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let s = trace.summary;
    // Traversal-depth profile (how many invocations reached each row)
    // and, when exporting, one counter sample per invocation on the
    // cumulative simulated-cycle clock.
    let mut depth: Vec<u64> = Vec::new();
    let mut counters: Vec<String> = Vec::new();
    let mut clock: u64 = 0;
    for rec in &trace.records {
        match rec {
            TraceRecord::RetireBatch {
                base_cycles,
                i_stall,
                d_stall,
                ..
            } => clock += base_cycles + i_stall + d_stall,
            TraceRecord::Event(ProbeEvent::Fabric(f)) => {
                for r in 0..f.rows as usize {
                    if r >= depth.len() {
                        depth.resize(r + 1, 0);
                    }
                    depth[r] += 1;
                }
                if chrome_out.is_some() {
                    let mut o = ObjectWriter::new();
                    o.field_str("ph", "C");
                    o.field_u64("pid", 1);
                    o.field_str("name", "fabric busy thirds");
                    o.field_u64("ts", clock);
                    let mut args = ObjectWriter::new();
                    args.field_u64("alu", f.alu_busy_thirds as u64);
                    args.field_u64("mult", f.mult_busy_thirds as u64);
                    args.field_u64("ldst", f.ldst_busy_thirds as u64);
                    o.field_raw("args", &args.finish());
                    counters.push(o.finish());
                    if f.capacity_thirds > 0 {
                        let mut o = ObjectWriter::new();
                        o.field_str("ph", "C");
                        o.field_u64("pid", 1);
                        o.field_str("name", "fabric util %");
                        o.field_u64("ts", clock);
                        let mut args = ObjectWriter::new();
                        args.field_f64(
                            "util",
                            100.0 * f.busy_thirds() as f64 / f.capacity_thirds as f64,
                        );
                        o.field_raw("args", &args.finish());
                        counters.push(o.finish());
                    }
                }
            }
            TraceRecord::Event(ProbeEvent::ArrayInvoke(inv)) => clock += inv.total_cycles(),
            _ => {}
        }
    }
    if let Some(path) = chrome_out {
        let mut export = String::from("{\"traceEvents\":[");
        export.push_str(&counters.join(","));
        export.push_str("],\"displayTimeUnit\":\"ms\"}");
        std::fs::write(path, export)
            .map_err(|e| CliError::new(format!("--chrome-out {path}: {e}")))?;
        writeln!(
            out,
            "chrome counters -> {path} (load in ui.perfetto.dev or chrome://tracing)"
        )?;
    }
    if want_json {
        let busy = s.fabric_alu_busy_thirds + s.fabric_mult_busy_thirds + s.fabric_ldst_busy_thirds;
        let mut o = ObjectWriter::new();
        o.field_str("workload", &trace.header.workload);
        o.field_u64("schema_version", trace.header.schema_version as u64);
        o.field_u64("fabric_records", s.fabric_records);
        o.field_u64("rows", s.fabric_rows);
        o.field_u64("exec_thirds", s.fabric_exec_thirds);
        o.field_u64("capacity_thirds", s.fabric_capacity_thirds);
        let mut classes = ObjectWriter::new();
        classes.field_u64("alu", s.fabric_alu_busy_thirds);
        classes.field_u64("mult", s.fabric_mult_busy_thirds);
        classes.field_u64("ldst", s.fabric_ldst_busy_thirds);
        o.field_raw("busy_thirds", &classes.finish());
        if s.fabric_capacity_thirds > 0 {
            o.field_f64("fabric_util", busy as f64 / s.fabric_capacity_thirds as f64);
        } else {
            o.field_raw("fabric_util", "null");
        }
        o.field_u64("issued_ops", s.fabric_issued_ops);
        o.field_u64("squashed_ops", s.fabric_squashed_ops);
        o.field_u64("residual_cycles", s.fabric_residual_cycles);
        o.field_u64("writeback_writes", s.fabric_writeback_writes);
        o.field_u64("writeback_slots", s.fabric_writeback_slots);
        if s.fabric_writeback_slots > 0 {
            o.field_f64(
                "writeback_saturation",
                s.fabric_writeback_writes as f64 / s.fabric_writeback_slots as f64,
            );
        } else {
            o.field_raw("writeback_saturation", "null");
        }
        o.field_u64("array_exec_cycles", s.array_exec_cycles);
        writeln!(out, "{}", o.finish())?;
        return Ok(());
    }
    writeln!(
        out,
        "fabric heat: workload `{}`, schema v{}, {} fabric record(s)",
        trace.header.workload, trace.header.schema_version, s.fabric_records
    )?;
    if s.fabric_records == 0 {
        writeln!(
            out,
            "  no fabric records — re-record with a schema-v4 `dim accel --trace-out` \
             to capture per-invocation fabric occupancy"
        )?;
        return Ok(());
    }
    let busy = s.fabric_alu_busy_thirds + s.fabric_mult_busy_thirds + s.fabric_ldst_busy_thirds;
    writeln!(
        out,
        "  util: {} of unit capacity (busy share: alu {}, mult {}, ldst {})",
        heat_pct(busy, s.fabric_capacity_thirds),
        heat_pct(s.fabric_alu_busy_thirds, busy),
        heat_pct(s.fabric_mult_busy_thirds, busy),
        heat_pct(s.fabric_ldst_busy_thirds, busy),
    )?;
    writeln!(
        out,
        "  rows: {} traversed ({:.1} mean/invocation)",
        s.fabric_rows,
        s.fabric_rows as f64 / s.fabric_records.max(1) as f64
    )?;
    writeln!(
        out,
        "  ops: {} issued, {} squashed ({} of configured)",
        s.fabric_issued_ops,
        s.fabric_squashed_ops,
        heat_pct(
            s.fabric_squashed_ops,
            s.fabric_issued_ops + s.fabric_squashed_ops
        ),
    )?;
    writeln!(
        out,
        "  residual: {} cycle(s) outside the row model ({} of array-exec)",
        s.fabric_residual_cycles,
        heat_pct(s.fabric_residual_cycles, s.array_exec_cycles),
    )?;
    writeln!(
        out,
        "  writeback: {} write(s) into {} port-slot(s) ({} saturated)",
        s.fabric_writeback_writes,
        s.fabric_writeback_slots,
        heat_pct(s.fabric_writeback_writes, s.fabric_writeback_slots),
    )?;
    writeln!(out, "  traversal depth profile:")?;
    let max_depth = depth.first().copied().unwrap_or(0);
    for (i, n) in depth.iter().take(row_limit).enumerate() {
        writeln!(
            out,
            "    row {:>3} {:>10}  {}",
            i,
            n,
            heat_bar(*n, max_depth, 32)
        )?;
    }
    if depth.len() > row_limit {
        writeln!(
            out,
            "    ... {} deeper row(s) (raise --rows to see them)",
            depth.len() - row_limit
        )?;
    }
    Ok(())
}

/// One aligned table row per status entry; live rates are derived, not
/// stored, so a stale snapshot still renders consistently.
fn render_status(entries: &[StatusEntry], out: &mut impl Write) -> Result<(), CliError> {
    writeln!(
        out,
        "{:<10} {:<8} {:>9}  {:<24} {:>12} {:>14} {:>6} {:>6} {:>9} {:>8} {:>5}",
        "source",
        "state",
        "done",
        "label",
        "retired",
        "sim cycles",
        "hit%",
        "fab%",
        "sim-MIPS",
        "p99-us",
        "queue"
    )?;
    for e in entries {
        let lookups = e.rcache_hits + e.rcache_misses;
        let hit_pct = if lookups == 0 {
            "-".to_string()
        } else {
            format!("{:.1}", 100.0 * e.rcache_hits as f64 / lookups as f64)
        };
        // Fabric utilization: zero capacity means an infinite shape or a
        // pre-fabric (status v1) producer — render `-`, not 0.
        let fab_pct = if e.fabric_capacity_thirds == 0 {
            "-".to_string()
        } else {
            format!(
                "{:.1}",
                100.0 * e.fabric_busy_thirds as f64 / e.fabric_capacity_thirds as f64
            )
        };
        let sim_mips = if e.host_nanos == 0 {
            "-".to_string()
        } else {
            // retired instructions per host second, in millions:
            // retired / (host_nanos / 1e9) / 1e6.
            format!("{:.1}", e.retired as f64 * 1000.0 / e.host_nanos as f64)
        };
        // Request-latency columns only apply to serving aggregates
        // (and to status v2 files they default to 0) — render `-`.
        let p99 = if e.latency_p99_micros == 0 {
            "-".to_string()
        } else {
            e.latency_p99_micros.to_string()
        };
        let queue = if e.queue_depth == 0 && e.latency_p99_micros == 0 {
            "-".to_string()
        } else {
            e.queue_depth.to_string()
        };
        writeln!(
            out,
            "{:<10} {:<8} {:>9}  {:<24} {:>12} {:>14} {:>6} {:>6} {:>9} {:>8} {:>5}",
            e.source,
            e.state,
            format!("{}/{}", e.done, e.total),
            e.label,
            e.retired,
            e.sim_cycles,
            hit_pct,
            fab_pct,
            sim_mips,
            p99,
            queue
        )?;
    }
    Ok(())
}

/// How `dim top --follow` polls and how hard it tries when the status
/// file is missing or torn. Injectable so tests can run in milliseconds.
struct FollowPolicy {
    /// Delay between successful renders.
    poll: std::time::Duration,
    /// First retry delay after a failed read.
    backoff_start: std::time::Duration,
    /// Retry delay ceiling (doubles up to this).
    backoff_cap: std::time::Duration,
    /// Consecutive failed reads tolerated before giving up.
    max_misses: u32,
}

impl Default for FollowPolicy {
    fn default() -> FollowPolicy {
        FollowPolicy {
            poll: std::time::Duration::from_millis(200),
            backoff_start: std::time::Duration::from_millis(50),
            backoff_cap: std::time::Duration::from_millis(800),
            max_misses: 25,
        }
    }
}

fn run_top(
    path: &Path,
    follow: bool,
    policy: &FollowPolicy,
    out: &mut impl Write,
) -> Result<(), CliError> {
    let mut misses: u32 = 0;
    let mut backoff = policy.backoff_start;
    loop {
        match read_status(path) {
            Ok(status) => {
                misses = 0;
                backoff = policy.backoff_start;
                render_status(&status.entries, out)?;
                let finished = status
                    .entries
                    .first()
                    .is_none_or(|e| e.state == "done" || e.state == "failed");
                if !follow || finished {
                    return Ok(());
                }
                writeln!(out)?;
                std::thread::sleep(policy.poll);
            }
            // Following a live producer: the file may not exist yet (a
            // sweep still warming up), may read torn mid-rewrite, or may
            // vanish and reappear when a daemon restarts or re-publishes.
            // Every error kind is transient while following — retry with
            // bounded doubling backoff, and only give up after a run of
            // consecutive misses with nothing rendered in between.
            Err(e) if follow => {
                misses += 1;
                if misses > policy.max_misses {
                    return Err(CliError::new(format!(
                        "{}: gave up after {} attempts: {e}",
                        path.display(),
                        policy.max_misses
                    )));
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(policy.backoff_cap);
            }
            Err(e) => return Err(CliError::new(format!("{}: {e}", path.display()))),
        }
    }
}

fn cmd_top(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    check_flags("top", args, &[], &["--follow"], 1)?;
    let target = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or_else(|| CliError::new("top: missing status file or sweep output directory"))?;
    let mut path = Path::new(target).to_path_buf();
    if path.is_dir() {
        path = path.join(STATUS_FILE_NAME);
    }
    let follow = args.iter().any(|a| a == "--follow");
    run_top(&path, follow, &FollowPolicy::default(), out)
}

fn cmd_explain(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    check_flags(
        "explain",
        args,
        &["--chrome-out", "--folded-out", "--top"],
        &["--json"],
        1,
    )?;
    let input = args
        .first()
        .ok_or_else(|| CliError::new("explain: missing trace file"))?;
    let text = std::fs::read_to_string(Path::new(input))
        .map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let ex =
        dim_explain::explain_text(&text).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let top: usize = parse_flag_value(args, "--top")?
        .map(|v| v.parse().map_err(|_| CliError::new("--top: not a number")))
        .transpose()?
        .unwrap_or(10);
    if let Some(path) = parse_flag_value(args, "--chrome-out")? {
        std::fs::write(path, ex.chrome_trace())
            .map_err(|e| CliError::new(format!("--chrome-out {path}: {e}")))?;
        writeln!(
            out,
            "chrome trace -> {path} (load in ui.perfetto.dev or chrome://tracing)"
        )?;
    }
    if let Some(path) = parse_flag_value(args, "--folded-out")? {
        std::fs::write(path, ex.folded())
            .map_err(|e| CliError::new(format!("--folded-out {path}: {e}")))?;
        writeln!(
            out,
            "folded stacks -> {path} (feed to flamegraph.pl or speedscope)"
        )?;
    }
    if args.iter().any(|a| a == "--json") {
        writeln!(out, "{}", ex.to_json())?;
        return Ok(());
    }
    write!(out, "{}", ex.render(top))?;
    Ok(())
}

fn cmd_suite(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    use dim_workloads::{run_baseline, suite, Scale};
    let scale = match parse_flag_value(args, "--scale")?.unwrap_or("small") {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "full" => Scale::Full,
        other => return Err(CliError::new(format!("--scale: unknown `{other}`"))),
    };
    for spec in suite() {
        let built = (spec.build)(scale);
        let machine =
            run_baseline(&built).map_err(|e| CliError::new(format!("{}: {e}", spec.name)))?;
        let mut sys = System::new(
            Machine::load(&built.program),
            SystemConfig::new(ArrayShape::config2(), 64, true),
        );
        sys.run(built.max_steps)
            .map_err(|e| CliError::new(e.to_string()))?;
        dim_workloads::validate(sys.machine(), &built)
            .map_err(|e| CliError::new(format!("{} (accelerated): {e}", spec.name)))?;
        writeln!(
            out,
            "{:16} [{}] ok: {:>9} cycles baseline, {:>9} accelerated ({:.2}x)",
            spec.name,
            spec.category,
            machine.stats.cycles,
            sys.total_cycles(),
            machine.stats.cycles as f64 / sys.total_cycles().max(1) as f64,
        )?;
    }
    Ok(())
}

fn cmd_compare(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    use dim_mips_sim::{SuperscalarConfig, SuperscalarModel};
    let input = args
        .first()
        .ok_or_else(|| CliError::new("compare: missing input file"))?;
    let program = load_program(input)?;
    let max_steps: u64 = parse_flag_value(args, "--max-steps")?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::new("--max-steps: not a number"))
        })
        .transpose()?
        .unwrap_or(100_000_000);

    let mut machine = Machine::load(&program);
    let mut ss = SuperscalarModel::new(SuperscalarConfig::default());
    machine
        .run_with(max_steps, |i| ss.observe(i))
        .map_err(|e| CliError::new(e.to_string()))?;
    let scalar = machine.stats.cycles;
    let superscalar = ss.finish();
    writeln!(
        out,
        "{:<24} {:>12} {:>9}",
        "organization", "cycles", "speedup"
    )?;
    writeln!(out, "{:<24} {:>12} {:>9}", "scalar MIPS", scalar, "1.00")?;
    writeln!(
        out,
        "{:<24} {:>12} {:>9.2}",
        "2-wide superscalar",
        superscalar,
        scalar as f64 / superscalar.max(1) as f64
    )?;
    for (name, shape) in [
        ("DIM config #1", ArrayShape::config1()),
        ("DIM config #2", ArrayShape::config2()),
        ("DIM config #3", ArrayShape::config3()),
    ] {
        let mut sys = System::new(Machine::load(&program), SystemConfig::new(shape, 64, true));
        sys.run(max_steps)
            .map_err(|e| CliError::new(e.to_string()))?;
        writeln!(
            out,
            "{:<24} {:>12} {:>9.2}",
            name,
            sys.total_cycles(),
            scalar as f64 / sys.total_cycles().max(1) as f64
        )?;
    }
    Ok(())
}

fn perf_read_baseline(path: &str) -> Result<dim_perf::Baseline, CliError> {
    let text = std::fs::read_to_string(Path::new(path))
        .map_err(|e| CliError::new(format!("{path}: {e}")))?;
    dim_perf::Baseline::parse(&text).map_err(|e| CliError::new(format!("{path}: {e}")))
}

fn cmd_perf_record(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    use dim_perf::{bench_perf_json, record, RecordOptions};
    check_flags(
        "perf record",
        args,
        &[
            "--out",
            "--name",
            "--workloads",
            "--scale",
            "--shape",
            "--slots",
            "--reps",
            "--bench-out",
        ],
        &["--no-spec"],
        0,
    )?;
    let out_path = parse_flag_value(args, "--out")?
        .ok_or_else(|| CliError::new("perf record: --out <file> is required"))?;
    let workloads: Vec<String> = match parse_flag_value(args, "--workloads")? {
        Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
        None => dim_workloads::suite()
            .iter()
            .map(|s| s.name.to_string())
            .collect(),
    };
    let opts = RecordOptions {
        name: parse_flag_value(args, "--name")?.unwrap_or("local").into(),
        workloads,
        scale: parse_flag_value(args, "--scale")?.unwrap_or("tiny").into(),
        shape: parse_flag_value(args, "--shape")?
            .map(|v| {
                v.parse()
                    .map_err(|_| CliError::new("--shape: not a number"))
            })
            .transpose()?
            .unwrap_or(2),
        cache_slots: parse_flag_value(args, "--slots")?
            .map(|v| {
                v.parse()
                    .map_err(|_| CliError::new("--slots: not a number"))
            })
            .transpose()?
            .unwrap_or(64),
        speculation: !args.iter().any(|a| a == "--no-spec"),
        host_reps: parse_flag_value(args, "--reps")?
            .map(|v| v.parse().map_err(|_| CliError::new("--reps: not a number")))
            .transpose()?
            .unwrap_or(3),
    };
    let baseline = record(&opts).map_err(|e| CliError::new(e.to_string()))?;
    if let Some(parent) = Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| CliError::new(format!("--out {out_path}: {e}")))?;
        }
    }
    std::fs::write(out_path, baseline.to_json())
        .map_err(|e| CliError::new(format!("--out {out_path}: {e}")))?;
    for w in &baseline.workloads {
        writeln!(
            out,
            "{:16} {:>10} cycles ({:.2}x), wall {:.3} ms, {:.1} sim-MIPS",
            w.name,
            w.accel_cycles,
            w.speedup,
            w.host.wall_nanos_min as f64 / 1e6,
            w.host.sim_mips
        )?;
    }
    writeln!(
        out,
        "baseline `{}`: {} workload(s) -> {out_path}",
        baseline.name,
        baseline.workloads.len()
    )?;
    if let Some(dir) = parse_flag_value(args, "--bench-out")? {
        let dir = Path::new(dir);
        std::fs::create_dir_all(dir).map_err(|e| CliError::new(format!("--bench-out: {e}")))?;
        let path = dir.join("BENCH_perf.json");
        std::fs::write(&path, bench_perf_json(&baseline))
            .map_err(|e| CliError::new(format!("{}: {e}", path.display())))?;
        writeln!(out, "wrote {}", path.display())?;
    }
    Ok(())
}

fn cmd_perf_compare(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    check_flags("perf compare", args, &[], &["--json"], 2)?;
    let mut files = args.iter().filter(|a| !a.starts_with('-'));
    let (Some(base_path), Some(cur_path)) = (files.next(), files.next()) else {
        return Err(CliError::new(
            "perf compare: expected two baseline files (base, current)",
        ));
    };
    let base = perf_read_baseline(base_path)?;
    let cur = perf_read_baseline(cur_path)?;
    let cmp = dim_perf::compare(&base, &cur);
    if args.iter().any(|a| a == "--json") {
        writeln!(out, "{}", cmp.to_json())?;
    } else {
        write!(out, "{}", cmp.render())?;
    }
    Ok(())
}

fn cmd_perf_gate(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    use dim_perf::{gate, record, RecordOptions, ToleranceSpec};
    check_flags(
        "perf gate",
        args,
        &["--baseline", "--current", "--tolerance-spec"],
        &["--json"],
        0,
    )?;
    let base_path = parse_flag_value(args, "--baseline")?
        .ok_or_else(|| CliError::new("perf gate: --baseline <file> is required"))?;
    let base = perf_read_baseline(base_path)?;
    let spec = match parse_flag_value(args, "--tolerance-spec")? {
        Some(path) => {
            let text = std::fs::read_to_string(Path::new(path))
                .map_err(|e| CliError::new(format!("{path}: {e}")))?;
            ToleranceSpec::parse(&text).map_err(|e| CliError::new(format!("{path}: {e}")))?
        }
        None => ToleranceSpec::strict(),
    };
    let cur = match parse_flag_value(args, "--current")? {
        Some(path) => perf_read_baseline(path)?,
        None => {
            // Re-record under exactly the parameters the reference was
            // captured with, so the matrices are guaranteed to match.
            let opts = RecordOptions::from_matrix("current", &base.matrix);
            record(&opts).map_err(|e| CliError::new(e.to_string()))?
        }
    };
    let outcome = gate(&base, &cur, &spec);
    if args.iter().any(|a| a == "--json") {
        writeln!(out, "{}", outcome.to_json())?;
    } else {
        write!(out, "{}", outcome.render())?;
    }
    if !outcome.ok() {
        return Err(CliError::new(format!(
            "perf gate: {} regression(s) beyond tolerance (baseline {base_path})",
            outcome.violations.len()
        )));
    }
    Ok(())
}

fn cmd_perf(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("record") => cmd_perf_record(&args[1..], out),
        Some("compare") => cmd_perf_compare(&args[1..], out),
        Some("gate") => cmd_perf_gate(&args[1..], out),
        Some(other) => Err(CliError::new(format!(
            "perf: unknown subcommand `{other}` (expected record, compare or gate)"
        ))),
        None => Err(CliError::new(
            "perf: missing subcommand (expected record, compare or gate)",
        )),
    }
}

fn lint_one(
    name: &str,
    program: &Program,
    allow: Vec<String>,
    json: bool,
    out: &mut impl Write,
) -> Result<bool, CliError> {
    use dim_lint::report::{render_human, render_json};
    let report = dim_lint::lint_program(program, &dim_lint::LintOptions { allow });
    if json {
        writeln!(out, "{}", render_json(name, &report))?;
    } else {
        write!(out, "{}", render_human(name, &report))?;
    }
    Ok(report.is_clean())
}

fn cmd_lint(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    check_flags(
        "lint",
        args,
        &["--allow", "--scale", "--config"],
        &["--suite", "--json", "--candidates"],
        1,
    )?;
    let json = args.iter().any(|a| a == "--json");

    if args.iter().any(|a| a == "--suite") {
        for flag in ["--allow", "--candidates", "--config"] {
            if args.iter().any(|a| a == flag) {
                return Err(CliError::new(format!(
                    "lint: `{flag}` does not apply to --suite \
                     (suite allowlists live in dim-workloads)"
                )));
            }
        }
        if args.iter().any(|a| !a.starts_with('-')) {
            return Err(CliError::new("lint: --suite takes no input file"));
        }
        let scale = match parse_flag_value(args, "--scale")?.unwrap_or("tiny") {
            "tiny" => dim_workloads::Scale::Tiny,
            "small" => dim_workloads::Scale::Small,
            "full" => dim_workloads::Scale::Full,
            other => return Err(CliError::new(format!("--scale: unknown `{other}`"))),
        };
        let mut unclean = Vec::new();
        for spec in dim_workloads::suite() {
            let built = (spec.build)(scale);
            let allow: Vec<String> = dim_workloads::lint_allowlist(spec.name)
                .iter()
                .map(|(code, _)| (*code).to_string())
                .collect();
            if !lint_one(spec.name, &built.program, allow, json, out)? {
                unclean.push(spec.name);
            }
        }
        if !unclean.is_empty() {
            return Err(CliError::new(format!(
                "lint: {} workload(s) failed the gate: {}",
                unclean.len(),
                unclean.join(", ")
            )));
        }
        return Ok(());
    }

    let input = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or_else(|| CliError::new("lint: missing input file"))?;
    let program = load_program(input)?;
    let allow: Vec<String> = parse_flag_value(args, "--allow")?
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_default();
    let clean = lint_one(input, &program, allow, json, out)?;
    if args.iter().any(|a| a == "--candidates") {
        use dim_lint::report::{render_candidates_human, render_candidates_json};
        let shape = match parse_flag_value(args, "--config")?.unwrap_or("2") {
            "1" => ArrayShape::config1(),
            "2" => ArrayShape::config2(),
            "3" => ArrayShape::config3(),
            other => return Err(CliError::new(format!("--config: unknown `{other}`"))),
        };
        let opts = dim_core::TranslatorOptions::new(shape);
        let set = dim_lint::candidates::compute_candidates(&program, &opts);
        if json {
            writeln!(out, "{}", render_candidates_json(&set))?;
        } else {
            write!(out, "{}", render_candidates_human(&set))?;
        }
    }
    if !clean {
        return Err(CliError::new(format!("lint: {input} failed the gate")));
    }
    Ok(())
}

fn cmd_verify(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    use dim_core::SnapshotContents;
    check_flags("verify", args, &[], &["--json"], 1)?;
    let json = args.iter().any(|a| a == "--json");
    let input = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or_else(|| CliError::new("verify: missing snapshot file"))?;
    let bytes = std::fs::read(input).map_err(|e| CliError::new(format!("{input}: {e}")))?;
    let contents =
        SnapshotContents::parse(&bytes).map_err(|e| CliError::new(format!("{input}: {e}")))?;

    let mut total_violations = 0usize;
    let mut findings = Vec::new();
    for config in &contents.configs {
        let violations = dim_cgra::verify::verify_config(config);
        total_violations += violations.len();
        findings.push((config, violations));
    }

    if json {
        let shape = &contents.shape;
        let mut doc = format!(
            "{{\"snapshot\":\"{}\",\"shape\":{{\"rows\":{},\"alus\":{},\"mults\":{},\"ldsts\":{}}},\"slots\":{},\"speculation\":{},\"max_spec_blocks\":{},\"predictor_entries\":{},\"strikes\":{},\"configs\":[",
            dim_lint::report::json_escape(input),
            shape.rows,
            shape.alus_per_row,
            shape.mults_per_row,
            shape.ldsts_per_row,
            contents.cache_slots,
            contents.speculation,
            contents.max_spec_blocks,
            contents.predictor.len(),
            contents.strikes.len(),
        );
        for (i, (config, violations)) in findings.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&format!(
                "{{\"entry\":{},\"ops\":{},\"rows\":{},\"segments\":{},\"violations\":[",
                config.entry_pc,
                config.instruction_count(),
                config.rows_used(),
                config.segments().len()
            ));
            for (j, v) in violations.iter().enumerate() {
                if j > 0 {
                    doc.push(',');
                }
                doc.push_str(&format!(
                    "{{\"kind\":\"{}\",\"detail\":\"{}\"}}",
                    v.kind,
                    dim_lint::report::json_escape(&v.to_string())
                ));
            }
            doc.push_str("]}");
        }
        doc.push_str(&format!("],\"ok\":{}}}", total_violations == 0));
        writeln!(out, "{doc}")?;
    } else {
        writeln!(
            out,
            "{input}: {} rows x {}a/{}m/{}l array, {} slots, speculation {} ({} blocks), {} predictor entries, {} strikes",
            contents.shape.rows,
            contents.shape.alus_per_row,
            contents.shape.mults_per_row,
            contents.shape.ldsts_per_row,
            contents.cache_slots,
            if contents.speculation { "on" } else { "off" },
            contents.max_spec_blocks,
            contents.predictor.len(),
            contents.strikes.len(),
        )?;
        for (config, violations) in &findings {
            writeln!(
                out,
                "  {:#010x}: {} ops, {} rows, {} segment(s) — {}",
                config.entry_pc,
                config.instruction_count(),
                config.rows_used(),
                config.segments().len(),
                if violations.is_empty() {
                    "ok".to_string()
                } else {
                    format!("{} violation(s)", violations.len())
                }
            )?;
            for v in violations {
                writeln!(out, "    {v}")?;
            }
        }
    }
    if total_violations > 0 {
        return Err(CliError::new(format!(
            "verify: {input}: {total_violations} violation(s) across {} configuration(s)",
            findings.iter().filter(|(_, v)| !v.is_empty()).count()
        )));
    }
    if !json {
        writeln!(
            out,
            "verify: {} configuration(s) structurally valid",
            findings.len()
        )?;
    }
    Ok(())
}

fn cmd_prove(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    use dim_lint::prove::prove_program;
    use dim_lint::report::render_prove_human;
    check_flags(
        "prove",
        args,
        &["--scale", "--cert-out", "--check"],
        &["--suite", "--json"],
        1,
    )?;
    let json = args.iter().any(|a| a == "--json");

    if let Some(path) = parse_flag_value(args, "--check")? {
        for flag in ["--suite", "--json", "--scale", "--cert-out"] {
            if args.iter().any(|a| a == flag) {
                return Err(CliError::new(format!(
                    "prove: `{flag}` does not combine with --check"
                )));
            }
        }
        let text =
            std::fs::read_to_string(path).map_err(|e| CliError::new(format!("{path}: {e}")))?;
        let mut count = 0usize;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            StreamingCert::parse_json(line)
                .map_err(|e| CliError::new(format!("{path}:{}: {e}", i + 1)))?;
            count += 1;
        }
        writeln!(out, "prove: {count} certificate(s) valid in {path}")?;
        return Ok(());
    }

    let mut reports = Vec::new();
    if args.iter().any(|a| a == "--suite") {
        if args.iter().any(|a| !a.starts_with('-')) {
            return Err(CliError::new("prove: --suite takes no input file"));
        }
        let scale = match parse_flag_value(args, "--scale")?.unwrap_or("tiny") {
            "tiny" => dim_workloads::Scale::Tiny,
            "small" => dim_workloads::Scale::Small,
            "full" => dim_workloads::Scale::Full,
            other => return Err(CliError::new(format!("--scale: unknown `{other}`"))),
        };
        for spec in dim_workloads::suite() {
            let built = (spec.build)(scale);
            reports.push(prove_program(&built.program, spec.name));
        }
    } else {
        if args.iter().any(|a| a == "--scale") {
            return Err(CliError::new("prove: --scale applies to --suite only"));
        }
        let input = args
            .iter()
            .find(|a| !a.starts_with('-'))
            .ok_or_else(|| CliError::new("prove: missing input file"))?;
        let program = load_program(input)?;
        reports.push(prove_program(&program, input));
    }

    for report in &reports {
        if json {
            writeln!(out, "{}", report.to_json())?;
        } else {
            write!(out, "{}", render_prove_human(report))?;
        }
    }
    let total_certs: usize = reports
        .iter()
        .map(dim_lint::prove::ProveReport::cert_count)
        .sum();
    if let Some(path) = parse_flag_value(args, "--cert-out")? {
        let mut doc = String::new();
        for report in &reports {
            for cert in report.certs() {
                doc.push_str(&cert.to_json());
                doc.push('\n');
            }
        }
        std::fs::write(path, doc).map_err(|e| CliError::new(format!("--cert-out {path}: {e}")))?;
        writeln!(out, "prove: {total_certs} certificate(s) -> {path}")?;
    } else if !json {
        writeln!(
            out,
            "prove: {total_certs} certificate(s) across {} program(s)",
            reports.len()
        )?;
    }
    Ok(())
}

/// Parses a `--flag N` positive integer, rejecting 0 with a message
/// naming the flag — serve's counts (jobs, queue, quota, clients,
/// requests) all share the "at least 1" rule.
fn parse_positive(args: &[String], flag: &str) -> Result<Option<u64>, CliError> {
    let value: Option<u64> = parse_flag_value(args, flag)?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::new(format!("{flag}: not a number")))
        })
        .transpose()?;
    if value == Some(0) {
        return Err(CliError::new(format!("{flag}: must be at least 1")));
    }
    Ok(value)
}

fn cmd_serve(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    check_flags(
        "serve",
        args,
        &[
            "--socket",
            "--jobs",
            "--queue",
            "--tenant-quota",
            "--shard-dir",
            "--status-dir",
            "--flight",
            "--telemetry-interval",
            "--clients",
            "--requests",
            "--bench-out",
        ],
        &["--selftest"],
        0,
    )?;
    let selftest = args.iter().any(|a| a == "--selftest");
    let daemon_only = [
        "--socket",
        "--queue",
        "--tenant-quota",
        "--shard-dir",
        "--status-dir",
        "--flight",
        "--telemetry-interval",
    ];
    let selftest_only = ["--clients", "--requests", "--bench-out"];
    if selftest {
        if let Some(flag) = daemon_only
            .iter()
            .find(|f| args.contains(&(**f).to_string()))
        {
            return Err(CliError::new(format!(
                "serve: `{flag}` does not apply to --selftest"
            )));
        }
    } else if let Some(flag) = selftest_only
        .iter()
        .find(|f| args.contains(&(**f).to_string()))
    {
        return Err(CliError::new(format!(
            "serve: `{flag}` requires --selftest"
        )));
    }
    let jobs = parse_positive(args, "--jobs")?;

    if selftest {
        let mut opts = dim_serve::SelftestOptions::default();
        if let Some(jobs) = jobs {
            opts.jobs = jobs as usize;
        }
        if let Some(clients) = parse_positive(args, "--clients")? {
            opts.clients = clients as usize;
        }
        if let Some(requests) = parse_positive(args, "--requests")? {
            opts.requests_per_client = requests as usize;
        }
        if let Some(dir) = parse_flag_value(args, "--bench-out")? {
            opts.bench_out = Path::new(dir).to_path_buf();
        }
        let report =
            dim_serve::run_selftest(&opts).map_err(|e| CliError::new(format!("serve: {e}")))?;
        writeln!(
            out,
            "selftest: {}/{} requests completed, {} busy retries, {:.1} req/s",
            report.completed, report.requests_total, report.busy_retries, report.throughput_rps
        )?;
        writeln!(
            out,
            "selftest: ramp cold {} cycles -> warm {} cycles",
            report.cold_cycles, report.warm_cycles
        )?;
        writeln!(
            out,
            "selftest: simulate stage cold {}ns -> warm {}ns, span laws {}",
            report.cold_sim_nanos,
            report.warm_sim_nanos,
            if report.span_laws_ok {
                "ok"
            } else {
                "VIOLATED"
            }
        )?;
        writeln!(out, "selftest: bench -> {}", report.bench_path.display())?;
        if !report.ok {
            return Err(CliError::new(
                "serve: selftest failed (incomplete requests, warm shard did not beat cold start, or span gate tripped)",
            ));
        }
        return Ok(());
    }

    let socket = parse_flag_value(args, "--socket")?
        .ok_or_else(|| CliError::new("serve: missing --socket (or use --selftest)"))?;
    let mut opts = dim_serve::ServeOptions::new(Path::new(socket).to_path_buf());
    if let Some(jobs) = jobs {
        opts.jobs = jobs as usize;
    }
    if let Some(queue) = parse_positive(args, "--queue")? {
        opts.queue_capacity = queue as usize;
    }
    if let Some(quota) = parse_positive(args, "--tenant-quota")? {
        opts.tenant_quota = quota as usize;
    }
    if let Some(dir) = parse_flag_value(args, "--shard-dir")? {
        opts.shard_dir = Some(Path::new(dir).to_path_buf());
    }
    if let Some(dir) = parse_flag_value(args, "--status-dir")? {
        opts.out_dir = Some(Path::new(dir).to_path_buf());
    }
    if let Some(flight) = parse_flag_value(args, "--flight")? {
        opts.flight_capacity = flight
            .parse()
            .map_err(|_| CliError::new("--flight: not a number"))?;
    }
    if let Some(interval) = parse_telemetry_interval(args)? {
        opts.telemetry_interval = interval;
    }
    writeln!(out, "serve: listening on {socket} ({} workers)", opts.jobs)?;
    out.flush()?;
    let summary = dim_serve::serve(&opts).map_err(|e| CliError::new(e.to_string()))?;
    for err in &summary.import_errors {
        writeln!(out, "serve: warning: shard import skipped: {err}")?;
    }
    if summary.shards_imported > 0 {
        writeln!(
            out,
            "serve: warm-started {} shard(s) from disk",
            summary.shards_imported
        )?;
    }
    writeln!(
        out,
        "serve: drained: {} submitted, {} completed, {} failed, {} busy-rejected, {} shard(s) snapshotted",
        summary.submitted, summary.completed, summary.failed, summary.busy_rejected, summary.shards
    )?;
    Ok(())
}

fn cmd_submit(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    check_flags("submit", args, &[], &["--json"], 2)?;
    let json = args.iter().any(|a| a == "--json");
    let mut positionals = args.iter().filter(|a| !a.starts_with('-'));
    let socket = positionals
        .next()
        .ok_or_else(|| CliError::new("submit: missing socket path"))?;
    let request_file = positionals
        .next()
        .ok_or_else(|| CliError::new("submit: missing request file"))?;
    let socket_path = Path::new(socket);
    if !socket_path.exists() {
        return Err(CliError::new(format!(
            "submit: {socket}: no such socket (is the daemon running?)"
        )));
    }
    let text = std::fs::read_to_string(request_file)
        .map_err(|e| CliError::new(format!("{request_file}: {e}")))?;
    let request = dim_serve::parse_request(&text)
        .map_err(|e| CliError::new(format!("{request_file}: {e}")))?;
    let replies = dim_serve::submit(socket_path, std::slice::from_ref(&request))
        .map_err(|e| CliError::new(e.to_string()))?;
    match replies.into_iter().next() {
        Some(dim_serve::Reply::Ok { json: reply_json }) => {
            if json {
                writeln!(out, "{reply_json}")?;
                return Ok(());
            }
            // The human-readable view: the embedded report when the
            // command produced one, the raw object otherwise.
            let report = dim_obs::parse_json(&reply_json)
                .ok()
                .as_ref()
                .and_then(|v| v.get("report"))
                .and_then(|v| v.as_str())
                .map(str::to_string);
            match report {
                Some(report) => write!(out, "{report}")?,
                None => writeln!(out, "{reply_json}")?,
            }
            Ok(())
        }
        Some(dim_serve::Reply::Busy {
            retry_after_ms,
            reason,
        }) => Err(CliError::new(format!(
            "submit: server busy: {reason} (retry after {retry_after_ms}ms)"
        ))),
        Some(dim_serve::Reply::Error { message }) => {
            Err(CliError::new(format!("submit: {message}")))
        }
        None => Err(CliError::new("submit: server sent no reply")),
    }
}

fn cmd_debug(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let input = args
        .first()
        .ok_or_else(|| CliError::new("debug: missing input file"))?;
    let program = load_program(input)?;
    match parse_flag_value(args, "--script")? {
        Some(path) => {
            let file =
                std::fs::File::open(path).map_err(|e| CliError::new(format!("{path}: {e}")))?;
            debugger::debug_session(&program, std::io::BufReader::new(file), out)
        }
        None => {
            let stdin = std::io::stdin();
            debugger::debug_session(&program, stdin.lock(), out)
        }
    }
}

/// Runs one CLI invocation. `args` excludes the binary name.
///
/// # Errors
///
/// [`CliError`] with the user-facing message.
pub fn dispatch(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("asm") => cmd_asm(&args[1..], out),
        Some("disasm") => cmd_disasm(&args[1..], out),
        Some("run") => cmd_run(&args[1..], out),
        Some("accel") => cmd_accel(&args[1..], out),
        Some("profile") => cmd_profile(&args[1..], out),
        Some("trace") => cmd_trace(&args[1..], out),
        Some("heat") => cmd_heat(&args[1..], out),
        Some("top") => cmd_top(&args[1..], out),
        Some("explain") => cmd_explain(&args[1..], out),
        Some("suite") => cmd_suite(&args[1..], out),
        Some("sweep") => cmd_sweep(&args[1..], out),
        Some("perf") => cmd_perf(&args[1..], out),
        Some("lint") => cmd_lint(&args[1..], out),
        Some("verify") => cmd_verify(&args[1..], out),
        Some("prove") => cmd_prove(&args[1..], out),
        Some("serve") => cmd_serve(&args[1..], out),
        Some("spans") => spans::cmd_spans(&args[1..], out),
        Some("submit") => cmd_submit(&args[1..], out),
        Some("debug") => cmd_debug(&args[1..], out),
        Some("compare") => cmd_compare(&args[1..], out),
        Some("help") | None => {
            write!(out, "{USAGE}")?;
            Ok(())
        }
        Some(other) => Err(CliError::new(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dim-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    const PROGRAM: &str = "
        main: li $s0, 40
              li $v0, 0
        loop: addu $v0, $v0, $s0
              xor  $t0, $v0, $s0
              addu $v0, $v0, $t0
              addiu $s0, $s0, -1
              bnez $s0, loop
              li  $a0, 1
              li  $v0, 11
              syscall
              break 0";

    fn run_cli(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(std::string::ToString::to_string).collect();
        let mut out = Vec::new();
        dispatch(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_cli(&["help"]).unwrap().contains("usage"));
        assert!(run_cli(&[]).unwrap().contains("usage"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_cli(&["frobnicate"]).is_err());
    }

    #[test]
    fn asm_then_disasm_then_run_image() {
        let src = tmp_file("t1.s", PROGRAM);
        let img = std::env::temp_dir().join("dim-cli-tests/t1.dimg");
        let out = run_cli(&["asm", src.to_str().unwrap(), "-o", img.to_str().unwrap()]).unwrap();
        assert!(out.contains("instructions"));

        let listing = run_cli(&["disasm", img.to_str().unwrap()]).unwrap();
        assert!(listing.contains("addu $v0, $v0, $s0"));

        let report = run_cli(&["run", img.to_str().unwrap()]).unwrap();
        assert!(report.contains("cycles"));
        assert!(report.contains("exited"));
    }

    #[test]
    fn run_with_profile_and_caches() {
        let src = tmp_file("t2.s", PROGRAM);
        let report = run_cli(&["run", src.to_str().unwrap(), "--profile", "--caches"]).unwrap();
        assert!(report.contains("instructions/branch"));
        assert!(report.contains("dcache miss rate"));
    }

    #[test]
    fn accel_compare_reports_speedup() {
        let src = tmp_file("t3.s", PROGRAM);
        let report = run_cli(&[
            "accel",
            src.to_str().unwrap(),
            "--config",
            "2",
            "--slots",
            "16",
            "--compare",
        ])
        .unwrap();
        assert!(report.contains("speedup"));
        assert!(report.contains("configurations:"));
    }

    #[test]
    fn accel_dump_configs_prints_grids() {
        let src = tmp_file("t5.s", PROGRAM);
        let report = run_cli(&["accel", src.to_str().unwrap(), "--dump-configs"]).unwrap();
        assert!(report.contains("row  0"), "{report}");
    }

    #[test]
    fn accel_trace_prints_invocations() {
        let src = tmp_file("t7.s", PROGRAM);
        let report = run_cli(&["accel", src.to_str().unwrap(), "--trace"]).unwrap();
        assert!(report.contains("last array invocations"), "{report}");
        assert!(report.contains("array @ 0x"), "{report}");
    }

    #[test]
    fn run_trace_out_writes_valid_jsonl() {
        let src = tmp_file("t9.s", PROGRAM);
        let trace = std::env::temp_dir().join("dim-cli-tests/t9.jsonl");
        let report = run_cli(&[
            "run",
            src.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.contains("trace:"), "{report}");
        let text = std::fs::read_to_string(&trace).unwrap();
        let replayed = dim_obs::replay::read_trace(&text).unwrap();
        assert_eq!(replayed.summary.array_invocations, 0);
        assert!(replayed.summary.retired > 0);

        let summary = run_cli(&["trace", trace.to_str().unwrap()]).unwrap();
        assert!(summary.contains("valid trace"), "{summary}");
    }

    #[test]
    fn accel_trace_out_replays_to_reported_cycles() {
        let src = tmp_file("t10.s", PROGRAM);
        let trace = std::env::temp_dir().join("dim-cli-tests/t10.jsonl");
        let report = run_cli(&[
            "accel",
            src.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics",
        ])
        .unwrap();
        assert!(report.contains("trace:"), "{report}");
        assert!(report.contains("--- metrics ---"), "{report}");
        let text = std::fs::read_to_string(&trace).unwrap();
        let replayed = dim_obs::replay::read_trace(&text).unwrap();
        assert!(replayed.summary.array_invocations > 0);

        let summary = run_cli(&["trace", trace.to_str().unwrap()]).unwrap();
        assert!(summary.contains("valid trace"), "{summary}");
    }

    #[test]
    fn trace_stats_lists_record_kinds() {
        let src = tmp_file("t20.s", PROGRAM);
        let trace = std::env::temp_dir().join("dim-cli-tests/t20.jsonl");
        run_cli(&[
            "accel",
            src.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        let summary = run_cli(&["trace", trace.to_str().unwrap(), "--stats"]).unwrap();
        assert!(summary.contains("records by kind:"), "{summary}");
        assert!(summary.contains("retire"), "{summary}");
        assert!(summary.contains("array_invoke"), "{summary}");
        assert!(summary.contains("fabric"), "{summary}");

        let plain = run_cli(&["trace", trace.to_str().unwrap()]).unwrap();
        assert!(!plain.contains("records by kind:"), "{plain}");
        let err = run_cli(&["trace", trace.to_str().unwrap(), "--stat"]).unwrap_err();
        assert!(err.to_string().contains("unknown flag"), "{err}");
    }

    #[test]
    fn heat_run_mode_reports_utilization_and_reconciles() {
        let src = tmp_file("t30.s", PROGRAM);
        let report = run_cli(&["heat", src.to_str().unwrap(), "--config", "2"]).unwrap();
        assert!(report.contains("fabric heat:"), "{report}");
        assert!(report.contains("util:"), "{report}");
        assert!(report.contains("row "), "{report}");
        assert!(report.contains("array-exec"), "{report}");

        let json = run_cli(&["heat", src.to_str().unwrap(), "--config", "2", "--json"]).unwrap();
        let v = dim_obs::parse_json(&json).unwrap();
        let get = |k: &str| v.get(k).and_then(dim_obs::JsonValue::as_u64).unwrap();
        assert!(get("invocations") > 0);
        assert_eq!(
            get("exec_cycles") + get("residual_cycles"),
            // The same kernel under the same parameters is
            // deterministic, so a fresh accelerated run charges exactly
            // the cycles the heat JSON accounts for.
            {
                let program = load_program(src.to_str().unwrap()).unwrap();
                let mut sys = System::new(
                    Machine::load(&program),
                    SystemConfig::new(ArrayShape::config2(), 64, true),
                );
                sys.run(100_000_000).unwrap();
                sys.cycle_breakdown().array_exec
            }
        );
        let busy = v.get("busy_thirds").unwrap();
        let cap = v.get("capacity_thirds").unwrap();
        for class in ["alu", "mult", "ldst"] {
            let b = busy
                .get(class)
                .and_then(dim_obs::JsonValue::as_u64)
                .unwrap();
            let c = cap.get(class).and_then(dim_obs::JsonValue::as_u64).unwrap();
            assert!(b <= c, "{class}: busy {b} > capacity {c}");
        }
    }

    #[test]
    fn heat_trace_mode_summarizes_and_exports_chrome_counters() {
        let src = tmp_file("t31.s", PROGRAM);
        let trace = std::env::temp_dir().join("dim-cli-tests/t31.jsonl");
        run_cli(&[
            "accel",
            src.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();

        let report = run_cli(&["heat", trace.to_str().unwrap()]).unwrap();
        assert!(report.contains("fabric record(s)"), "{report}");
        assert!(report.contains("util:"), "{report}");
        assert!(report.contains("traversal depth"), "{report}");

        let json = run_cli(&["heat", trace.to_str().unwrap(), "--json"]).unwrap();
        let v = dim_obs::parse_json(&json).unwrap();
        assert!(
            v.get("fabric_records")
                .and_then(dim_obs::JsonValue::as_u64)
                .unwrap()
                > 0
        );

        let chrome = std::env::temp_dir().join("dim-cli-tests/t31.chrome.json");
        let report = run_cli(&[
            "heat",
            trace.to_str().unwrap(),
            "--chrome-out",
            chrome.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.contains("chrome counters"), "{report}");
        let exported = std::fs::read_to_string(&chrome).unwrap();
        let v = dim_obs::parse_json(&exported).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        assert!(exported.contains("fabric busy thirds"), "{exported}");
    }

    #[test]
    fn heat_rejects_mode_mismatched_flags() {
        let src = tmp_file("t32.s", PROGRAM);
        let trace = std::env::temp_dir().join("dim-cli-tests/t32.jsonl");
        run_cli(&[
            "accel",
            src.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        let err = run_cli(&["heat", trace.to_str().unwrap(), "--config", "2"]).unwrap_err();
        assert!(err.to_string().contains("only applies"), "{err}");
        let err = run_cli(&["heat", src.to_str().unwrap(), "--chrome-out", "x.json"]).unwrap_err();
        assert!(err.to_string().contains("only a trace"), "{err}");
        let err = run_cli(&["heat", src.to_str().unwrap(), "--config", "9"]).unwrap_err();
        assert!(err.to_string().contains("unknown"), "{err}");
    }

    #[test]
    fn telemetry_interval_is_validated_everywhere() {
        let src = tmp_file("t30.s", PROGRAM);
        let path = src.to_str().unwrap();
        for cmd in ["run", "accel"] {
            let err = run_cli(&[cmd, path, "--telemetry-interval", "0"]).unwrap_err();
            assert!(err.to_string().contains("at least 1 cycle"), "{cmd}: {err}");
            let err = run_cli(&[cmd, path, "--telemetry-interval", "x"]).unwrap_err();
            assert!(err.to_string().contains("not a number"), "{cmd}: {err}");
        }
        let spec = tmp_file(
            "t30.spec",
            "workloads = crc32\nscale = tiny\nshapes = 1\nslots = 16\nspeculation = on\n",
        );
        let err =
            run_cli(&["sweep", spec.to_str().unwrap(), "--telemetry-interval", "0"]).unwrap_err();
        assert!(err.to_string().contains("at least 1 cycle"), "{err}");
        // For a plain run the flag has no trace to stamp.
        let err = run_cli(&["run", path, "--telemetry-interval", "500"]).unwrap_err();
        assert!(err.to_string().contains("requires --trace-out"), "{err}");
    }

    #[test]
    fn telemetry_interval_stamps_run_and_accel_traces() {
        let src = tmp_file("t31.s", PROGRAM);
        let path = src.to_str().unwrap();
        for cmd in ["run", "accel"] {
            let trace = std::env::temp_dir().join(format!("dim-cli-tests/t31-{cmd}.jsonl"));
            run_cli(&[
                cmd,
                path,
                "--trace-out",
                trace.to_str().unwrap(),
                "--telemetry-interval",
                "100",
            ])
            .unwrap();
            let text = std::fs::read_to_string(&trace).unwrap();
            assert!(text.contains("\"type\":\"telemetry\""), "{cmd}: {text}");
            dim_obs::replay::read_trace(&text).unwrap();
        }
    }

    #[test]
    fn accel_flight_out_dumps_a_validating_window_with_drop_accounting() {
        let src = tmp_file("t32.s", PROGRAM);
        let path = src.to_str().unwrap();
        let dump = std::env::temp_dir().join("dim-cli-tests/t32.flight.jsonl");
        let report = run_cli(&[
            "accel",
            path,
            "--flight",
            "16",
            "--watchdog",
            "--flight-out",
            dump.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.contains("flight:"), "{report}");
        assert!(report.contains("retained"), "{report}");

        // The dump is a valid schema trace and `dim trace` accepts it.
        let summary = run_cli(&["trace", dump.to_str().unwrap(), "--stats"]).unwrap();
        assert!(summary.contains("valid trace"), "{summary}");
        // This workload retires far more than 16 events, so the window
        // wrapped and the header carries per-kind drop totals.
        assert!(summary.contains("dropped by kind"), "{summary}");
        assert!(summary.contains("retire"), "{summary}");

        let text = std::fs::read_to_string(&dump).unwrap();
        let replayed = dim_obs::replay::read_trace(&text).unwrap();
        assert!(!replayed.header.dropped.is_empty());

        // Flag validation: a zero-capacity ring is a contradiction.
        let err = run_cli(&["accel", path, "--flight", "0"]).unwrap_err();
        assert!(err.to_string().contains("at least 1 event"), "{err}");
    }

    #[test]
    fn accel_watchdog_passes_cleanly_on_a_healthy_run() {
        let src = tmp_file("t33.s", PROGRAM);
        let report = run_cli(&["accel", src.to_str().unwrap(), "--watchdog"]).unwrap();
        assert!(report.contains("configurations:"), "{report}");
        // No violation -> no dump file is left behind.
        assert!(!std::path::Path::new(&format!("{}.flight.jsonl", src.to_str().unwrap())).exists());
    }

    #[test]
    fn top_renders_sweep_status_and_rejects_missing_files() {
        let spec = tmp_file(
            "t34.spec",
            "workloads = crc32\nscale = tiny\nshapes = 1, 3\nslots = 16\nspeculation = on\n",
        );
        let out_dir = std::env::temp_dir().join("dim-cli-tests/t34-sweep");
        std::fs::remove_dir_all(&out_dir).ok();
        let report = run_cli(&[
            "sweep",
            spec.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
            "--jobs",
            "2",
        ])
        .unwrap();
        assert!(report.contains("telemetry:"), "{report}");

        // Both the directory and the file itself are accepted targets.
        for target in [
            out_dir.to_path_buf(),
            out_dir.join(dim_obs::status::STATUS_FILE_NAME),
        ] {
            let table = run_cli(&["top", target.to_str().unwrap()]).unwrap();
            assert!(table.contains("source"), "{table}");
            assert!(table.contains("sweep"), "{table}");
            assert!(table.contains("done"), "{table}");
            assert!(table.contains("2/2"), "{table}");
            assert!(table.contains("worker-1"), "{table}");
            // Request-latency columns exist but render `-` for sweep
            // entries, which never serve requests.
            assert!(table.contains("p99-us"), "{table}");
            assert!(table.contains("queue"), "{table}");
        }

        let err = run_cli(&["top", "/nonexistent/status.dimstat"]).unwrap_err();
        assert!(!err.to_string().is_empty());
        let err = run_cli(&["top"]).unwrap_err();
        assert!(err.to_string().contains("missing status file"), "{err}");
        std::fs::remove_dir_all(&out_dir).ok();
    }

    #[test]
    fn sweep_flight_zero_disables_the_flight_dir() {
        let spec = tmp_file(
            "t35.spec",
            "workloads = crc32\nscale = tiny\nshapes = 1\nslots = 16\nspeculation = on\n",
        );
        let out_dir = std::env::temp_dir().join("dim-cli-tests/t35-sweep");
        std::fs::remove_dir_all(&out_dir).ok();
        run_cli(&[
            "sweep",
            spec.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
            "--flight",
            "0",
        ])
        .unwrap();
        assert!(!out_dir.join("flight").exists());
        std::fs::remove_dir_all(&out_dir).ok();
    }

    #[test]
    fn explain_exports_chrome_and_folded_and_ranks_regions() {
        let src = tmp_file("t21.s", PROGRAM);
        let trace = std::env::temp_dir().join("dim-cli-tests/t21.jsonl");
        run_cli(&[
            "accel",
            src.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();

        let chrome = std::env::temp_dir().join("dim-cli-tests/t21-chrome.json");
        let folded = std::env::temp_dir().join("dim-cli-tests/t21.folded");
        let report = run_cli(&[
            "explain",
            trace.to_str().unwrap(),
            "--chrome-out",
            chrome.to_str().unwrap(),
            "--folded-out",
            folded.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.contains("top"), "{report}");
        assert!(report.contains("0x"), "{report}");
        assert!(report.contains("chrome trace ->"), "{report}");
        assert!(report.contains("folded stacks ->"), "{report}");

        // The Chrome export is valid JSON with a traceEvents array; the
        // folded export is non-empty and frame-structured.
        let chrome_text = std::fs::read_to_string(&chrome).unwrap();
        let parsed = dim_obs::parse_json(&chrome_text).unwrap();
        assert!(parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .is_some_and(|events| !events.is_empty()));
        let folded_text = std::fs::read_to_string(&folded).unwrap();
        assert!(!folded_text.trim().is_empty());
        assert!(folded_text.lines().all(|l| l.rsplit_once(' ').is_some()));

        // JSON mode emits the machine-readable analysis instead.
        let json = run_cli(&["explain", trace.to_str().unwrap(), "--json"]).unwrap();
        let v = dim_obs::parse_json(&json).unwrap();
        assert!(
            v.get("total_cycles")
                .and_then(dim_obs::JsonValue::as_u64)
                .unwrap()
                > 0
        );

        // Flag validation stays strict.
        let err = run_cli(&["explain", trace.to_str().unwrap(), "--chrome"]).unwrap_err();
        assert!(err.to_string().contains("unknown flag"), "{err}");
        let err = run_cli(&["explain", trace.to_str().unwrap(), "--top"]).unwrap_err();
        assert!(err.to_string().contains("requires a value"), "{err}");
        assert!(run_cli(&["explain"]).is_err());
    }

    #[test]
    fn sweep_explain_writes_per_cell_forensics() {
        let spec = tmp_file(
            "t22.spec",
            "workloads = crc32\nscale = tiny\nshapes = 1\nslots = 16\nspeculation = on\n",
        );
        let out_dir = std::env::temp_dir().join("dim-cli-tests/t22-sweep");
        std::fs::remove_dir_all(&out_dir).ok();
        let report = run_cli(&[
            "sweep",
            spec.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
            "--explain",
        ])
        .unwrap();
        assert!(report.contains("forensics:"), "{report}");
        let explain_dir = out_dir.join("explain");
        let entries: Vec<_> = std::fs::read_dir(&explain_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(entries.len(), 1);
        let text = std::fs::read_to_string(&entries[0]).unwrap();
        let parsed = dim_obs::parse_json(&text).unwrap();
        assert!(parsed.get("regions").is_some());
        std::fs::remove_dir_all(&out_dir).ok();
    }

    #[test]
    fn profile_prints_exact_attribution_table() {
        let src = tmp_file("t11.s", PROGRAM);
        let report = run_cli(&["profile", src.to_str().unwrap(), "--caches"]).unwrap();
        assert!(report.contains("block"), "{report}");
        assert!(report.contains("total"), "{report}");

        let json = run_cli(&["profile", src.to_str().unwrap(), "--json"]).unwrap();
        assert!(json.trim_start().starts_with('{'), "{json}");
    }

    #[test]
    fn trace_rejects_garbage() {
        let bad = tmp_file("t12.jsonl", "not json\n");
        assert!(run_cli(&["trace", bad.to_str().unwrap()]).is_err());
    }

    #[test]
    fn accel_rejects_bad_config() {
        let src = tmp_file("t4.s", PROGRAM);
        assert!(run_cli(&["accel", src.to_str().unwrap(), "--config", "9"]).is_err());
    }

    #[test]
    fn accel_rejects_unknown_and_malformed_flags() {
        let src = tmp_file("t13.s", PROGRAM);
        let path = src.to_str().unwrap();
        let err = run_cli(&["accel", path, "--slot", "16"]).unwrap_err();
        assert!(err.to_string().contains("unknown flag `--slot`"), "{err}");
        let err = run_cli(&["accel", path, "--slots"]).unwrap_err();
        assert!(err.to_string().contains("requires a value"), "{err}");
        let err = run_cli(&["accel", path, "--compare", "--compare"]).unwrap_err();
        assert!(err.to_string().contains("more than once"), "{err}");
        let err = run_cli(&["accel", path, "stray.s"]).unwrap_err();
        assert!(err.to_string().contains("unexpected argument"), "{err}");
    }

    #[test]
    fn accel_rejects_rcache_with_ideal_array() {
        let src = tmp_file("t14.s", PROGRAM);
        let err = run_cli(&[
            "accel",
            src.to_str().unwrap(),
            "--config",
            "ideal",
            "--rcache-save",
            "/tmp/x.dimrc",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("not supported"), "{err}");
    }

    #[test]
    fn accel_rcache_save_then_load_roundtrip() {
        let src = tmp_file("t15.s", PROGRAM);
        let path = src.to_str().unwrap();
        let snap = std::env::temp_dir().join("dim-cli-tests/t15.dimrc");
        let snap = snap.to_str().unwrap();

        let saved = run_cli(&["accel", path, "--config", "2", "--rcache-save", snap]).unwrap();
        assert!(saved.contains("rcache: saved"), "{saved}");

        let loaded = run_cli(&["accel", path, "--config", "2", "--rcache-load", snap]).unwrap();
        assert!(loaded.contains("rcache: loaded"), "{loaded}");

        // A snapshot from config 2 must not load into a config 3 system,
        // and the error must say why.
        let err = run_cli(&["accel", path, "--config", "3", "--rcache-load", snap]).unwrap_err();
        assert!(err.to_string().contains("hint"), "{err}");
    }

    #[test]
    fn lint_clean_file_reports_and_passes() {
        let src = tmp_file("t20.s", PROGRAM);
        let out = run_cli(&["lint", src.to_str().unwrap()]).unwrap();
        assert!(out.contains("0 errors"), "{out}");
        assert!(out.contains("blocks"), "{out}");
    }

    #[test]
    fn lint_dirty_file_fails_and_allow_suppresses() {
        let src = tmp_file(
            "t21.s",
            "main: j end
             dead: li $t0, 1
             end:  break 0",
        );
        let path = src.to_str().unwrap();
        let err = run_cli(&["lint", path]).unwrap_err();
        assert!(err.to_string().contains("failed the gate"), "{err}");

        let out = run_cli(&["lint", path, "--allow", "W101"]).unwrap();
        assert!(out.contains("suppressed"), "{out}");
    }

    #[test]
    fn lint_json_and_candidates() {
        let src = tmp_file("t22.s", PROGRAM);
        let path = src.to_str().unwrap();
        let out = run_cli(&["lint", path, "--json", "--candidates"]).unwrap();
        assert!(out.contains("\"clean\":true"), "{out}");
        assert!(out.contains("\"entries\":["), "{out}");
        let human = run_cli(&["lint", path, "--candidates"]).unwrap();
        assert!(human.contains("viable region entries"), "{human}");
    }

    #[test]
    fn lint_suite_is_clean_with_allowlists() {
        let out = run_cli(&["lint", "--suite"]).unwrap();
        assert!(out.contains("crc32"), "{out}");
        assert!(out.contains("dijkstra"), "{out}");
        // Flag combinations that cannot mean anything must fail loudly.
        assert!(run_cli(&["lint", "--suite", "--candidates"]).is_err());
        assert!(run_cli(&["lint"]).is_err());
    }

    /// A counted byte-scan loop: one affine load, no stores — prime
    /// streaming-certificate material.
    const STREAM_PROGRAM: &str = "
        main: li $s0, 64
              li $s1, 0x2000
        loop: lbu $t0, 0($s1)
              addu $v0, $v0, $t0
              addiu $s1, $s1, 1
              addiu $s0, $s0, -1
              bnez $s0, loop
              break 0";

    #[test]
    fn prove_certifies_stream_loop_and_json_is_schema_stamped() {
        let src = tmp_file("t40.s", STREAM_PROGRAM);
        let path = src.to_str().unwrap();
        let human = run_cli(&["prove", path]).unwrap();
        assert!(human.contains("CERTIFIED"), "{human}");
        assert!(human.contains("affine stride +1"), "{human}");
        assert!(human.contains("1 certificate"), "{human}");

        let js = run_cli(&["prove", path, "--json"]).unwrap();
        assert!(js.contains("\"type\":\"prove_report\""), "{js}");
        assert!(js.contains("\"schema\":1"), "{js}");
        assert!(js.contains("\"status\":\"certified\""), "{js}");
        assert!(js.contains("\"checksum\":"), "{js}");
    }

    #[test]
    fn prove_rejects_syscall_loop() {
        // PROGRAM's loop is store- and load-free; a syscall variant
        // must be rejected with the reason named.
        let src = tmp_file(
            "t41.s",
            "main: li $s0, 4
             loop: lbu $t0, 0($s1)
                   syscall
                   addiu $s1, $s1, 1
                   addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        let out = run_cli(&["prove", src.to_str().unwrap()]).unwrap();
        assert!(out.contains("syscall in body"), "{out}");
        assert!(out.contains("0 certificate(s)"), "{out}");
    }

    #[test]
    fn prove_cert_out_round_trips_through_check_and_rejects_flips() {
        let src = tmp_file("t42.s", STREAM_PROGRAM);
        let path = src.to_str().unwrap();
        let certs = std::env::temp_dir().join("dim-cli-tests/t42.certs.jsonl");
        let certs = certs.to_str().unwrap();
        let out = run_cli(&["prove", path, "--cert-out", certs]).unwrap();
        assert!(out.contains("1 certificate(s) ->"), "{out}");

        let ok = run_cli(&["prove", "--check", certs]).unwrap();
        assert!(ok.contains("1 certificate(s) valid"), "{ok}");

        // Flip one payload byte: the checksum must catch it, with the
        // line number in the error.
        let text = std::fs::read_to_string(certs).unwrap();
        let flipped_text = text.replacen("\"burst\":16", "\"burst\":15", 1);
        assert_ne!(flipped_text, text, "{text}");
        let flipped = std::env::temp_dir().join("dim-cli-tests/t42-flipped.jsonl");
        std::fs::write(&flipped, flipped_text).unwrap();
        let err = run_cli(&["prove", "--check", flipped.to_str().unwrap()]).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        assert!(err.to_string().contains(":1:"), "{err}");
    }

    #[test]
    fn prove_suite_emits_certs_on_streaming_workloads() {
        let out = run_cli(&["prove", "--suite"]).unwrap();
        assert!(out.contains("crc32"), "{out}");
        assert!(out.contains("CERTIFIED"), "{out}");
        // Flag hygiene mirrors lint.
        assert!(run_cli(&["prove"]).is_err());
        assert!(run_cli(&["prove", "--suite", "extra.s"]).is_err());
    }

    #[test]
    fn accel_with_certs_tags_matching_commits() {
        let src = tmp_file("t43.s", STREAM_PROGRAM);
        let path = src.to_str().unwrap();
        let certs = std::env::temp_dir().join("dim-cli-tests/t43.certs.jsonl");
        let certs = certs.to_str().unwrap();
        run_cli(&["prove", path, "--cert-out", certs]).unwrap();

        // Without speculation the committed region stays inside the
        // loop body, so the certificate covers every placed op.
        let out = run_cli(&["accel", path, "--no-spec", "--certs", certs]).unwrap();
        assert!(out.contains("stream: installed 1 certificate(s)"), "{out}");
        assert!(out.contains("1 commit(s) tagged stream_ok"), "{out}");
        assert!(out.contains("1 rcache entry(ies) tagged now"), "{out}");

        // A corrupted certificate file must refuse to install.
        let text = std::fs::read_to_string(certs).unwrap();
        let bad = std::env::temp_dir().join("dim-cli-tests/t43-bad.jsonl");
        std::fs::write(&bad, text.replacen("\"len\":", "\"len \":", 1)).unwrap();
        let err =
            run_cli(&["accel", path, "--no-spec", "--certs", bad.to_str().unwrap()]).unwrap_err();
        assert!(err.to_string().contains("--certs"), "{err}");
    }

    #[test]
    fn verify_accepts_good_snapshot_and_rejects_doctored_one() {
        let src = tmp_file("t23.s", PROGRAM);
        let path = src.to_str().unwrap();
        let snap = std::env::temp_dir().join("dim-cli-tests/t23.dimrc");
        let snap = snap.to_str().unwrap();
        run_cli(&["accel", path, "--config", "2", "--rcache-save", snap]).unwrap();

        let ok = run_cli(&["verify", snap]).unwrap();
        assert!(ok.contains("structurally valid"), "{ok}");
        let js = run_cli(&["verify", snap, "--json"]).unwrap();
        assert!(js.contains("\"ok\":true"), "{js}");

        // Doctor the snapshot: drop a writeback from the first
        // configuration and re-encode (valid checksum, invalid contents).
        let bytes = std::fs::read(snap).unwrap();
        let mut contents = dim_core::SnapshotContents::parse(&bytes).unwrap();
        let loc = contents.configs[0].writebacks().next().unwrap().0;
        contents.configs[0].remove_writeback(loc);
        let doctored = std::env::temp_dir().join("dim-cli-tests/t23-doctored.dimrc");
        std::fs::write(&doctored, contents.encode()).unwrap();

        let err = run_cli(&["verify", doctored.to_str().unwrap()]).unwrap_err();
        assert!(err.to_string().contains("violation"), "{err}");

        // The accelerator must refuse to warm-start from it, naming the
        // failing region.
        let err = run_cli(&[
            "accel",
            path,
            "--config",
            "2",
            "--rcache-load",
            doctored.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("failed verification"), "{err}");
    }

    #[test]
    fn verify_rejects_bit_flip() {
        let src = tmp_file("t24.s", PROGRAM);
        let path = src.to_str().unwrap();
        let snap = std::env::temp_dir().join("dim-cli-tests/t24.dimrc");
        let snap = snap.to_str().unwrap();
        run_cli(&["accel", path, "--config", "2", "--rcache-save", snap]).unwrap();

        let mut bytes = std::fs::read(snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let flipped = std::env::temp_dir().join("dim-cli-tests/t24-flipped.dimrc");
        std::fs::write(&flipped, &bytes).unwrap();
        let err = run_cli(&["verify", flipped.to_str().unwrap()]).unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn sweep_runs_resumes_and_validates_flags() {
        let spec = tmp_file(
            "t16.spec",
            "workloads = crc32\nscale = tiny\nshapes = 1, 3\nslots = 16\nspeculation = on\n",
        );
        let spec_path = spec.to_str().unwrap();
        let out_dir = std::env::temp_dir().join("dim-cli-tests/t16-sweep");
        std::fs::remove_dir_all(&out_dir).ok();
        let out_path = out_dir.to_str().unwrap();

        let first = run_cli(&["sweep", spec_path, "--out", out_path, "--limit", "1"]).unwrap();
        assert!(first.contains("incomplete"), "{first}");

        let second = run_cli(&["sweep", spec_path, "--out", out_path, "--jobs", "2"]).unwrap();
        assert!(second.contains("1 skipped"), "{second}");
        assert!(second.contains("complete: report"), "{second}");

        let err = run_cli(&["sweep", spec_path, "--jobs", "0"]).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        let err = run_cli(&["sweep", spec_path, "--job", "2"]).unwrap_err();
        assert!(err.to_string().contains("unknown flag"), "{err}");

        let bad_spec = tmp_file("t16-bad.spec", "workloads = crc32\nshapes = 9\n");
        let err = run_cli(&["sweep", bad_spec.to_str().unwrap()]).unwrap_err();
        assert!(err.to_string().contains("unknown shape"), "{err}");

        std::fs::remove_dir_all(&out_dir).ok();
    }

    #[test]
    fn sweep_bench_compare_writes_json() {
        let spec = tmp_file(
            "t17.spec",
            "workloads = crc32\nscale = tiny\nshapes = 1\nslots = 16\nspeculation = on\n",
        );
        let base = std::env::temp_dir().join("dim-cli-tests/t17-bench");
        std::fs::remove_dir_all(&base).ok();
        let report = run_cli(&[
            "sweep",
            spec.to_str().unwrap(),
            "--jobs",
            "2",
            "--bench-out",
            base.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.contains("identical: true"), "{report}");
        assert!(base.join("BENCH_sweep.json").exists());
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn perf_record_compare_gate_roundtrip() {
        let dir = std::env::temp_dir().join("dim-cli-tests/t18-perf");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let base_path = base.to_str().unwrap();

        let report = run_cli(&[
            "perf",
            "record",
            "--out",
            base_path,
            "--workloads",
            "crc32,sha",
            "--shape",
            "1",
            "--reps",
            "1",
            "--bench-out",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(
            report.contains("baseline `local`: 2 workload(s)"),
            "{report}"
        );
        assert!(dir.join("BENCH_perf.json").exists());

        // Gate re-records under the stored matrix; the simulator is
        // deterministic, so the strict default passes.
        let gated = run_cli(&["perf", "gate", "--baseline", base_path]).unwrap();
        assert!(gated.contains("gate PASSED"), "{gated}");

        // Comparing the baseline against itself shows no movement.
        let cmp = run_cli(&["perf", "compare", base_path, base_path]).unwrap();
        assert!(cmp.contains("crc32"), "{cmp}");
        let json = run_cli(&["perf", "compare", base_path, base_path, "--json"]).unwrap();
        assert!(json.trim_start().starts_with('{'), "{json}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perf_gate_fails_on_doctored_baseline() {
        let dir = std::env::temp_dir().join("dim-cli-tests/t19-perf");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let base_path = base.to_str().unwrap();
        run_cli(&[
            "perf",
            "record",
            "--out",
            base_path,
            "--workloads",
            "crc32",
            "--shape",
            "1",
            "--reps",
            "1",
        ])
        .unwrap();

        // Hand-inject a simulated-cycle regression into a copy, keeping
        // the attribution invariant intact, and gate the copy as current.
        let mut doctored =
            dim_perf::Baseline::parse(&std::fs::read_to_string(&base).unwrap()).unwrap();
        let w = &mut doctored.workloads[0];
        let extra = w.accel_cycles / 10 + 1;
        w.accel_cycles += extra;
        w.attribution.pipeline += extra;
        w.speedup = w.scalar_cycles as f64 / w.accel_cycles as f64;
        let cur = dir.join("cur.json");
        std::fs::write(&cur, doctored.to_json()).unwrap();

        let err = run_cli(&[
            "perf",
            "gate",
            "--baseline",
            base_path,
            "--current",
            cur.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("regression"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perf_rejects_bad_usage() {
        let err = run_cli(&["perf"]).unwrap_err();
        assert!(err.to_string().contains("missing subcommand"), "{err}");
        let err = run_cli(&["perf", "frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("unknown subcommand"), "{err}");
        let err = run_cli(&["perf", "record"]).unwrap_err();
        assert!(err.to_string().contains("--out"), "{err}");
        let err = run_cli(&["perf", "gate"]).unwrap_err();
        assert!(err.to_string().contains("--baseline"), "{err}");
        let err = run_cli(&["perf", "compare", "only-one.json"]).unwrap_err();
        assert!(err.to_string().contains("two baseline files"), "{err}");
        let err = run_cli(&["perf", "record", "--out", "/tmp/x.json", "--rep", "1"]).unwrap_err();
        assert!(err.to_string().contains("unknown flag"), "{err}");
    }

    #[test]
    fn debug_with_script_file() {
        let src = tmp_file("t6.s", PROGRAM);
        let script = tmp_file(
            "t6.dbg",
            "step 3
regs
quit
",
        );
        let report = run_cli(&[
            "debug",
            src.to_str().unwrap(),
            "--script",
            script.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.contains("debugging:"), "{report}");
        assert!(report.contains("$zero"), "{report}");
    }

    #[test]
    fn compare_lists_all_organizations() {
        let src = tmp_file("t8.s", PROGRAM);
        let report = run_cli(&["compare", src.to_str().unwrap()]).unwrap();
        assert!(report.contains("scalar MIPS"), "{report}");
        assert!(report.contains("2-wide superscalar"), "{report}");
        assert!(report.contains("DIM config #3"), "{report}");
    }

    #[test]
    fn suite_tiny_validates_everything() {
        let report = run_cli(&["suite", "--scale", "tiny"]).unwrap();
        assert_eq!(report.lines().count(), 18);
        assert!(report.contains("crc32"));
        assert!(report.contains("rijndael_enc"));
    }

    #[test]
    fn missing_file_reported() {
        let err = run_cli(&["run", "/nonexistent/x.s"]).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/x.s"));
    }

    fn status_file_with_state(state: &str) -> dim_obs::status::StatusFile {
        dim_obs::status::StatusFile {
            entries: vec![StatusEntry {
                source: "sweep".into(),
                label: "restart-test".into(),
                state: state.into(),
                ..Default::default()
            }],
        }
    }

    fn tiny_follow_policy(max_misses: u32) -> FollowPolicy {
        FollowPolicy {
            poll: std::time::Duration::from_millis(5),
            backoff_start: std::time::Duration::from_millis(2),
            backoff_cap: std::time::Duration::from_millis(10),
            max_misses,
        }
    }

    #[test]
    fn top_follow_survives_status_file_restart() {
        use dim_obs::status::write_status;
        let dir = std::env::temp_dir().join(format!("dim-top-restart-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(STATUS_FILE_NAME);
        write_status(&path, &status_file_with_state("running")).unwrap();

        // A producer that vanishes mid-follow (file deleted) and then
        // reappears finished — the follower must ride it out.
        let writer = {
            let path = path.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                std::fs::remove_file(&path).unwrap();
                std::thread::sleep(std::time::Duration::from_millis(40));
                write_status(&path, &status_file_with_state("done")).unwrap();
            })
        };
        let mut out = Vec::new();
        run_top(&path, true, &tiny_follow_policy(100), &mut out).unwrap();
        writer.join().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("running"), "{text}");
        assert!(text.contains("done"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn top_follow_gives_up_after_bounded_misses() {
        let path = std::env::temp_dir().join("dim-top-never-appears/status.dimstat");
        let mut out = Vec::new();
        let err = run_top(&path, true, &tiny_follow_policy(3), &mut out).unwrap_err();
        assert!(
            err.to_string().contains("gave up after 3 attempts"),
            "{err}"
        );
    }

    #[test]
    fn serve_flags_are_validated_strictly() {
        for (args, needle) in [
            (vec!["serve"], "missing --socket"),
            (vec!["serve", "--jobs", "0"], "--jobs: must be at least 1"),
            (
                vec!["serve", "--socket", "/tmp/x.sock", "--queue", "0"],
                "--queue: must be at least 1",
            ),
            (
                vec!["serve", "--socket", "/tmp/x.sock", "--clients", "4"],
                "requires --selftest",
            ),
            (
                vec!["serve", "--selftest", "--socket", "/tmp/x.sock"],
                "does not apply to --selftest",
            ),
            (vec!["serve", "--frobnicate"], "unknown flag"),
            (vec!["submit"], "missing socket path"),
            (vec!["submit", "/tmp/x.sock"], "missing request file"),
            (
                vec!["submit", "/nonexistent/dim.sock", "/nonexistent/req.toml"],
                "no such socket",
            ),
        ] {
            let err = run_cli(&args).unwrap_err();
            assert!(err.to_string().contains(needle), "{args:?} → {err}");
        }
    }

    #[test]
    fn serve_daemon_accepts_a_submitted_request_file() {
        let dir = std::env::temp_dir().join(format!("dim-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("dim.sock");
        let server = {
            let socket = socket.to_str().unwrap().to_string();
            std::thread::spawn(move || run_cli(&["serve", "--socket", &socket, "--jobs", "1"]))
        };
        for _ in 0..200 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(socket.exists(), "daemon socket never appeared");

        let req = tmp_file("serve-req.toml", "workload = bitcount\ncommand = accel\n");
        let report = run_cli(&["submit", socket.to_str().unwrap(), req.to_str().unwrap()]).unwrap();
        assert!(report.contains("cycles"), "{report}");

        let status_req = tmp_file("serve-status.toml", "command = status\n");
        let status = run_cli(&[
            "submit",
            socket.to_str().unwrap(),
            status_req.to_str().unwrap(),
            "--json",
        ])
        .unwrap();
        assert!(status.contains("\"completed\":1"), "{status}");

        let shutdown_req = tmp_file("serve-shutdown.toml", "command = shutdown\n");
        run_cli(&[
            "submit",
            socket.to_str().unwrap(),
            shutdown_req.to_str().unwrap(),
        ])
        .unwrap();
        let summary = server.join().unwrap().unwrap();
        assert!(
            summary.contains("drained: 1 submitted, 1 completed"),
            "{summary}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Writes a two-request span dump driven by a fake clock, so every
    /// expected duration below is exact.
    fn fake_span_dump(name: &str) -> std::path::PathBuf {
        use dim_obs::{FakeClock, SharedClock, SpanSheet};
        let clock = FakeClock::shared(1_000);
        let sheet = SpanSheet::new(std::sync::Arc::clone(&clock) as SharedClock, 16);
        for (seq, tenant) in [(1u64, "alpha"), (2u64, "beta")] {
            let root = sheet.begin_root("request", tenant, seq);
            let queue = sheet.begin("queue_wait", root);
            clock.advance(2_000);
            sheet.end(queue);
            let exec = sheet.begin("exec", root);
            clock.advance(seq * 10_000);
            sheet.end(exec);
            sheet.end(root);
        }
        tmp_file(name, &sheet.render())
    }

    #[test]
    fn spans_analyzes_a_dump_and_exports_chrome_trace() {
        let dump = fake_span_dump("t60.dimspan");
        let text = run_cli(&["spans", dump.to_str().unwrap()]).unwrap();
        assert!(text.contains("2 request tree(s)"), "{text}");
        assert!(text.contains("laws: ok"), "{text}");
        assert!(text.contains("per-stage latency"), "{text}");
        assert!(text.contains("queue_wait"), "{text}");
        // The slowest request is beta's (20 ms exec vs alpha's 10 ms).
        assert!(text.contains("tenant `beta` seq 2"), "{text}");
        assert!(text.contains("critical path: request -> exec"), "{text}");

        let json = run_cli(&["spans", dump.to_str().unwrap(), "--json"]).unwrap();
        let v = dim_obs::parse_json(&json).unwrap();
        assert_eq!(
            v.get("laws_ok").and_then(dim_obs::JsonValue::as_bool),
            Some(true)
        );
        let exec = v.get("stages").and_then(|s| s.get("exec")).unwrap();
        assert_eq!(
            exec.get("count").and_then(dim_obs::JsonValue::as_u64),
            Some(2)
        );
        assert_eq!(
            exec.get("max_nanos").and_then(dim_obs::JsonValue::as_u64),
            Some(20_000)
        );
        let beta = v.get("tenants").and_then(|t| t.get("beta")).unwrap();
        assert_eq!(
            beta.get("requests").and_then(dim_obs::JsonValue::as_u64),
            Some(1)
        );

        let chrome = tmp_file("t60-chrome.json", "");
        run_cli(&[
            "spans",
            dump.to_str().unwrap(),
            "--chrome-out",
            chrome.to_str().unwrap(),
        ])
        .unwrap();
        let trace = std::fs::read_to_string(&chrome).unwrap();
        let v = dim_obs::parse_json(&trace).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 2 thread_name metadata events + 6 span events.
        assert_eq!(events.len(), 8, "{trace}");
        assert!(trace.contains("\"ph\":\"X\""), "{trace}");
        assert!(trace.contains("beta #2"), "{trace}");
    }

    #[test]
    fn spans_flags_law_violations_and_bad_files() {
        use dim_obs::{FakeClock, SharedClock, SpanSheet};
        // A dump with an un-ended child trips the text-mode exit and is
        // reported (not hidden) in --json.
        let clock = FakeClock::shared(0);
        let sheet = SpanSheet::new(std::sync::Arc::clone(&clock) as SharedClock, 4);
        let root = sheet.begin_root("request", "t", 1);
        let _leak = sheet.begin("exec", root);
        clock.advance(500);
        sheet.end(root);
        let dump = tmp_file("t61.dimspan", &sheet.render());
        let err = run_cli(&["spans", dump.to_str().unwrap()]).unwrap_err();
        assert!(err.to_string().contains("law violation"), "{err}");
        let json = run_cli(&["spans", dump.to_str().unwrap(), "--json"]).unwrap();
        assert!(json.contains("\"laws_ok\":false"), "{json}");
        assert!(json.contains("never ended"), "{json}");

        let err = run_cli(&["spans", "/nonexistent/spans.dimspan"]).unwrap_err();
        assert!(!err.to_string().is_empty());
        let garbage = tmp_file("t61-garbage.dimspan", "not a span frame\n");
        let err = run_cli(&["spans", garbage.to_str().unwrap()]).unwrap_err();
        assert!(!err.to_string().is_empty());
        let err = run_cli(&["spans"]).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }
}
