//! A small scriptable debugger for the simulator (`dim debug`).
//!
//! Reads commands from stdin (or a `--script` file), one per line:
//!
//! ```text
//! step [N]            execute N instructions (default 1), echoing each
//! break <addr|label>  set a breakpoint
//! delete <addr|label> remove a breakpoint
//! continue            run to the next breakpoint or halt
//! regs                print the register file
//! mem <addr|label> [len]   hex-dump memory (default 64 bytes)
//! disasm [addr|label] [n]  disassemble n instructions (default 8)
//! stats               print cycle/instruction counters
//! checkpoint          snapshot the whole machine state
//! restore             rewind to the last checkpoint
//! quit                stop debugging
//! ```
//!
//! Unknown commands print an error and continue, so scripts are robust.

use crate::CliError;
use dim_mips::asm::Program;
use dim_mips::disassemble_word;
use dim_mips_sim::Machine;
use std::collections::BTreeSet;
use std::io::{BufRead, Write};

/// The debugger session state.
struct Debugger<'a> {
    machine: Machine,
    program: &'a Program,
    breakpoints: BTreeSet<u32>,
    checkpoint: Option<Box<Machine>>,
}

/// Resolves `addr` as hex/decimal number or program label.
fn resolve(program: &Program, token: &str) -> Result<u32, CliError> {
    if let Some(hex) = token.strip_prefix("0x") {
        return u32::from_str_radix(hex, 16)
            .map_err(|_| CliError::new(format!("bad address `{token}`")));
    }
    if let Ok(n) = token.parse::<u32>() {
        return Ok(n);
    }
    program
        .symbol(token)
        .ok_or_else(|| CliError::new(format!("unknown label `{token}`")))
}

impl Debugger<'_> {
    fn print_location(&self, out: &mut impl Write) -> Result<(), CliError> {
        let pc = self.machine.cpu.pc;
        let text = match self.machine.fetch(pc) {
            Ok(inst) => inst.to_string(),
            Err(_) => "<outside text>".into(),
        };
        writeln!(out, "{pc:#010x}:   {text}")?;
        Ok(())
    }

    fn step(&mut self, n: u64, out: &mut impl Write) -> Result<(), CliError> {
        for _ in 0..n {
            if self.machine.halted().is_some() {
                writeln!(out, "program has halted")?;
                return Ok(());
            }
            self.print_location(out)?;
            self.machine
                .step()
                .map_err(|e| CliError::new(e.to_string()))?;
        }
        Ok(())
    }

    fn cont(&mut self, out: &mut impl Write) -> Result<(), CliError> {
        let mut steps: u64 = 0;
        loop {
            if self.machine.halted().is_some() {
                writeln!(out, "program exited after {steps} instructions")?;
                return Ok(());
            }
            if steps > 0 && self.breakpoints.contains(&self.machine.cpu.pc) {
                writeln!(out, "breakpoint hit after {steps} instructions:")?;
                self.print_location(out)?;
                return Ok(());
            }
            if steps > 200_000_000 {
                writeln!(out, "giving up after {steps} instructions")?;
                return Ok(());
            }
            self.machine
                .step()
                .map_err(|e| CliError::new(e.to_string()))?;
            steps += 1;
        }
    }

    fn regs(&self, out: &mut impl Write) -> Result<(), CliError> {
        use dim_mips::Reg;
        for chunk in Reg::all().collect::<Vec<_>>().chunks(4) {
            let line: Vec<String> = chunk
                .iter()
                .map(|&r| format!("{:>5} = {:#010x}", r.to_string(), self.machine.cpu.reg(r)))
                .collect();
            writeln!(out, "  {}", line.join("   "))?;
        }
        writeln!(
            out,
            "    $hi = {:#010x}     $lo = {:#010x}     pc = {:#010x}",
            self.machine.cpu.hi, self.machine.cpu.lo, self.machine.cpu.pc
        )?;
        Ok(())
    }

    fn mem(&self, addr: u32, len: usize, out: &mut impl Write) -> Result<(), CliError> {
        let bytes = self.machine.mem.read_bytes(addr, len);
        for (row, chunk) in bytes.chunks(16).enumerate() {
            let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
            let ascii: String = chunk
                .iter()
                .map(|&b| {
                    if (0x20..0x7f).contains(&b) {
                        b as char
                    } else {
                        '.'
                    }
                })
                .collect();
            writeln!(
                out,
                "{:#010x}  {:<47}  |{}|",
                addr as usize + 16 * row,
                hex.join(" "),
                ascii
            )?;
        }
        Ok(())
    }

    fn disasm(&self, addr: u32, n: usize, out: &mut impl Write) -> Result<(), CliError> {
        for k in 0..n {
            let pc = addr.wrapping_add(4 * k as u32);
            match self.machine.fetch(pc) {
                Ok(_) => {
                    let word = self
                        .machine
                        .mem
                        .read_u32(pc)
                        .map_err(|e| CliError::new(e.to_string()))?;
                    let marker = if pc == self.machine.cpu.pc { ">" } else { " " };
                    writeln!(out, "{marker} {pc:#010x}:   {}", disassemble_word(word))?;
                }
                Err(_) => break,
            }
        }
        Ok(())
    }
}

/// Runs a debugger session over `commands`.
///
/// # Errors
///
/// I/O errors and fatal simulator faults; malformed commands only print
/// a diagnostic.
pub fn debug_session(
    program: &Program,
    commands: impl BufRead,
    out: &mut impl Write,
) -> Result<(), CliError> {
    let mut dbg = Debugger {
        machine: Machine::load(program),
        program,
        breakpoints: BTreeSet::new(),
        checkpoint: None,
    };
    writeln!(
        out,
        "debugging: entry {:#010x}, {} instructions",
        program.entry,
        program.text.len()
    )?;
    for line in commands.lines() {
        let line = line?;
        let mut words = line.split_whitespace();
        let Some(cmd) = words.next() else { continue };
        let args: Vec<&str> = words.collect();
        let result = match cmd {
            "step" | "s" => {
                let n = args.first().and_then(|v| v.parse().ok()).unwrap_or(1);
                dbg.step(n, out)
            }
            "break" | "b" => match args.first() {
                Some(tok) => resolve(dbg.program, tok).map(|a| {
                    dbg.breakpoints.insert(a);
                    let _ = writeln!(out, "breakpoint at {a:#010x}");
                }),
                None => Err(CliError::new("break: missing address")),
            },
            "delete" => match args.first() {
                Some(tok) => resolve(dbg.program, tok).map(|a| {
                    dbg.breakpoints.remove(&a);
                }),
                None => Err(CliError::new("delete: missing address")),
            },
            "continue" | "c" => dbg.cont(out),
            "regs" | "r" => dbg.regs(out),
            "mem" | "m" => match args.first() {
                Some(tok) => resolve(dbg.program, tok).and_then(|a| {
                    let len = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(64);
                    dbg.mem(a, len, out)
                }),
                None => Err(CliError::new("mem: missing address")),
            },
            "disasm" | "d" => {
                let addr = match args.first() {
                    Some(tok) => resolve(dbg.program, tok)?,
                    None => dbg.machine.cpu.pc,
                };
                let n = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(8);
                dbg.disasm(addr, n, out)
            }
            "stats" => {
                let s = &dbg.machine.stats;
                writeln!(
                    out,
                    "{} instructions, {} cycles, {} branches ({} taken)",
                    s.instructions, s.cycles, s.branches, s.taken_branches
                )
                .map_err(CliError::from)
            }
            "checkpoint" => {
                dbg.checkpoint = Some(Box::new(dbg.machine.clone()));
                writeln!(out, "checkpoint saved at {:#010x}", dbg.machine.cpu.pc)
                    .map_err(CliError::from)
            }
            "restore" => match dbg.checkpoint.as_deref() {
                Some(saved) => {
                    dbg.machine = saved.clone();
                    writeln!(out, "restored to {:#010x}", dbg.machine.cpu.pc)
                        .map_err(CliError::from)
                }
                None => Err(CliError::new("restore: no checkpoint saved")),
            },
            "quit" | "q" => break,
            other => Err(CliError::new(format!("unknown command `{other}`"))),
        };
        if let Err(e) = result {
            writeln!(out, "error: {e}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::asm::assemble;
    use std::io::BufReader;

    const PROGRAM: &str = "
        .data
        msg: .asciiz \"Hi!\"
        .text
        main: li $t0, 3
        loop: addiu $t0, $t0, -1
              bnez $t0, loop
              break 0";

    fn session(script: &str) -> String {
        let program = assemble(PROGRAM).unwrap();
        let mut out = Vec::new();
        debug_session(&program, BufReader::new(script.as_bytes()), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn step_echoes_instructions() {
        let out = session("step 2\nquit\n");
        assert!(out.contains("addiu $t0, $zero, 3"), "{out}");
        assert!(out.contains("addiu $t0, $t0, -1"), "{out}");
    }

    #[test]
    fn breakpoints_by_label() {
        let out = session("break loop\ncontinue\ncontinue\nregs\nquit\n");
        assert!(out.contains("breakpoint at"), "{out}");
        assert!(out.matches("breakpoint hit").count() >= 2, "{out}");
        assert!(out.contains("$t0 = 0x00000002"), "{out}");
    }

    #[test]
    fn continue_to_halt() {
        let out = session("continue\n");
        assert!(out.contains("program exited"), "{out}");
    }

    #[test]
    fn mem_dumps_hex_and_ascii() {
        let out = session("mem msg 8\nquit\n");
        assert!(out.contains("48 69 21"), "{out}");
        assert!(out.contains("|Hi!"), "{out}");
    }

    #[test]
    fn disasm_marks_current_pc() {
        let out = session("disasm main 3\nquit\n");
        assert!(out.contains("> 0x00400000"), "{out}");
    }

    #[test]
    fn bad_commands_do_not_abort() {
        let out = session("frobnicate\nbreak\nmem\nstep 1\nquit\n");
        assert!(out.contains("unknown command"), "{out}");
        assert!(out.contains("missing address"), "{out}");
        assert!(out.contains("addiu"), "session must continue: {out}");
    }

    #[test]
    fn checkpoint_and_restore_rewind_state() {
        let out = session(
            "step 1
checkpoint
step 4
regs
restore
regs
quit
",
        );
        assert!(out.contains("checkpoint saved"), "{out}");
        assert!(out.contains("restored to"), "{out}");
        // After restore, $t0 is back to its just-initialized value 3.
        let after_restore = out.rsplit("restored to").next().unwrap();
        assert!(after_restore.contains("$t0 = 0x00000003"), "{out}");
    }

    #[test]
    fn restore_without_checkpoint_is_an_error() {
        let out = session(
            "restore
quit
",
        );
        assert!(out.contains("no checkpoint saved"), "{out}");
    }

    #[test]
    fn stats_command() {
        let out = session("step 5\nstats\nquit\n");
        assert!(out.contains("instructions"), "{out}");
        assert!(out.contains("branches"), "{out}");
    }
}
