//! `dim spans`: offline analyzer for wall-clock span dumps
//! (`spans.dimspan`) written by `dim serve` and `dim sweep`.
//!
//! The analyzer never re-times anything — it works purely from the
//! recorded monotonic-clock intervals: per-stage latency percentiles,
//! per-tenant aggregation, the slowest request's waterfall with its
//! critical path, and the engine's host-time attribution buckets.
//! `--json` emits the same aggregates machine-readably; `--chrome-out`
//! exports every tree as Chrome trace events (one track per request).

use crate::{check_flags, parse_flag_value, CliError};
use dim_obs::span::{percentile_nanos, read_span_file, ParsedSpan, SpanFile, SpanForest};
use dim_obs::{write_escaped, ObjectWriter};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Entry point for `dim spans <file> [--json] [--chrome-out <f.json>]`.
pub fn cmd_spans(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    check_flags("spans", args, &["--chrome-out"], &["--json"], 1)?;
    let chrome_out = parse_flag_value(args, "--chrome-out")?;
    // The one positional is the dump path; skip flag values when
    // scanning for it.
    let mut path: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--chrome-out" {
            i += 2;
            continue;
        }
        if !a.starts_with('-') {
            path = Some(a);
            break;
        }
        i += 1;
    }
    let path = path.ok_or_else(|| CliError::new("spans: missing <spans.dimspan> file"))?;
    let file = read_span_file(Path::new(path))
        .map_err(|e| CliError::new(format!("spans: {path}: {e}")))?;
    let forest = SpanForest::build(&file);
    let laws = forest.check_laws();

    if let Some(chrome_path) = chrome_out {
        let trace = chrome_trace(&forest);
        std::fs::write(chrome_path, trace)
            .map_err(|e| CliError::new(format!("--chrome-out {chrome_path}: {e}")))?;
        writeln!(out, "chrome trace -> {chrome_path}")?;
    }

    if args.iter().any(|a| a == "--json") {
        writeln!(out, "{}", render_json(path, &file, &forest, &laws))?;
        return Ok(());
    }
    render_text(path, &file, &forest, &laws, out)?;
    if laws.is_empty() {
        Ok(())
    } else {
        Err(CliError::new(format!(
            "spans: {} law violation(s) (see above)",
            laws.len()
        )))
    }
}

/// Micros with millisecond-style precision for human output.
fn fmt_micros(nanos: u64) -> String {
    format!("{:.1}", nanos as f64 / 1_000.0)
}

/// Roots grouped by tenant, each with its sorted wall durations.
fn tenant_walls(forest: &SpanForest) -> BTreeMap<&str, Vec<u64>> {
    let mut map: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for &root in &forest.roots {
        let span = &forest.spans[root];
        map.entry(span.tenant.as_str())
            .or_default()
            .push(span.duration_nanos());
    }
    for walls in map.values_mut() {
        walls.sort_unstable();
    }
    map
}

/// Host-attribution buckets summed over every span in the dump.
fn bucket_totals(file: &SpanFile) -> BTreeMap<&str, (u64, u64, u64)> {
    let mut totals: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for attr in &file.attrs {
        for bucket in &attr.buckets {
            let t = totals.entry(bucket.name.as_str()).or_default();
            t.0 += bucket.count;
            t.1 += bucket.sampled;
            t.2 += bucket.nanos;
        }
    }
    totals
}

fn slowest_root(forest: &SpanForest) -> Option<usize> {
    forest
        .roots
        .iter()
        .copied()
        .max_by_key(|&r| forest.spans[r].duration_nanos())
}

fn render_text(
    path: &str,
    file: &SpanFile,
    forest: &SpanForest,
    laws: &[String],
    out: &mut impl Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "{path}: {} span(s), {} request tree(s), {} orphan(s) trimmed, {} dropped",
        file.spans.len(),
        forest.roots.len(),
        forest.orphans_trimmed,
        file.dropped
    )?;
    if laws.is_empty() {
        writeln!(out, "laws: ok")?;
    } else {
        for v in laws {
            writeln!(out, "law violation: {v}")?;
        }
    }

    writeln!(out, "\nper-stage latency (us):")?;
    writeln!(
        out,
        "  {:<12} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50", "p90", "p99", "max"
    )?;
    for (stage, mut nanos) in forest.stage_durations() {
        nanos.sort_unstable();
        writeln!(
            out,
            "  {:<12} {:>8} {:>10} {:>10} {:>10} {:>10}",
            stage,
            nanos.len(),
            fmt_micros(percentile_nanos(&nanos, 50)),
            fmt_micros(percentile_nanos(&nanos, 90)),
            fmt_micros(percentile_nanos(&nanos, 99)),
            fmt_micros(nanos.last().copied().unwrap_or(0)),
        )?;
    }

    writeln!(out, "\nper-tenant requests (us):")?;
    writeln!(
        out,
        "  {:<16} {:>8} {:>10} {:>10} {:>12}",
        "tenant", "count", "p50", "p99", "total"
    )?;
    for (tenant, walls) in tenant_walls(forest) {
        let label = if tenant.is_empty() { "(none)" } else { tenant };
        writeln!(
            out,
            "  {:<16} {:>8} {:>10} {:>10} {:>12}",
            label,
            walls.len(),
            fmt_micros(percentile_nanos(&walls, 50)),
            fmt_micros(percentile_nanos(&walls, 99)),
            fmt_micros(walls.iter().sum()),
        )?;
    }

    if let Some(root) = slowest_root(forest) {
        let span = &forest.spans[root];
        writeln!(
            out,
            "\nslowest request: tenant `{}` seq {} — {} us wall",
            span.tenant,
            span.seq,
            fmt_micros(span.duration_nanos())
        )?;
        render_waterfall(forest, root, root, 0, out)?;
        let (cp, cp_nanos) = forest.critical_path(root);
        let stages: Vec<&str> = cp.iter().map(|&i| forest.spans[i].stage.as_str()).collect();
        writeln!(
            out,
            "critical path: {} ({} us of {} us wall)",
            stages.join(" -> "),
            fmt_micros(cp_nanos),
            fmt_micros(span.duration_nanos()),
        )?;
    }

    let totals = bucket_totals(file);
    if !totals.is_empty() {
        writeln!(out, "\nengine host-time attribution (all requests):")?;
        writeln!(
            out,
            "  {:<14} {:>10} {:>10} {:>12}",
            "bucket", "count", "sampled", "est us"
        )?;
        for (name, (count, sampled, nanos)) in totals {
            writeln!(
                out,
                "  {:<14} {:>10} {:>10} {:>12}",
                name,
                count,
                sampled,
                fmt_micros(nanos)
            )?;
        }
    }
    Ok(())
}

/// One indented line per span in the slowest tree, with a 32-column
/// bar placing the span inside the root's wall interval.
fn render_waterfall(
    forest: &SpanForest,
    root: usize,
    index: usize,
    depth: usize,
    out: &mut impl Write,
) -> Result<(), CliError> {
    const BAR: usize = 32;
    let root_span = &forest.spans[root];
    let span = &forest.spans[index];
    let wall = root_span.duration_nanos().max(1);
    let offset = span.start_nanos.saturating_sub(root_span.start_nanos);
    let lead = (offset as usize).saturating_mul(BAR) / (wall as usize).max(1);
    let len = ((span.duration_nanos() as usize).saturating_mul(BAR) / (wall as usize).max(1))
        .clamp(1, BAR.saturating_sub(lead).max(1));
    let mut bar = " ".repeat(lead.min(BAR.saturating_sub(1)));
    bar.push_str(&"#".repeat(len));
    writeln!(
        out,
        "  {:<24} [{bar:<BAR$}] +{:>9} us, {:>9} us",
        format!("{}{}", "  ".repeat(depth), span.stage),
        fmt_micros(offset),
        fmt_micros(span.duration_nanos()),
    )?;
    for &child in &forest.children[index] {
        render_waterfall(forest, root, child, depth + 1, out)?;
    }
    Ok(())
}

fn render_json(path: &str, file: &SpanFile, forest: &SpanForest, laws: &[String]) -> String {
    let mut stages = String::from("{");
    for (i, (stage, mut nanos)) in forest.stage_durations().into_iter().enumerate() {
        if i > 0 {
            stages.push(',');
        }
        nanos.sort_unstable();
        let mut o = ObjectWriter::new();
        o.field_u64("count", nanos.len() as u64)
            .field_u64("p50_nanos", percentile_nanos(&nanos, 50))
            .field_u64("p90_nanos", percentile_nanos(&nanos, 90))
            .field_u64("p99_nanos", percentile_nanos(&nanos, 99))
            .field_u64("max_nanos", nanos.last().copied().unwrap_or(0))
            .field_u64("total_nanos", nanos.iter().sum());
        write_escaped(&mut stages, &stage);
        stages.push(':');
        stages.push_str(&o.finish());
    }
    stages.push('}');

    let mut tenants = String::from("{");
    for (i, (tenant, walls)) in tenant_walls(forest).into_iter().enumerate() {
        if i > 0 {
            tenants.push(',');
        }
        let mut o = ObjectWriter::new();
        o.field_u64("requests", walls.len() as u64)
            .field_u64("p50_nanos", percentile_nanos(&walls, 50))
            .field_u64("p99_nanos", percentile_nanos(&walls, 99))
            .field_u64("total_nanos", walls.iter().sum());
        write_escaped(&mut tenants, tenant);
        tenants.push(':');
        tenants.push_str(&o.finish());
    }
    tenants.push('}');

    let mut buckets = String::from("{");
    for (i, (name, (count, sampled, nanos))) in bucket_totals(file).into_iter().enumerate() {
        if i > 0 {
            buckets.push(',');
        }
        let mut o = ObjectWriter::new();
        o.field_u64("count", count)
            .field_u64("sampled", sampled)
            .field_u64("estimated_nanos", nanos);
        write_escaped(&mut buckets, name);
        buckets.push(':');
        buckets.push_str(&o.finish());
    }
    buckets.push('}');

    let laws_json = format!(
        "[{}]",
        laws.iter()
            .map(|v| {
                let mut s = String::new();
                write_escaped(&mut s, v);
                s
            })
            .collect::<Vec<_>>()
            .join(",")
    );

    let mut w = ObjectWriter::new();
    w.field_str("file", path)
        .field_u64("spans", file.spans.len() as u64)
        .field_u64("roots", forest.roots.len() as u64)
        .field_u64("orphans_trimmed", forest.orphans_trimmed as u64)
        .field_u64("dropped", file.dropped)
        .field_bool("laws_ok", laws.is_empty())
        .field_raw("laws", &laws_json)
        .field_raw("stages", &stages)
        .field_raw("tenants", &tenants)
        .field_raw("host_split", &buckets);
    if let Some(root) = slowest_root(forest) {
        let span = &forest.spans[root];
        let (cp, cp_nanos) = forest.critical_path(root);
        let path_json = format!(
            "[{}]",
            cp.iter()
                .map(|&i| {
                    let mut s = String::new();
                    write_escaped(&mut s, &forest.spans[i].stage);
                    s
                })
                .collect::<Vec<_>>()
                .join(",")
        );
        let mut o = ObjectWriter::new();
        o.field_str("tenant", &span.tenant)
            .field_u64("seq", span.seq)
            .field_u64("wall_nanos", span.duration_nanos())
            .field_raw("critical_path", &path_json)
            .field_u64("critical_nanos", cp_nanos);
        w.field_raw("slowest", &o.finish());
    }
    w.finish()
}

/// Chrome trace-event export (`{"traceEvents":[...]}`), loadable in
/// `chrome://tracing` or Perfetto: one complete (`ph:X`) event per
/// span, one track (tid) per request tree, named after its tenant/seq.
fn chrome_trace(forest: &SpanForest) -> String {
    let mut events: Vec<String> = Vec::new();
    for (track, &root) in forest.roots.iter().enumerate() {
        let tid = track as u64 + 1;
        let span = &forest.spans[root];
        let mut meta = ObjectWriter::new();
        let mut args = ObjectWriter::new();
        args.field_str("name", &format!("{} #{}", span.tenant, span.seq));
        meta.field_str("name", "thread_name")
            .field_str("ph", "M")
            .field_u64("pid", 1)
            .field_u64("tid", tid)
            .field_raw("args", &args.finish());
        events.push(meta.finish());
        push_tree_events(forest, root, tid, &mut events);
    }
    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&events.join(","));
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn push_tree_events(forest: &SpanForest, index: usize, tid: u64, events: &mut Vec<String>) {
    let span: &ParsedSpan = &forest.spans[index];
    let mut o = ObjectWriter::new();
    let mut args = ObjectWriter::new();
    args.field_u64("span_id", span.id)
        .field_u64("self_nanos", forest.self_nanos(index));
    o.field_str("name", &span.stage)
        .field_str("cat", "span")
        .field_str("ph", "X")
        .field_f64("ts", span.start_nanos as f64 / 1_000.0)
        .field_f64("dur", span.duration_nanos() as f64 / 1_000.0)
        .field_u64("pid", 1)
        .field_u64("tid", tid)
        .field_raw("args", &args.finish());
    events.push(o.finish());
    for &child in &forest.children[index] {
        push_tree_events(forest, child, tid, events);
    }
}
