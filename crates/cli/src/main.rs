//! The `dim` command-line tool. See `dim help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = dim_cli::dispatch(&args, &mut out) {
        eprintln!("dim: {e}");
        std::process::exit(1);
    }
}
