//! End-to-end tests driving the actual compiled `dim` binary through a
//! shell-equivalent interface (argument parsing, exit codes, stdout).

use std::path::PathBuf;
use std::process::Command;

fn dim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dim"))
}

fn tmp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dim-bin-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write temp file");
    path
}

const PROGRAM: &str = "
    main: li $s0, 25
          li $v0, 0
    loop: addu $v0, $v0, $s0
          xor  $t0, $v0, $s0
          addu $v0, $v0, $t0
          addiu $s0, $s0, -1
          bnez $s0, loop
          break 0";

#[test]
fn help_exits_zero() {
    let out = dim().arg("help").output().expect("spawns");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}

#[test]
fn unknown_command_exits_nonzero_with_stderr() {
    let out = dim().arg("explode").output().expect("spawns");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn asm_run_accel_pipeline() {
    let src = tmp("p1.s", PROGRAM);
    let img = std::env::temp_dir().join("dim-bin-tests/p1.dimg");

    let out = dim()
        .args(["asm", src.to_str().unwrap(), "-o", img.to_str().unwrap()])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(img.exists());

    let out = dim()
        .args(["run", img.to_str().unwrap()])
        .output()
        .expect("spawns");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("cycles"), "{text}");

    let out = dim()
        .args(["accel", img.to_str().unwrap(), "--config", "2", "--compare"])
        .output()
        .expect("spawns");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("speedup"), "{text}");
}

#[test]
fn assembly_error_is_reported_with_line() {
    let src = tmp("bad.s", "main: nop\n frobnicate $t0\n");
    let out = dim()
        .args(["run", src.to_str().unwrap()])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("line 2"), "{err}");
    assert!(err.contains("unknown mnemonic"), "{err}");
}

#[test]
fn debug_reads_stdin() {
    use std::io::Write as _;
    use std::process::Stdio;
    let src = tmp("p2.s", PROGRAM);
    let mut child = dim()
        .args(["debug", src.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"step 2\nregs\nquit\n")
        .expect("writes script");
    let out = child.wait_with_output().expect("waits");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("$s0"), "{text}");
}
