//! Soundness laws for the dim-prove stride/alias prover, checked
//! against the dynamic simulator:
//!
//! 1. Across the full benchmark suite, every stride table in every
//!    emitted certificate must match the per-iteration address deltas
//!    the machine actually produces.
//! 2. Loops containing a syscall, an indirect store, or a non-affine
//!    store index must never be certified.
//! 3. Randomized counted loops (proptest) obey the same law: whenever
//!    the prover certifies, the dynamic trace agrees.
//! 4. Blind K-burst replay of a certified body is byte-identical to K
//!    normally-stepped iterations — the property the translator relies
//!    on when it tags rcache entries `stream_ok`.

use dim_cgra::{StreamClass, StreamingCert};
use dim_lint::prove::prove_program;
use dim_mips::asm::assemble;
use dim_mips_sim::Machine;
use dim_workloads::{suite, Scale};
use proptest::prelude::*;
use std::collections::HashMap;

/// Records one dynamic execution as (pc, data address) pairs.
fn trace(machine: &mut Machine, max_steps: u64) -> Vec<(u32, Option<u32>)> {
    let mut steps = Vec::new();
    machine
        .run_with(max_steps, |info| steps.push((info.pc, info.mem_addr)))
        .expect("workload runs without simulator faults");
    steps
}

/// Checks one certificate's stride table against a dynamic trace.
/// Returns the number of consecutive-iteration address pairs compared
/// under an Affine or Invariant claim.
fn check_cert_against_trace(
    workload: &str,
    cert: &StreamingCert,
    steps: &[(u32, Option<u32>)],
) -> usize {
    let mut compared = 0usize;
    // Addresses observed at each access PC in the previous / current
    // iteration. An iteration begins when pc hits the loop entry; the
    // comparison window resets whenever control leaves the region,
    // because the stride claim only relates *consecutive* iterations.
    let mut prev: Option<HashMap<u32, u32>> = None;
    let mut cur: HashMap<u32, u32> = HashMap::new();
    let mut in_iter = false;

    let mut finish_iteration = |prev: &mut Option<HashMap<u32, u32>>,
                                cur: &mut HashMap<u32, u32>| {
        let done = std::mem::take(cur);
        if let Some(before) = prev.take() {
            for access in &cert.accesses {
                let (Some(&a0), Some(&a1)) = (before.get(&access.pc), done.get(&access.pc)) else {
                    continue;
                };
                let delta = a1.wrapping_sub(a0) as i32 as i64;
                match access.class {
                    StreamClass::Affine { stride } => {
                        assert_eq!(
                            delta,
                            i64::from(stride),
                            "{workload}: access {:#x} in region {:#x} certified \
                                 stride {stride} but stepped {a0:#x} -> {a1:#x}",
                            access.pc,
                            cert.entry_pc
                        );
                        compared += 1;
                    }
                    StreamClass::Invariant => {
                        assert_eq!(
                            delta, 0,
                            "{workload}: access {:#x} certified invariant but moved \
                                 {a0:#x} -> {a1:#x}",
                            access.pc
                        );
                        compared += 1;
                    }
                    StreamClass::Unknown => {}
                }
            }
        }
        *prev = Some(done);
    };

    for &(pc, addr) in steps {
        if pc == cert.entry_pc {
            if in_iter {
                finish_iteration(&mut prev, &mut cur);
            }
            in_iter = true;
        } else if !cert.contains(pc) {
            if in_iter {
                finish_iteration(&mut prev, &mut cur);
            }
            in_iter = false;
            prev = None;
            cur.clear();
        }
        if in_iter && cert.contains(pc) {
            if let Some(a) = addr {
                cur.insert(pc, a);
            }
        }
    }
    compared
}

/// Law 1: every certificate emitted over the benchmark suite is
/// dynamically sound — certified strides are the strides the machine
/// actually walks, iteration over iteration.
#[test]
fn certified_strides_match_dynamic_addresses_across_suite() {
    let mut certified_workloads = 0usize;
    let mut total_compared = 0usize;
    for spec in suite() {
        let built = (spec.build)(Scale::Tiny);
        let report = prove_program(&built.program, built.name);
        if report.cert_count() == 0 {
            continue;
        }
        certified_workloads += 1;
        let mut machine = Machine::load(&built.program);
        let steps = trace(&mut machine, built.max_steps);
        for cert in report.certs() {
            // The certificate must survive the dim-cgra wire validator
            // round-trip before we even look at the dynamics.
            let back = StreamingCert::parse_json(&cert.to_json()).expect("wire round-trip");
            assert_eq!(&back, cert);
            total_compared += check_cert_against_trace(built.name, cert, &steps);
        }
    }
    assert!(
        certified_workloads >= 3,
        "only {certified_workloads} workloads produced certificates"
    );
    assert!(
        total_compared >= 50,
        "only {total_compared} stride claims were dynamically exercised"
    );
}

/// Law 2: the classic must-reject shapes stay rejected at suite level.
#[test]
fn poisoned_loops_are_never_certified() {
    let syscall = assemble(
        "main: li $s0, 6
         loop: li $v0, 11
               li $a0, 42
               syscall
               addiu $s0, $s0, -1
               bnez $s0, loop
               break 0",
    )
    .expect("assembles");
    assert_eq!(
        prove_program(&syscall, "syscall").cert_count(),
        0,
        "syscall body must reject"
    );

    let indirect = assemble(
        "main: li $s0, 6
               li $s1, 0x2000
         loop: lw $t0, 0($s1)
               sw $t2, 0($t0)
               addiu $s1, $s1, 4
               addiu $s0, $s0, -1
               bnez $s0, loop
               break 0",
    )
    .expect("assembles");
    assert_eq!(
        prove_program(&indirect, "indirect").cert_count(),
        0,
        "indirect store must reject"
    );

    // Doubling pointer: the store address is not affine in the
    // iteration index, so no stride fact exists to certify.
    let nonaffine = assemble(
        "main: li $s0, 6
               li $s1, 0x2000
         loop: sw $t2, 0($s1)
               addu $s1, $s1, $s1
               addiu $s0, $s0, -1
               bnez $s0, loop
               break 0",
    )
    .expect("assembles");
    assert_eq!(
        prove_program(&nonaffine, "nonaffine").cert_count(),
        0,
        "non-affine store index must reject"
    );

    // A non-affine *load* is tolerated (crc32's table lookup), but it
    // must be classified Unknown — never laundered into a stride.
    let nonaffine_load = assemble(
        "main: li $s0, 6
               li $s1, 0x2000
         loop: lw $t0, 0($s1)
               addu $s1, $s1, $s1
               addiu $s0, $s0, -1
               bnez $s0, loop
               break 0",
    )
    .expect("assembles");
    let report = prove_program(&nonaffine_load, "nonaffine_load");
    for cert in report.certs() {
        for access in &cert.accesses {
            assert_eq!(
                access.class,
                StreamClass::Unknown,
                "doubling-pointer load must stay Unknown"
            );
        }
    }
}

/// One randomly-shaped access inside the generated loop.
#[derive(Debug, Clone, Copy)]
struct GenAccess {
    /// True: store `$t1` through `$s2`; false: load into `$t0` via `$s1`.
    store: bool,
    /// log2 of the access width (0, 1, 2 → byte, half, word).
    wlog: u32,
    /// Constant displacement in units of the width.
    disp: i32,
    /// Pointer bump per iteration, in words so every width stays
    /// aligned (the two pointers start on word boundaries).
    bump: i32,
}

impl GenAccess {
    fn width(&self) -> i32 {
        1 << self.wlog
    }

    fn asm(&self, idx: usize) -> String {
        let off = self.disp * self.width();
        if self.store {
            let op = ["sb", "sh", "sw"][self.wlog as usize];
            format!("{op} $t1, {off}($s2)")
        } else {
            let op = ["lbu", "lhu", "lw"][self.wlog as usize];
            format!("{op} $t{idx}, {off}($s1)")
        }
    }
}

fn any_access(store: bool) -> impl Strategy<Value = GenAccess> {
    (0u32..3, -4i32..=4, -4i32..=4).prop_map(move |(wlog, disp, bump)| GenAccess {
        store,
        wlog,
        disp,
        bump,
    })
}

/// Builds a counted loop over `accesses` with per-pointer bumps,
/// returning the source plus the byte stride each access actually
/// walks (loads share `$s1`, so the last load's bump governs all of
/// them). The two pointers start in disjoint pages.
fn gen_program(count: u32, accesses: &[GenAccess]) -> (String, Vec<i64>) {
    let mut body = String::new();
    let mut load_bump = 0;
    let mut store_bump = 0;
    for (i, a) in accesses.iter().enumerate() {
        body.push_str(&format!("       {}\n", a.asm(i)));
        if a.store {
            store_bump = a.bump * 4;
        } else {
            load_bump = a.bump * 4;
        }
    }
    let truths = accesses
        .iter()
        .map(|a| i64::from(if a.store { store_bump } else { load_bump }))
        .collect();
    let src = format!(
        "main: li $s0, {count}
               li $s1, 0x2100
               li $s2, 0x3100
               li $t1, 0x5a
         loop: {body}
               addiu $s1, $s1, {load_bump}
               addiu $s2, $s2, {store_bump}
               addiu $s0, $s0, -1
               bnez $s0, loop
               break 0",
        body = body.trim_start()
    );
    (src, truths)
}

proptest! {
    /// Law 3: on randomized counted loops, the prover is free to
    /// reject, but every certificate it does emit must match the
    /// dynamic address sequence, and every Affine claim must equal the
    /// ground-truth pointer bump we generated.
    #[test]
    fn random_counted_loops_are_soundly_classified(
        count in 1u32..=12,
        mode in 0usize..3,
        load in any_access(false),
        extra_load in any_access(false),
        store in any_access(true),
    ) {
        let accesses: Vec<GenAccess> = match mode {
            0 => vec![load],
            1 => vec![load, extra_load],
            _ => vec![store],
        };
        let (src, truths) = gen_program(count, &accesses);
        let program = assemble(&src).expect("generated program assembles");
        let report = prove_program(&program, "gen");

        for cert in report.certs() {
            // Wire round-trip, then ground truth: each certified access
            // PC maps back to a generated access whose bump we know.
            let back = StreamingCert::parse_json(&cert.to_json()).expect("round-trip");
            prop_assert_eq!(&back, cert);
            for access in &cert.accesses {
                if let StreamClass::Affine { stride } = access.class {
                    prop_assert!(
                        truths.contains(&i64::from(stride)),
                        "certified stride {} not among generated bumps {:?} in\n{}",
                        stride, truths, src
                    );
                }
            }
            prop_assert_eq!(cert.trip_bound, Some(count as u64), "exact trip for {}", src.clone());
        }

        let mut machine = Machine::load(&program);
        let steps = trace(&mut machine, 4096);
        for cert in report.certs() {
            check_cert_against_trace("gen", cert, &steps);
        }
    }
}

/// Law 4: for a certified region, blindly replaying the decoded body
/// K = burst times (the way a tagged rcache entry is driven) leaves
/// the architectural state byte-identical to K normally-stepped
/// iterations: every register, hi/lo, the PC, and every touched
/// memory word.
#[test]
fn burst_replay_is_byte_identical_to_stepped_iterations() {
    let mut replays = 0usize;
    for spec in suite() {
        let built = (spec.build)(Scale::Tiny);
        let report = prove_program(&built.program, built.name);
        for cert in report.certs() {
            // Only first entries with a proven trip are guaranteed to
            // stay in the loop for `burst` iterations.
            let Some(trip) = cert.trip_bound else {
                continue;
            };
            let k = cert.burst.min(trip as u32) as u64;
            if k == 0 {
                continue;
            }

            // Walk a probe machine to the first arrival at the loop
            // entry, counting steps so two fresh machines can be
            // deterministically advanced to the same point.
            let mut lead_in = 0u64;
            let mut probe = Machine::load(&built.program);
            while probe.cpu.pc != cert.entry_pc {
                probe.step().expect("lead-in steps");
                lead_in += 1;
                assert!(
                    lead_in < built.max_steps,
                    "{}: loop never entered",
                    built.name
                );
            }

            let mut stepped = Machine::load(&built.program);
            let mut replayed = Machine::load(&built.program);
            for _ in 0..lead_in {
                stepped.step().expect("stepped lead-in");
                replayed.step().expect("replayed lead-in");
            }

            // Reference: K full iterations through the normal fetch /
            // decode / execute path, recording touched addresses.
            let mut touched = Vec::new();
            for _ in 0..k * cert.len as u64 {
                let info = stepped.step().expect("stepped iteration");
                assert!(
                    cert.contains(info.pc),
                    "{}: control left region {:#x} before burst drained",
                    built.name,
                    cert.entry_pc
                );
                if let Some(addr) = info.mem_addr {
                    touched.push(addr);
                }
            }

            // Replay: drive the decoded body directly, K times, the
            // way burst replay skips per-iteration re-fetch.
            let body: Vec<_> = (0..cert.len)
                .map(|i| {
                    let pc = cert.entry_pc + 4 * i;
                    (pc, replayed.fetch(pc).expect("body decodes"))
                })
                .collect();
            for _ in 0..k {
                for &(pc, inst) in &body {
                    replayed.cpu.pc = pc;
                    replayed
                        .cpu
                        .execute(inst, &mut replayed.mem)
                        .expect("replayed body");
                }
            }

            for r in 0..32u8 {
                let reg = dim_mips::Reg::new(r).unwrap();
                assert_eq!(
                    stepped.cpu.reg(reg),
                    replayed.cpu.reg(reg),
                    "{}: $r{r} diverged after {k}-burst replay",
                    built.name
                );
            }
            assert_eq!(
                stepped.cpu.hi, replayed.cpu.hi,
                "{}: hi diverged",
                built.name
            );
            assert_eq!(
                stepped.cpu.lo, replayed.cpu.lo,
                "{}: lo diverged",
                built.name
            );
            assert_eq!(
                stepped.cpu.pc, replayed.cpu.pc,
                "{}: pc diverged",
                built.name
            );
            for addr in touched {
                let base = addr & !3;
                assert_eq!(
                    stepped.mem.read_bytes(base, 8),
                    replayed.mem.read_bytes(base, 8),
                    "{}: memory at {base:#x} diverged",
                    built.name
                );
            }
            replays += 1;
        }
    }
    assert!(replays >= 3, "only {replays} burst replays were exercised");
}
