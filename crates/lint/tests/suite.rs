//! Suite-wide guarantees: every workload binary lints clean (modulo its
//! explicit allowlist), and every region the dynamic translator commits
//! is contained in the static candidate set.

use dim_core::{System, SystemConfig, TranslatorOptions};
use dim_lint::candidates::contains_region;
use dim_lint::{lint_program, LintOptions};
use dim_mips_sim::Machine;
use dim_workloads::{suite, Scale};

#[test]
fn every_workload_lints_clean() {
    let mut failures = Vec::new();
    for spec in suite() {
        let built = (spec.build)(Scale::Tiny);
        let opts = LintOptions {
            allow: dim_workloads::lint_allowlist(spec.name)
                .iter()
                .map(|(code, _)| (*code).to_string())
                .collect(),
        };
        let report = lint_program(&built.program, &opts);
        if !report.is_clean() {
            for d in report
                .diagnostics
                .iter()
                .filter(|d| !matches!(d.severity, dim_lint::lints::Severity::Note))
            {
                failures.push(format!("{}: {d}", spec.name));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "lint findings:\n{}",
        failures.join("\n")
    );
}

/// Every allowlist entry must still be needed: a suppression that no
/// longer fires is stale and must be removed.
#[test]
fn allowlists_carry_no_stale_entries() {
    for spec in suite() {
        let allow = dim_workloads::lint_allowlist(spec.name);
        if allow.is_empty() {
            continue;
        }
        let built = (spec.build)(Scale::Tiny);
        let report = lint_program(&built.program, &LintOptions::default());
        for (code, why) in allow {
            assert!(
                report.diagnostics.iter().any(|d| d.code == *code),
                "{}: allowlisted {code} ({why}) no longer fires — remove it",
                spec.name
            );
        }
    }
}

/// Property: every configuration the dynamic translator commits is a
/// prefix of a path in the static candidate set at the same entry PC.
/// Runs with the debug verifier enabled, so every committed
/// configuration is also structurally verified on the way in.
#[test]
fn dynamic_regions_are_statically_predicted() {
    for spec in suite() {
        let built = (spec.build)(Scale::Tiny);
        let mut config = SystemConfig::new(dim_cgra::ArrayShape::config2(), 64, true);
        config.verify_configs = true;
        let mut system = System::new(Machine::load(&built.program), config);
        system.enable_commit_log();
        system
            .run(built.max_steps)
            .unwrap_or_else(|e| panic!("{}: {e:?}", spec.name));

        let opts = TranslatorOptions {
            shape: dim_cgra::ArrayShape::config2(),
            speculation: true,
            max_spec_blocks: 3,
            support_shifts: true,
        };
        for committed in system.commit_log() {
            let op_pcs: Vec<u32> = committed.ops().iter().map(|op| op.pc).collect();
            assert!(
                contains_region(&built.program, &opts, committed.entry_pc, &op_pcs),
                "{}: committed region at {:#010x} ({} ops) not statically predicted: {:x?}",
                spec.name,
                committed.entry_pc,
                op_pcs.len(),
                op_pcs
            );
        }
        assert_eq!(
            system.commit_log().len() as u64,
            system.stats().configs_built,
            "{}: commit log must mirror committed configurations",
            spec.name
        );
    }
}
