//! The static candidate set: every instruction chain the DIM translator
//! could merge into one configuration, computed from the binary alone.
//!
//! The walker mirrors the dynamic translator's `observe` loop exactly —
//! same placement calls against the same [`Configuration`] and
//! [`DependenceTable`] — but where the dynamic engine follows the one
//! path the program took (and extends over a branch only when the
//! bimodal predictor is saturated in the observed direction), the static
//! walker forks over *both* branch directions. Every region the dynamic
//! engine commits is therefore a prefix of some statically enumerated
//! path; [`contains_region`] checks exactly that, and the property tests
//! in this crate assert it for every workload.

use crate::walk::{decode_text, TextWalker};
use dim_cgra::{Configuration, SegmentBranch};
use dim_core::{live_in_sources, DependenceTable, TranslatorOptions};
use dim_mips::asm::Program;
use dim_mips::{FuClass, Instruction};
use std::collections::BTreeMap;

/// Safety bound on instructions per enumerated path. Real paths close
/// far earlier (array capacity or the speculation-depth limit).
const MAX_PATH_OPS: usize = 4096;

struct WalkState {
    pc: u32,
    config: Configuration,
    table: DependenceTable,
    depth: u8,
    ops: Vec<u32>,
}

/// Enumerates every translation path the dynamic engine could take from
/// a region starting at `entry`. Each path is the PC sequence of
/// operations placed into the configuration, in placement order
/// (speculated branches included).
pub fn candidate_paths(program: &Program, opts: &TranslatorOptions, entry: u32) -> Vec<Vec<u32>> {
    let insts = decode_text(program);
    let walker = TextWalker::new(program.text_base, &insts);

    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut stack = vec![WalkState {
        pc: entry,
        config: Configuration::new(entry, opts.shape),
        table: DependenceTable::new(),
        depth: 0,
        ops: Vec::new(),
    }];

    while let Some(mut state) = stack.pop() {
        loop {
            if state.ops.len() >= MAX_PATH_OPS {
                paths.push(state.ops);
                break;
            }
            let Some(inst) = walker.inst_at(state.pc) else {
                paths.push(state.ops);
                break;
            };
            let shift_excluded = !opts.support_shifts
                && matches!(
                    inst,
                    Instruction::Shift { .. } | Instruction::ShiftVar { .. }
                );
            if shift_excluded || inst.fu_class() == FuClass::Unsupported {
                paths.push(state.ops);
                break;
            }
            if inst.fu_class() == FuClass::Branch {
                if !(opts.speculation && state.depth + 1 < opts.max_spec_blocks) {
                    paths.push(state.ops);
                    break;
                }
                let min_row = state.table.min_row(&inst) as usize;
                if state
                    .config
                    .place(state.pc, inst, state.depth, min_row)
                    .is_err()
                {
                    paths.push(state.ops);
                    break;
                }
                for src in live_in_sources(&state.table, &inst) {
                    state.config.note_live_in(src);
                }
                state.ops.push(state.pc);
                let taken_pc = inst.branch_target(state.pc).expect("branch has a target");
                let fall_pc = state.pc.wrapping_add(4);
                // Fork: the dynamic engine follows whichever direction the
                // predictor saturates on; enumerate both.
                for taken in [true, false] {
                    let mut config = state.config.clone();
                    let branch = SegmentBranch {
                        pc: state.pc,
                        inst,
                        predicted_taken: taken,
                        taken_pc,
                        fall_pc,
                    };
                    config.finish_segment(state.depth, Some(branch), branch.predicted_pc());
                    stack.push(WalkState {
                        pc: branch.predicted_pc(),
                        config,
                        table: state.table.clone(),
                        depth: state.depth + 1,
                        ops: state.ops.clone(),
                    });
                }
                break;
            }
            // Plain operation: place, note interface, advance.
            let min_row = state.table.min_row(&inst) as usize;
            let Ok((row, _col)) = state.config.place(state.pc, inst, state.depth, min_row) else {
                paths.push(state.ops);
                break;
            };
            for src in live_in_sources(&state.table, &inst) {
                state.config.note_live_in(src);
            }
            state.table.record(&inst, row);
            for dst in inst.writes().iter() {
                state.config.note_writeback(dst, state.depth);
            }
            state.ops.push(state.pc);
            state.pc = state.pc.wrapping_add(4);
        }
    }
    paths
}

/// Whether a dynamically committed region — `entry` plus the PC list of
/// its placed operations — is a prefix of some statically enumerated
/// path from the same entry.
pub fn contains_region(
    program: &Program,
    opts: &TranslatorOptions,
    entry: u32,
    op_pcs: &[u32],
) -> bool {
    candidate_paths(program, opts, entry)
        .iter()
        .any(|path| path.len() >= op_pcs.len() && path[..op_pcs.len()] == *op_pcs)
}

/// The whole-binary candidate set: for each viable region entry, the
/// enumerated translation paths.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Entry PC → paths (operation PC sequences). Only entries with at
    /// least one path long enough to be worth caching (more than three
    /// merged operations) are retained.
    pub candidates: BTreeMap<u32, Vec<Vec<u32>>>,
}

impl CandidateSet {
    /// Number of viable region entries.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether no viable region exists.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Computes the candidate set for every possible region entry.
///
/// A dynamic region can open at any PC where the processor resumes
/// after a control transfer, a system effect, or an array invocation, so
/// every text PC is tried; entries whose best path would never be worth
/// caching are dropped.
pub fn compute_candidates(program: &Program, opts: &TranslatorOptions) -> CandidateSet {
    let base = program.text_base;
    let mut candidates = BTreeMap::new();
    for i in 0..program.text.len() {
        let entry = base + (i as u32) * 4;
        let paths = candidate_paths(program, opts, entry);
        if paths.iter().any(|p| p.len() > 3) {
            candidates.insert(entry, paths);
        }
    }
    CandidateSet { candidates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_cgra::ArrayShape;
    use dim_mips::asm::assemble;

    fn program(src: &str) -> Program {
        assemble(src).expect("assembles")
    }

    fn opts() -> TranslatorOptions {
        TranslatorOptions::new(ArrayShape::config2())
    }

    #[test]
    fn straightline_gives_single_path() {
        let p = program(
            "main: addu $t0, $a0, $a1
                   addu $t1, $t0, $a0
                   subu $t2, $t1, $a1
                   addu $v0, $t2, $t0
                   break 0",
        );
        let paths = candidate_paths(&p, &opts(), p.entry);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 4, "break closes the region after 4 ops");
        assert_eq!(paths[0][0], p.entry);
    }

    #[test]
    fn branch_forks_both_directions() {
        let p = program(
            "main: addu $t0, $a0, $a1
                   bnez $t0, over
                   addu $t1, $t0, $a0
             over: subu $v0, $t0, $a1
                   break 0",
        );
        let paths = candidate_paths(&p, &opts(), p.entry);
        assert!(paths.len() >= 2, "taken and fall-through paths: {paths:?}");
        let branch_pc = p.entry + 4;
        assert!(paths.iter().all(|path| path.contains(&branch_pc)));
    }

    #[test]
    fn speculation_off_stops_at_branch() {
        let p = program(
            "main: addu $t0, $a0, $a1
                   bnez $t0, main
                   break 0",
        );
        let mut o = opts();
        o.speculation = false;
        let paths = candidate_paths(&p, &o, p.entry);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 1, "branch closes the region: {paths:?}");
    }

    #[test]
    fn prefix_containment_accepts_prefixes_only() {
        let p = program(
            "main: addu $t0, $a0, $a1
                   addu $t1, $t0, $a0
                   subu $t2, $t1, $a1
                   addu $v0, $t2, $t0
                   break 0",
        );
        let o = opts();
        let full: Vec<u32> = (0..4).map(|i| p.entry + i * 4).collect();
        assert!(contains_region(&p, &o, p.entry, &full));
        assert!(contains_region(&p, &o, p.entry, &full[..2]));
        let skewed = [p.entry, p.entry + 8];
        assert!(!contains_region(&p, &o, p.entry, &skewed));
    }

    #[test]
    fn compute_candidates_finds_worthwhile_entries() {
        let p = program(
            "main: addu $t0, $a0, $a1
                   addu $t1, $t0, $a0
                   subu $t2, $t1, $a1
                   addu $v0, $t2, $t0
                   break 0",
        );
        let set = compute_candidates(&p, &opts());
        assert!(
            set.candidates.contains_key(&p.entry),
            "{:?}",
            set.candidates.keys()
        );
    }
}
