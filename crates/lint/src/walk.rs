//! Shared text-segment walking for every analysis in this crate.
//!
//! The candidate enumerator's branch-fork walk, the CFG builder, and
//! the stride prover's loop-body walk all need the same primitive —
//! "the decoded instruction at this PC, if it is inside text" — and
//! each used to carry its own copy. [`TextWalker`] is the one shared
//! implementation: a bounds-checked view over a decoded text segment
//! with a straight-line iterator for walking fall-through runs.

use dim_mips::asm::Program;
use dim_mips::{decode, Instruction};

/// Decodes a program's whole text segment; `None` marks words that do
/// not decode. The result is indexed by `(pc - text_base) / 4`.
pub fn decode_text(program: &Program) -> Vec<Option<Instruction>> {
    program.text.iter().map(|&w| decode(w).ok()).collect()
}

/// A bounds-checked view over a decoded text segment.
#[derive(Debug, Clone, Copy)]
pub struct TextWalker<'a> {
    text_base: u32,
    insts: &'a [Option<Instruction>],
}

impl<'a> TextWalker<'a> {
    /// Wraps a decoded text segment (see [`decode_text`]).
    pub fn new(text_base: u32, insts: &'a [Option<Instruction>]) -> TextWalker<'a> {
        TextWalker { text_base, insts }
    }

    /// Base address of the text segment.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// End address of the text segment (exclusive).
    pub fn text_end(&self) -> u32 {
        self.text_base + (self.insts.len() as u32) * 4
    }

    /// Whether `pc` addresses an instruction slot of the text segment.
    pub fn in_text(&self, pc: u32) -> bool {
        pc >= self.text_base && pc < self.text_end() && pc.is_multiple_of(4)
    }

    /// The decoded instruction at `pc`, if inside text and decodable.
    pub fn inst_at(&self, pc: u32) -> Option<Instruction> {
        if !self.in_text(pc) {
            return None;
        }
        self.insts[((pc - self.text_base) / 4) as usize]
    }

    /// Iterates `(pc, instruction)` from `entry` for at most `limit`
    /// instructions, stopping *after* yielding any control transfer or
    /// system instruction and stopping *before* an undecodable word or
    /// the end of text. This is the loop-body walk: a self-loop body is
    /// exactly one straight-line run ending at its back-edge branch.
    pub fn straight_line(
        &self,
        entry: u32,
        limit: usize,
    ) -> impl Iterator<Item = (u32, Instruction)> + 'a {
        let walker = *self;
        let mut pc = entry;
        let mut remaining = limit;
        let mut done = false;
        std::iter::from_fn(move || {
            if done || remaining == 0 {
                return None;
            }
            let inst = walker.inst_at(pc)?;
            let here = pc;
            remaining -= 1;
            pc = pc.wrapping_add(4);
            if inst.is_control() || matches!(inst, Instruction::Break { .. }) {
                done = true;
            }
            Some((here, inst))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::asm::assemble;

    #[test]
    fn inst_at_bounds_and_alignment() {
        let p = assemble("main: addu $t0, $a0, $a1\n break 0").unwrap();
        let insts = decode_text(&p);
        let w = TextWalker::new(p.text_base, &insts);
        assert!(w.inst_at(p.text_base).is_some());
        assert!(w.inst_at(p.text_base + 1).is_none(), "unaligned");
        assert!(w.inst_at(p.text_base.wrapping_sub(4)).is_none());
        assert!(w.inst_at(w.text_end()).is_none());
    }

    #[test]
    fn straight_line_stops_after_control() {
        let p = assemble(
            "main: addu $t0, $a0, $a1
                   addiu $t0, $t0, -1
                   bnez $t0, main
                   xor $v0, $t0, $t0
                   break 0",
        )
        .unwrap();
        let insts = decode_text(&p);
        let w = TextWalker::new(p.text_base, &insts);
        let run: Vec<u32> = w.straight_line(p.entry, 64).map(|(pc, _)| pc).collect();
        // Two ALU ops plus the branch, which ends the run.
        assert_eq!(run, vec![p.entry, p.entry + 4, p.entry + 8]);

        let capped: Vec<u32> = w.straight_line(p.entry, 2).map(|(pc, _)| pc).collect();
        assert_eq!(capped.len(), 2, "limit respected");
    }
}
