//! Register dataflow over the CFG: per-block liveness and reaching
//! definitions.
//!
//! Both analyses work over the 34 dense [`DataLoc`] slots (32 GPRs with
//! `$zero` excluded at the source, plus HI and LO). Liveness uses one
//! `u64` bitmask per block; reaching definitions use chunked bitsets
//! over global definition-site indices.

use crate::cfg::{Cfg, Terminator};
use dim_mips::{DataLoc, Instruction};

/// Number of dense dataflow locations (GPRs + HI + LO).
pub const NUM_LOCS: usize = 34;

/// Bitmask covering every dataflow location.
pub const ALL_LOCS: u64 = (1u64 << NUM_LOCS) - 1;

fn read_mask(inst: &Instruction) -> u64 {
    if matches!(inst, Instruction::Syscall) {
        // Syscalls consume machine state through a register convention the
        // dataflow model does not track; treat them as reading everything.
        return ALL_LOCS;
    }
    inst.reads()
        .iter()
        .fold(0u64, |m, loc| m | (1 << loc.dense_index()))
}

fn write_mask(inst: &Instruction) -> u64 {
    inst.writes()
        .iter()
        .fold(0u64, |m, loc| m | (1 << loc.dense_index()))
}

/// Per-block live-in / live-out register sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Locations live on entry to each block (indexed like `cfg.blocks`).
    pub live_in: Vec<u64>,
    /// Locations live on exit from each block.
    pub live_out: Vec<u64>,
}

/// Whether a block's exit leaves the analyzed region (indirect jump,
/// `break`, text end, undecodable word, or a direct target outside the
/// text segment) — everything must be assumed live/used past it.
fn exits_region(cfg: &Cfg, block_idx: usize) -> bool {
    let block = &cfg.blocks[block_idx];
    if block.term.is_unknown_exit() {
        return true;
    }
    let expected = match block.term {
        Terminator::Branch { .. } | Terminator::Call { .. } => 2,
        Terminator::Jump { .. } | Terminator::FallThrough { .. } => 1,
        _ => 0,
    };
    block.succs.len() < expected
}

/// Computes backward liveness to a fixpoint.
pub fn liveness(cfg: &Cfg) -> Liveness {
    let n = cfg.blocks.len();
    let mut use_mask = vec![0u64; n];
    let mut def_mask = vec![0u64; n];
    for (b, block) in cfg.blocks.iter().enumerate() {
        for (_, inst) in cfg.block_insts(block) {
            let Some(inst) = inst else { break };
            use_mask[b] |= read_mask(&inst) & !def_mask[b];
            def_mask[b] |= write_mask(&inst);
        }
    }

    let mut live_in = vec![0u64; n];
    let mut live_out = vec![0u64; n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut out = if exits_region(cfg, b) { ALL_LOCS } else { 0 };
            for &succ in &cfg.blocks[b].succs {
                if let Some(s) = cfg.block_at(succ) {
                    out |= live_in[s];
                }
            }
            let inp = use_mask[b] | (out & !def_mask[b]);
            if out != live_out[b] || inp != live_in[b] {
                live_out[b] = out;
                live_in[b] = inp;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// One register/HI/LO definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// PC of the defining instruction.
    pub pc: u32,
    /// Location defined.
    pub loc: DataLoc,
}

/// Reaching-definition analysis result: the global definition-site list
/// and, for each site, whether some execution path can observe it.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// All definition sites in program order.
    pub sites: Vec<DefSite>,
    /// `used[i]` — definition `sites[i]` reaches at least one read of its
    /// location (or an exit where everything must be assumed read).
    pub used: Vec<bool>,
}

#[derive(Clone, PartialEq, Eq)]
struct BitSet(Vec<u64>);

impl BitSet {
    fn new(n: usize) -> BitSet {
        BitSet(vec![0u64; n.div_ceil(64)])
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }
    fn union(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }
    fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1 << b) != 0)
                .map(move |b| w * 64 + b)
        })
    }
}

/// Computes reaching definitions and marks every definition that some
/// path can observe.
pub fn reaching_defs(cfg: &Cfg) -> ReachingDefs {
    // Enumerate definition sites and group them by location.
    let mut sites: Vec<DefSite> = Vec::new();
    let mut by_loc: Vec<Vec<usize>> = vec![Vec::new(); NUM_LOCS];
    for block in &cfg.blocks {
        for (pc, inst) in cfg.block_insts(block) {
            let Some(inst) = inst else { break };
            for loc in inst.writes().iter() {
                by_loc[loc.dense_index()].push(sites.len());
                sites.push(DefSite { pc, loc });
            }
        }
    }
    let n_sites = sites.len();
    let n_blocks = cfg.blocks.len();

    // Per-block gen (downward-exposed defs) and kill (all defs of written
    // locations).
    let mut gen = vec![BitSet::new(n_sites); n_blocks];
    let mut kill = vec![BitSet::new(n_sites); n_blocks];
    let mut site_cursor = 0usize;
    for (b, block) in cfg.blocks.iter().enumerate() {
        for (_, inst) in cfg.block_insts(block) {
            let Some(inst) = inst else { break };
            for loc in inst.writes().iter() {
                for &other in &by_loc[loc.dense_index()] {
                    kill[b].set(other);
                    gen[b].clear(other);
                }
                gen[b].set(site_cursor);
                site_cursor += 1;
            }
        }
    }

    // Forward fixpoint: in[b] = ∪ out[pred], out[b] = gen ∪ (in − kill).
    let preds = cfg.predecessors();
    let mut reach_in = vec![BitSet::new(n_sites); n_blocks];
    let mut reach_out = vec![BitSet::new(n_sites); n_blocks];
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n_blocks {
            let mut inp = BitSet::new(n_sites);
            for &p in &preds[b] {
                inp.union(&reach_out[p]);
            }
            let mut out = inp.clone();
            for (w, k) in out.0.iter_mut().zip(&kill[b].0) {
                *w &= !k;
            }
            out.union(&gen[b]);
            changed |= reach_in[b].union(&inp);
            if out != reach_out[b] {
                reach_out[b] = out;
                changed = true;
            }
        }
    }

    // Walk each block forward, marking definitions observed by reads.
    let mut used = vec![false; n_sites];
    let mut site_cursor = 0usize;
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut reach = reach_in[b].clone();
        for (_, inst) in cfg.block_insts(block) {
            let Some(inst) = inst else { break };
            if matches!(inst, Instruction::Syscall) {
                for s in reach.ones() {
                    used[s] = true;
                }
            } else {
                for loc in inst.reads().iter() {
                    for &s in &by_loc[loc.dense_index()] {
                        if reach.0[s / 64] & (1 << (s % 64)) != 0 {
                            used[s] = true;
                        }
                    }
                }
            }
            for loc in inst.writes().iter() {
                for &other in &by_loc[loc.dense_index()] {
                    reach.clear(other);
                }
                reach.set(site_cursor);
                site_cursor += 1;
            }
        }
        if exits_region(cfg, b) {
            for s in reach.ones() {
                used[s] = true;
            }
        }
    }

    ReachingDefs { sites, used }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::asm::assemble;
    use dim_mips::Reg;

    fn analyse(src: &str) -> (Cfg, Liveness, ReachingDefs) {
        let cfg = Cfg::build(&assemble(src).expect("assembles"));
        let live = liveness(&cfg);
        let defs = reaching_defs(&cfg);
        (cfg, live, defs)
    }

    fn bit(reg: Reg) -> u64 {
        1 << DataLoc::Gpr(reg).dense_index()
    }

    #[test]
    fn loop_counter_is_live_at_header() {
        let (cfg, live, _) = analyse(
            "main: li $s0, 4
             loop: addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        let header = cfg.block_at(cfg.text_base + 4).unwrap();
        assert_ne!(live.live_in[header] & bit(Reg::S0), 0);
    }

    #[test]
    fn dead_definition_is_not_marked_used() {
        let (_, _, defs) = analyse(
            "main: li $t0, 7
                   li $t0, 8
                   addu $v0, $t0, $t0
                   break 0",
        );
        let t0_defs: Vec<usize> = defs
            .sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.loc == DataLoc::Gpr(Reg::T0))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(t0_defs.len(), 2);
        assert!(!defs.used[t0_defs[0]], "overwritten def must be dead");
        assert!(defs.used[t0_defs[1]]);
    }

    #[test]
    fn defs_reaching_indirect_exit_count_as_used() {
        let (_, _, defs) = analyse(
            "main: li $v0, 1
                   jr $ra",
        );
        assert!(defs.used.iter().all(|&u| u));
    }
}
