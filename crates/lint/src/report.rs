//! Rendering: human-readable listings and machine-readable JSON for the
//! `dim lint` / `dim verify` / `dim prove` subcommands.

use crate::candidates::CandidateSet;
use crate::prove::{ProveReport, RegionOutcome};
use crate::LintReport;
use std::fmt::Write as _;

/// Schema version stamped into every `dim lint --json` document.
/// Consumers must reject documents carrying a different version — field
/// meanings may shift between schemas.
pub const LINT_SCHEMA_VERSION: u32 = 1;

/// Validates the `schema` stamp of a machine-readable lint document,
/// rejecting unknown versions (and pre-versioning documents that lack
/// the field entirely).
pub fn check_lint_schema(doc: &str) -> Result<(), String> {
    let value = dim_obs::parse_json(doc).map_err(|e| format!("not valid JSON: {e:?}"))?;
    match value.get("schema").and_then(dim_obs::JsonValue::as_u64) {
        Some(v) if v == LINT_SCHEMA_VERSION as u64 => Ok(()),
        Some(v) => Err(format!(
            "lint schema version {v} (this build understands {LINT_SCHEMA_VERSION})"
        )),
        None => Err("missing `schema` field".to_string()),
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a lint report as plain text, one diagnostic per line.
pub fn render_human(name: &str, report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{d}");
    }
    let _ = writeln!(
        out,
        "{name}: {} instructions, {} blocks ({} reachable) — {} error{}, {} warning{}, {} note{}{}",
        report.instructions,
        report.blocks,
        report.reachable_blocks,
        report.error_count(),
        plural(report.error_count()),
        report.warning_count(),
        plural(report.warning_count()),
        report.note_count(),
        plural(report.note_count()),
        if report.suppressed > 0 {
            format!(" ({} suppressed)", report.suppressed)
        } else {
            String::new()
        }
    );
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Renders a lint report as a JSON object.
pub fn render_json(name: &str, report: &LintReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":{LINT_SCHEMA_VERSION},\"workload\":\"{}\",\"instructions\":{},\"blocks\":{},\"reachable_blocks\":{},\"errors\":{},\"warnings\":{},\"notes\":{},\"suppressed\":{},\"clean\":{},\"diagnostics\":[",
        json_escape(name),
        report.instructions,
        report.blocks,
        report.reachable_blocks,
        report.error_count(),
        report.warning_count(),
        report.note_count(),
        report.suppressed,
        report.is_clean()
    );
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"pc\":{},\"message\":\"{}\"}}",
            d.code,
            d.severity,
            d.pc.map_or("null".to_string(), |pc| pc.to_string()),
            json_escape(&d.message)
        );
    }
    out.push_str("]}");
    out
}

/// Renders the static candidate set as plain text.
pub fn render_candidates_human(set: &CandidateSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} viable region entries:", set.len());
    for (entry, paths) in &set.candidates {
        let longest = paths.iter().map(Vec::len).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "  {entry:#010x}: {} path{}, longest merges {} instruction{}",
            paths.len(),
            plural(paths.len()),
            longest,
            plural(longest)
        );
    }
    out
}

/// Renders a prove report as plain text: one line per region with the
/// verdict, plus the stride table of every certified region.
pub fn render_prove_human(report: &ProveReport) -> String {
    let mut out = String::new();
    if report.regions.is_empty() {
        let _ = writeln!(out, "{}: no self-loop regions", report.workload);
        return out;
    }
    for region in &report.regions {
        match &region.outcome {
            RegionOutcome::Certified(cert) => {
                let _ = writeln!(
                    out,
                    "{}: {:#010x} len {:>3}  CERTIFIED  burst {} {}",
                    report.workload,
                    region.entry_pc,
                    region.len,
                    cert.burst,
                    match cert.trip_bound {
                        Some(t) => format!("(trip bound {t})"),
                        None => "(trip unbounded)".to_string(),
                    }
                );
                for a in &cert.accesses {
                    let _ = writeln!(
                        out,
                        "    {:#010x} {:>5} w{} {}",
                        a.pc,
                        a.kind.name(),
                        a.width,
                        match a.class {
                            dim_cgra::StreamClass::Affine { stride } =>
                                format!("affine stride {stride:+}"),
                            dim_cgra::StreamClass::Invariant => "invariant".to_string(),
                            dim_cgra::StreamClass::Unknown => "unknown".to_string(),
                        }
                    );
                }
            }
            RegionOutcome::Rejected { reason } => {
                let _ = writeln!(
                    out,
                    "{}: {:#010x} len {:>3}  rejected   {}",
                    report.workload, region.entry_pc, region.len, reason
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "{}: {} region{}, {} certificate{}",
        report.workload,
        report.regions.len(),
        plural(report.regions.len()),
        report.cert_count(),
        plural(report.cert_count())
    );
    out
}

/// Renders the static candidate set as a JSON object.
pub fn render_candidates_json(set: &CandidateSet) -> String {
    let mut out = String::from("{\"entries\":[");
    for (i, (entry, paths)) in set.candidates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"entry\":{entry},\"paths\":[");
        for (j, path) in paths.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let pcs: Vec<String> = path.iter().map(u32::to_string).collect();
            let _ = write!(out, "[{}]", pcs.join(","));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_program, LintOptions};
    use dim_mips::asm::assemble;

    fn sample_json() -> String {
        let program = assemble(
            "main: addu $v0, $a0, $a1
                   break 0",
        )
        .expect("assembles");
        let report = lint_program(&program, &LintOptions::default());
        render_json("sample", &report)
    }

    #[test]
    fn lint_json_is_schema_stamped() {
        let doc = sample_json();
        assert!(doc.starts_with("{\"schema\":1,"), "{doc}");
        check_lint_schema(&doc).expect("current schema accepted");
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let doc = sample_json();
        let skewed = doc.replacen("\"schema\":1", "\"schema\":2", 1);
        let err = check_lint_schema(&skewed).expect_err("future schema rejected");
        assert!(err.contains("schema version 2"), "{err}");
        let missing = doc.replacen("\"schema\":1,", "", 1);
        check_lint_schema(&missing).expect_err("pre-versioning document rejected");
    }

    #[test]
    fn prove_human_render_names_verdicts() {
        let program = assemble(
            "main: li $s0, 8
                   li $s1, 0x2000
             loop: lbu $t0, 0($s1)
                   addiu $s1, $s1, 1
                   addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        )
        .expect("assembles");
        let report = crate::prove::prove_program(&program, "unit");
        let text = render_prove_human(&report);
        assert!(text.contains("CERTIFIED"), "{text}");
        assert!(text.contains("affine stride +1"), "{text}");
        assert!(text.contains("1 certificate"), "{text}");
    }
}
