//! Rendering: human-readable listings and machine-readable JSON for the
//! `dim lint` / `dim verify` subcommands.

use crate::candidates::CandidateSet;
use crate::LintReport;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a lint report as plain text, one diagnostic per line.
pub fn render_human(name: &str, report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{d}");
    }
    let _ = writeln!(
        out,
        "{name}: {} instructions, {} blocks ({} reachable) — {} error{}, {} warning{}, {} note{}{}",
        report.instructions,
        report.blocks,
        report.reachable_blocks,
        report.error_count(),
        plural(report.error_count()),
        report.warning_count(),
        plural(report.warning_count()),
        report.note_count(),
        plural(report.note_count()),
        if report.suppressed > 0 {
            format!(" ({} suppressed)", report.suppressed)
        } else {
            String::new()
        }
    );
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Renders a lint report as a JSON object.
pub fn render_json(name: &str, report: &LintReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"workload\":\"{}\",\"instructions\":{},\"blocks\":{},\"reachable_blocks\":{},\"errors\":{},\"warnings\":{},\"notes\":{},\"suppressed\":{},\"clean\":{},\"diagnostics\":[",
        json_escape(name),
        report.instructions,
        report.blocks,
        report.reachable_blocks,
        report.error_count(),
        report.warning_count(),
        report.note_count(),
        report.suppressed,
        report.is_clean()
    );
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"pc\":{},\"message\":\"{}\"}}",
            d.code,
            d.severity,
            d.pc.map_or("null".to_string(), |pc| pc.to_string()),
            json_escape(&d.message)
        );
    }
    out.push_str("]}");
    out
}

/// Renders the static candidate set as plain text.
pub fn render_candidates_human(set: &CandidateSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} viable region entries:", set.len());
    for (entry, paths) in &set.candidates {
        let longest = paths.iter().map(Vec::len).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "  {entry:#010x}: {} path{}, longest merges {} instruction{}",
            paths.len(),
            plural(paths.len()),
            longest,
            plural(longest)
        );
    }
    out
}

/// Renders the static candidate set as a JSON object.
pub fn render_candidates_json(set: &CandidateSet) -> String {
    let mut out = String::from("{\"entries\":[");
    for (i, (entry, paths)) in set.candidates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"entry\":{entry},\"paths\":[");
        for (j, path) in paths.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let pcs: Vec<String> = path.iter().map(u32::to_string).collect();
            let _ = write!(out, "[{}]", pcs.join(","));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}
