//! # dim-lint
//!
//! Static analysis for the DIM reproduction, in two passes:
//!
//! 1. **Binary analyzer** — reconstructs the control-flow graph of an
//!    assembled workload image ([`cfg`]), runs register liveness and
//!    reaching-definitions over it ([`dataflow`]), and reports a
//!    catalogue of structural errors, delay-slot portability warnings,
//!    and performance notes ([`lints`]). It also enumerates the *static
//!    candidate set* ([`candidates`]) — every instruction chain the
//!    dynamic translator could merge — which the property tests use to
//!    prove that every dynamically committed region is a prefix of a
//!    statically predicted one.
//! 2. **Configuration verifier** — re-exported from
//!    [`dim_cgra::verify`], proving translated configurations and
//!    `.dimrc` snapshot contents satisfy the array's structural
//!    invariants (bounds, dependence order, write-port exclusivity,
//!    writeback consistency).
//! 3. **Stride/alias prover** ([`prove`]) — an abstract-interpretation
//!    pass over the CFG that classifies every memory access in a
//!    self-loop as affine, invariant, or unknown, runs a stride-based
//!    dependence test, bounds trip counts, and emits versioned,
//!    checksummed *streaming certificates*
//!    ([`dim_cgra::StreamingCert`]) that the translator consults at
//!    commit time to tag rcache entries `stream_ok(K)`.
//!
//! The CLI front-ends are `dim lint`, `dim verify` and `dim prove`.

#![warn(missing_docs)]

pub mod candidates;
pub mod cfg;
pub mod dataflow;
pub mod lints;
pub mod prove;
pub mod report;
pub mod walk;

pub use dim_cgra::verify::{verify_config, Violation, ViolationKind};

use dim_mips::asm::Program;
use lints::{Diagnostic, Severity};

/// Analysis policy.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Diagnostic codes to suppress (exact match, e.g. `"W104"`).
    /// Suppressed findings are counted but removed from the report.
    pub allow: Vec<String>,
}

/// The outcome of linting one program.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Findings that survived the allowlist, sorted by PC.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of findings removed by the allowlist.
    pub suppressed: usize,
    /// Total basic blocks.
    pub blocks: usize,
    /// Blocks reachable from the entry point.
    pub reachable_blocks: usize,
    /// Instruction slots in the text segment.
    pub instructions: usize,
}

impl LintReport {
    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of unsuppressed errors.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of unsuppressed warnings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of unsuppressed notes.
    pub fn note_count(&self) -> usize {
        self.count(Severity::Note)
    }

    /// Whether the program passes the gate: no unsuppressed errors or
    /// warnings (notes never gate).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0 && self.warning_count() == 0
    }
}

/// Runs the full binary-analysis pass over an assembled program.
pub fn lint_program(program: &Program, opts: &LintOptions) -> LintReport {
    let graph = cfg::Cfg::build(program);
    let all = lints::run_lints(&graph, program);
    let (kept, dropped): (Vec<Diagnostic>, Vec<Diagnostic>) = all
        .into_iter()
        .partition(|d| !opts.allow.iter().any(|code| code == d.code));
    LintReport {
        diagnostics: kept,
        suppressed: dropped.len(),
        reachable_blocks: graph.blocks.iter().filter(|b| b.reachable).count(),
        blocks: graph.blocks.len(),
        instructions: graph.insts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::asm::assemble;

    fn lint(src: &str) -> LintReport {
        lint_program(&assemble(src).expect("assembles"), &LintOptions::default())
    }

    #[test]
    fn clean_program_is_clean() {
        let report = lint(
            "main: li   $a0, 3
                   li   $a1, 4
                   addu $v0, $a0, $a1
                   break 0",
        );
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.error_count(), 0);
    }

    #[test]
    fn unreachable_code_warns() {
        let report = lint(
            "main: j end
             dead: li $t0, 1
             end:  break 0",
        );
        assert!(!report.is_clean());
        assert!(report.diagnostics.iter().any(|d| d.code == "W101"));
    }

    #[test]
    fn zero_write_warns_but_nop_does_not() {
        let with_zero = lint(
            "main: addu $zero, $a0, $a1
                   break 0",
        );
        assert!(with_zero.diagnostics.iter().any(|d| d.code == "W103"));
        let with_nop = lint(
            "main: nop
                   break 0",
        );
        assert!(
            !with_nop.diagnostics.iter().any(|d| d.code == "W103"),
            "{:?}",
            with_nop.diagnostics
        );
    }

    #[test]
    fn control_in_delay_slot_warns() {
        let report = lint(
            "main: bnez $a0, out
                   j out
             out:  break 0",
        );
        assert!(
            report.diagnostics.iter().any(|d| d.code == "W102"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn load_use_stall_noted() {
        let report = lint(
            "main: lw   $t0, 0($a0)
                   addu $v0, $t0, $a1
                   break 0",
        );
        assert!(report.diagnostics.iter().any(|d| d.code == "N201"));
        // Notes alone do not fail the gate.
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn allowlist_suppresses_and_counts() {
        let opts = LintOptions {
            allow: vec!["W101".to_string()],
        };
        let program = assemble(
            "main: j end
             dead: li $t0, 1
             end:  break 0",
        )
        .unwrap();
        let report = lint_program(&program, &opts);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressed, 1);
    }
}
