//! The diagnostic catalogue.
//!
//! Errors (`E0xx`) are structural defects: the binary cannot execute the
//! flagged path correctly on any target. Warnings (`W1xx`) are
//! portability or hygiene defects — the program runs on this simulator
//! (which has no architectural branch delay slots) but would diverge or
//! waste encoding space on delay-slot MIPS hardware. Notes (`N2xx`) are
//! performance observations that never gate CI.

use crate::cfg::{Cfg, Terminator};
use crate::dataflow::{liveness, reaching_defs};
use dim_mips::asm::Program;
use dim_mips::{DataLoc, Instruction, Reg};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Performance observation; informational only.
    Note,
    /// Portability or hygiene defect.
    Warning,
    /// Structural defect.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Catalogue code (`E001`, `W103`, ...).
    pub code: &'static str,
    /// Severity class implied by the code.
    pub severity: Severity,
    /// PC the finding anchors to, when it has one.
    pub pc: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pc {
            Some(pc) => write!(
                f,
                "{} [{}] at {:#010x}: {}",
                self.severity, self.code, pc, self.message
            ),
            None => write!(f, "{} [{}]: {}", self.severity, self.code, self.message),
        }
    }
}

fn diag(code: &'static str, severity: Severity, pc: u32, message: String) -> Diagnostic {
    Diagnostic {
        code,
        severity,
        pc: Some(pc),
        message,
    }
}

fn loc_name(loc: DataLoc) -> String {
    match loc {
        DataLoc::Gpr(r) => format!("${}", r.abi_name()),
        DataLoc::Hi => "HI".into(),
        DataLoc::Lo => "LO".into(),
    }
}

/// The control transfer's statically known destination, if any.
fn known_target(term: &Terminator) -> Option<(u32, u32)> {
    match *term {
        Terminator::Branch { pc, taken, .. } => Some((pc, taken)),
        Terminator::Jump { pc, target } => Some((pc, target)),
        Terminator::Call { pc, target, .. } => Some((pc, target)),
        _ => None,
    }
}

/// Runs the full catalogue over a reconstructed CFG.
pub fn run_lints(cfg: &Cfg, program: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let live = liveness(cfg);
    let defs = reaching_defs(cfg);

    for block in &cfg.blocks {
        if !block.reachable {
            // W101: unreachable block (covers any undecodable words inside
            // it too — data placed in text shows up here, not as E001).
            out.push(diag(
                "W101",
                Severity::Warning,
                block.start,
                format!(
                    "block of {} instruction{} is unreachable from the entry point",
                    block.len,
                    if block.len == 1 { "" } else { "s" }
                ),
            ));
            continue;
        }

        // E001: undecodable word on a reachable path.
        if let Terminator::Undecodable { pc } = block.term {
            let word = program.text[((pc - cfg.text_base) / 4) as usize];
            out.push(diag(
                "E001",
                Severity::Error,
                pc,
                format!("word {word:#010x} on a reachable path does not decode"),
            ));
        }

        // E002: direct control transfer leaving the text segment.
        if let Some((pc, target)) = known_target(&block.term) {
            if !cfg.in_text(target) {
                out.push(diag(
                    "E002",
                    Severity::Error,
                    pc,
                    format!(
                        "transfer target {target:#010x} is outside the text segment ({:#010x}..{:#010x})",
                        cfg.text_base,
                        cfg.text_end()
                    ),
                ));
            }
        }

        // E003: reachable flow off the end of the text segment.
        let falls_off = match block.term {
            Terminator::TextEnd => Some(cfg.text_end().wrapping_sub(4)),
            Terminator::Branch { pc, fall, .. } if !cfg.in_text(fall) => Some(pc),
            Terminator::Call { pc, fall, .. } if !cfg.in_text(fall) => Some(pc),
            _ => None,
        };
        if let Some(pc) = falls_off {
            out.push(diag(
                "E003",
                Severity::Error,
                pc,
                "execution can flow past the end of the text segment without a terminating transfer".into(),
            ));
        }

        let insts: Vec<(u32, Option<Instruction>)> = cfg.block_insts(block).collect();
        for (i, &(pc, inst)) in insts.iter().enumerate() {
            let Some(inst) = inst else { break };

            // W103: write whose encoded destination is $zero (discarded),
            // excluding the canonical NOP encoding.
            if inst.dest_gpr() == Some(Reg::ZERO) && !inst.is_nop() {
                out.push(diag(
                    "W103",
                    Severity::Warning,
                    pc,
                    format!("`{inst}` writes $zero; the result is discarded"),
                ));
            }

            // N201: load feeding a use in the very next slot — the
            // pipeline's one-instruction load-use hazard window stalls.
            if matches!(
                inst,
                Instruction::Load { .. } | Instruction::LoadUnaligned { .. }
            ) {
                if let Some(rt) = inst.dest_gpr() {
                    if let Some(&(next_pc, Some(next))) = insts.get(i + 1) {
                        if next.reads().contains(DataLoc::Gpr(rt)) {
                            out.push(diag(
                                "N201",
                                Severity::Note,
                                next_pc,
                                format!(
                                    "consumes ${} in the slot after its load at {pc:#010x}; costs a load-use stall cycle",
                                    rt.abi_name()
                                ),
                            ));
                        }
                    }
                }
            }
        }

        // Delay-slot portability checks anchor on the transfer's slot
        // instruction (pc + 4), which may open the next block.
        if let Some(trans_pc) = match block.term {
            Terminator::Branch { pc, .. }
            | Terminator::Jump { pc, .. }
            | Terminator::Call { pc, .. }
            | Terminator::Indirect { pc, .. } => Some(pc),
            _ => None,
        } {
            let slot_pc = trans_pc.wrapping_add(4);
            if let Some(slot) = cfg.inst_at(slot_pc) {
                // W102: control transfer in the would-be delay slot —
                // unpredictable on delay-slot hardware.
                if slot.is_control() {
                    out.push(diag(
                        "W102",
                        Severity::Warning,
                        slot_pc,
                        format!(
                            "control transfer sits in the delay slot of the transfer at {trans_pc:#010x}; behaviour is unpredictable on delay-slot MIPS"
                        ),
                    ));
                }

                // N203: slot definition live at the transfer's known
                // target. Delay-slot hardware executes the slot before the
                // target; this simulator does not — the two architectures
                // observe different values. A note, not a warning: every
                // workload in this suite is written for the no-delay-slot
                // pipeline, so the divergence is expected and this only
                // inventories where re-porting to real MIPS would need a
                // slot fill or reorder.
                if let Some((_, target)) = known_target(&block.term) {
                    if let Some(tb) = cfg.block_at(target) {
                        let writes: Vec<DataLoc> = slot.writes().iter().collect();
                        for loc in writes {
                            if live.live_in[tb] & (1 << loc.dense_index()) != 0 {
                                out.push(diag(
                                    "N203",
                                    Severity::Note,
                                    slot_pc,
                                    format!(
                                        "defines {} in the delay slot of {trans_pc:#010x} while it is live at the taken target {target:#010x}; delay-slot hardware would execute the definition before the target",
                                        loc_name(loc)
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    // N202: definitions no execution path observes.
    let reachable_pcs: std::collections::HashSet<u32> = cfg
        .blocks
        .iter()
        .filter(|b| b.reachable)
        .flat_map(|b| cfg.block_insts(b).map(|(pc, _)| pc))
        .collect();
    for (site, &used) in defs.sites.iter().zip(&defs.used) {
        if used || !reachable_pcs.contains(&site.pc) {
            continue;
        }
        let inst = cfg.inst_at(site.pc).expect("def site decodes");
        if inst.is_nop() {
            continue;
        }
        out.push(diag(
            "N202",
            Severity::Note,
            site.pc,
            format!("value of {} defined here is never used", loc_name(site.loc)),
        ));
    }

    out.sort_by_key(|d| (d.pc.unwrap_or(0), d.code));
    out
}
