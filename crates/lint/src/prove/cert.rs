//! Certificate assembly: turning a proven region into a
//! [`StreamingCert`] that passes [`dim_cgra::verify_cert`] by
//! construction.

use super::accesses::ClassifiedAccess;
use super::depend::burst_for;
use super::loops::SelfLoop;
use dim_cgra::{verify_cert, StreamAccess, StreamAccessKind, StreamingCert, STREAM_CERT_VERSION};

/// Builds the certificate for a region whose body analysis and
/// dependence test both succeeded.
///
/// The caller guarantees the claim; this function only shapes it. A
/// debug assertion cross-checks the result against the structural
/// verifier so prover and verifier can never drift apart silently.
pub fn build_cert(
    workload: &str,
    region: &SelfLoop,
    accesses: &[ClassifiedAccess],
    trip_bound: Option<u64>,
) -> StreamingCert {
    let cert = StreamingCert {
        version: STREAM_CERT_VERSION,
        workload: workload.to_string(),
        entry_pc: region.entry,
        len: region.len as u32,
        accesses: accesses
            .iter()
            .map(|a| StreamAccess {
                pc: a.pc,
                kind: if a.is_store {
                    StreamAccessKind::Store
                } else {
                    StreamAccessKind::Load
                },
                width: a.width,
                class: a.class,
            })
            .collect(),
        burst: burst_for(trip_bound),
        trip_bound,
    };
    debug_assert!(
        verify_cert(&cert).is_empty(),
        "prover emitted a cert the verifier rejects: {:?}",
        verify_cert(&cert)
    );
    cert
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prove::accesses::analyze_body;
    use dim_mips::asm::assemble;
    use dim_mips::Instruction;

    #[test]
    fn built_cert_verifies_and_round_trips() {
        let p = assemble(
            "loop: lbu $t0, 0($s1)
                   addu $s3, $s3, $t0
                   addiu $s1, $s1, 1
                   addiu $s0, $s0, -1
                   bnez $s0, loop",
        )
        .expect("assembles");
        let body: Vec<(u32, Instruction)> = p
            .text
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                (
                    p.text_base + (i as u32) * 4,
                    dim_mips::decode(w).expect("decodes"),
                )
            })
            .collect();
        let analysis = analyze_body(&body).expect("analyzes");
        let region = SelfLoop {
            block: 0,
            entry: p.text_base,
            len: body.len(),
            branch_pc: p.text_base + 16,
        };
        let cert = build_cert("unit", &region, &analysis.accesses, Some(64));
        assert!(verify_cert(&cert).is_empty());
        let back = StreamingCert::parse_json(&cert.to_json()).expect("round-trips");
        assert_eq!(back, cert);
        assert_eq!(back.burst, 16, "trip 64 caps at STREAM_BURST_CAP");
    }
}
