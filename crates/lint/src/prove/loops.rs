//! Self-loop discovery and loop-entry constant recovery.
//!
//! The prover targets the same region shape the dynamic translator
//! profits from most: a *self-loop* — one basic block whose closing
//! conditional branch targets its own first instruction. The body is a
//! single straight-line run, so one abstract pass over it yields the
//! exact per-iteration recurrence of every register.
//!
//! Trip-count bounding additionally needs the *concrete* register state
//! at first loop entry. [`entry_env`] recovers what is statically
//! certain of it by walking the unique-predecessor chain leading into
//! the header and executing those blocks through the poisoning
//! [`ConcreteEnv`] interpreter.

use super::lattice::ConcreteEnv;
use crate::cfg::{Cfg, Terminator};
use dim_mips::Instruction;

/// How many predecessor blocks the entry-constant walk may traverse.
/// Chains into a hot loop are short (argument setup); the cap only
/// bounds pathological graphs.
const MAX_ENTRY_CHAIN: usize = 8;

/// One discovered self-loop region.
#[derive(Debug, Clone)]
pub struct SelfLoop {
    /// Index of the header/body block in the CFG.
    pub block: usize,
    /// First PC of the body.
    pub entry: u32,
    /// Instructions in the body, including the back-edge branch.
    pub len: usize,
    /// PC of the back-edge branch.
    pub branch_pc: u32,
}

/// Finds every reachable self-loop: a block whose terminator is a
/// conditional branch back to the block's own start.
pub fn find_self_loops(cfg: &Cfg) -> Vec<SelfLoop> {
    cfg.blocks
        .iter()
        .enumerate()
        .filter_map(|(i, block)| {
            if !block.reachable {
                return None;
            }
            let Terminator::Branch { pc, taken, .. } = block.term else {
                return None;
            };
            (taken == block.start).then_some(SelfLoop {
                block: i,
                entry: block.start,
                len: block.len,
                branch_pc: pc,
            })
        })
        .collect()
}

/// Recovers the statically certain part of the register state at first
/// entry to `header` by executing the unique-predecessor chain leading
/// into it.
///
/// The walk steps backwards from the header while each block has
/// exactly one reachable predecessor besides the header's own
/// back-edge, up to [`MAX_ENTRY_CHAIN`] blocks, then executes the chain
/// forwards through [`ConcreteEnv`]. Two stops keep this sound:
///
/// - The walk stops *before* any block that is its own predecessor —
///   executing another loop's body exactly once would compute the state
///   after one iteration, not the state on the path into our loop.
/// - Everything before the chain is unknown, and [`ConcreteEnv`]
///   poisons through unknowns, so a truncated chain only loses
///   precision, never soundness.
pub fn entry_env(cfg: &Cfg, header: usize) -> ConcreteEnv {
    let preds = cfg.predecessors();
    let mut chain: Vec<usize> = Vec::new();
    let mut cur = header;
    while chain.len() < MAX_ENTRY_CHAIN {
        let into: Vec<usize> = preds[cur]
            .iter()
            .copied()
            .filter(|&p| p != header && cfg.blocks[p].reachable)
            .collect();
        let [prev] = into[..] else {
            break; // join point, or chain start — state before is unknown
        };
        if preds[prev].contains(&prev) {
            break; // `prev` is itself a self-loop header: do not execute it
        }
        chain.push(prev);
        cur = prev;
    }
    chain.reverse();

    let mut env = ConcreteEnv::new();
    for &b in &chain {
        for (_, inst) in cfg.block_insts(&cfg.blocks[b]) {
            let Some(inst) = inst else {
                // Undecodable word mid-chain: drop all knowledge.
                return ConcreteEnv::new();
            };
            env.step(&inst);
        }
    }
    env
}

/// Simulates the loop body from `entry` concretely until the back-edge
/// branch falls through, the state becomes undecidable, or `cap`
/// iterations pass. Returns the number of body executions when the
/// exit was statically decided.
pub fn trip_bound(body: &[(u32, Instruction)], entry: &ConcreteEnv, cap: u64) -> Option<u64> {
    let mut env = entry.clone();
    let mut trips = 0u64;
    while trips < cap {
        trips += 1;
        let (_, branch) = body.last()?;
        for (_, inst) in &body[..body.len() - 1] {
            env.step(inst);
        }
        let taken = env.branch_taken(branch)?;
        env.step(branch);
        if !taken {
            return Some(trips);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::asm::assemble;
    use dim_mips::{DataLoc, Reg};

    fn cfg_of(src: &str) -> Cfg {
        Cfg::build(&assemble(src).expect("assembles"))
    }

    fn body_of(cfg: &Cfg, l: &SelfLoop) -> Vec<(u32, Instruction)> {
        cfg.block_insts(&cfg.blocks[l.block])
            .map(|(pc, i)| (pc, i.expect("decodes")))
            .collect()
    }

    #[test]
    fn finds_counted_self_loop() {
        let cfg = cfg_of(
            "main: li $s0, 10
             loop: addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        let loops = find_self_loops(&cfg);
        assert_eq!(loops.len(), 1, "{loops:?}");
        assert_eq!(loops[0].entry, cfg.text_base + 4);
        assert_eq!(loops[0].len, 2);
    }

    #[test]
    fn multi_block_loop_is_not_a_self_loop() {
        let cfg = cfg_of(
            "main: li $s0, 10
             loop: bnez $s0, body
                   break 0
             body: addiu $s0, $s0, -1
                   j loop",
        );
        assert!(find_self_loops(&cfg).is_empty());
    }

    #[test]
    fn entry_chain_recovers_constants() {
        let cfg = cfg_of(
            "main: li $s0, 10
                   li $s1, 0x2000
             loop: addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        let l = &find_self_loops(&cfg)[0];
        let env = entry_env(&cfg, l.block);
        assert_eq!(env.get(DataLoc::Gpr(Reg::S0)), Some(10));
        assert_eq!(env.get(DataLoc::Gpr(Reg::S1)), Some(0x2000));
    }

    #[test]
    fn entry_chain_stops_before_another_self_loop() {
        // The inner `prep` loop runs 5 times before `loop` starts;
        // executing its body once would see s1 == 4, not 0. The chain
        // walk must stop at it and leave s1 unknown, keeping s0 = 10
        // from the block after it.
        let cfg = cfg_of(
            "main: li $s1, 5
             prep: addiu $s1, $s1, -1
                   bnez $s1, prep
                   li $s0, 10
             loop: addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        let loops = find_self_loops(&cfg);
        let l = loops
            .iter()
            .find(|l| l.len == 2 && l.entry > cfg.text_base + 8);
        let l = l.expect("outer loop found");
        let env = entry_env(&cfg, l.block);
        assert_eq!(env.get(DataLoc::Gpr(Reg::S0)), Some(10));
        assert_eq!(env.get(DataLoc::Gpr(Reg::S1)), None, "not simulated");
    }

    #[test]
    fn trip_bound_counts_exactly() {
        let cfg = cfg_of(
            "main: li $s0, 10
             loop: addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        let l = &find_self_loops(&cfg)[0];
        let env = entry_env(&cfg, l.block);
        let body = body_of(&cfg, l);
        assert_eq!(trip_bound(&body, &env, 1 << 20), Some(10));
    }

    #[test]
    fn trip_bound_unknown_when_counter_is_loaded() {
        let cfg = cfg_of(
            "main: lw $s0, 0($a0)
             loop: addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        let l = &find_self_loops(&cfg)[0];
        let env = entry_env(&cfg, l.block);
        let body = body_of(&cfg, l);
        assert_eq!(trip_bound(&body, &env, 1 << 20), None);
    }

    #[test]
    fn trip_bound_respects_cap() {
        let cfg = cfg_of(
            "main: li $s0, 1000
             loop: addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        let l = &find_self_loops(&cfg)[0];
        let env = entry_env(&cfg, l.block);
        let body = body_of(&cfg, l);
        assert_eq!(trip_bound(&body, &env, 100), None, "cap hit");
    }
}
