//! Loop-body abstract interpretation and access classification.
//!
//! One pass of [`StrideEnv`] over a self-loop body yields, per memory
//! instruction, its address as a linear expression over loop-entry
//! register values, and, per register, its per-iteration recurrence.
//! Combining the two classifies each access into the certificate
//! vocabulary ([`StreamClass`]): *affine* when every register in the
//! address expression is affine-inductive (stride = Σ coeffᵢ·deltaᵢ,
//! mod 2³²), *invariant* when that stride is zero, *unknown* otherwise.

use super::lattice::{wrap32, AbsVal, LinExpr, StrideEnv};
use dim_cgra::StreamClass;
use dim_mips::{DataLoc, Instruction};

/// One memory access of a loop body, classified.
#[derive(Debug, Clone)]
pub struct ClassifiedAccess {
    /// PC of the memory instruction.
    pub pc: u32,
    /// Whether it writes memory.
    pub is_store: bool,
    /// Access width in bytes.
    pub width: u32,
    /// Address as a linear expression at the access point, when known.
    pub addr: Option<LinExpr>,
    /// Certificate classification.
    pub class: StreamClass,
}

/// Everything the dependence test needs from one body pass.
#[derive(Debug, Clone)]
pub struct BodyAnalysis {
    /// Classified accesses in PC order.
    pub accesses: Vec<ClassifiedAccess>,
    /// Per-iteration delta per dense [`DataLoc`] index; `None` where the
    /// location does not recur affinely.
    pub deltas: Vec<Option<i64>>,
}

/// Why a body cannot be analyzed at all (distinct from "analyzed, but
/// the dependence test failed").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BodyReject {
    /// A `syscall` sits in the body; its memory behavior is unmodeled.
    Syscall {
        /// PC of the syscall.
        pc: u32,
    },
    /// A call in the body would leave the region every iteration.
    Call {
        /// PC of the call.
        pc: u32,
    },
}

impl std::fmt::Display for BodyReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BodyReject::Syscall { pc } => write!(f, "syscall in body at {pc:#x}"),
            BodyReject::Call { pc } => write!(f, "call in body at {pc:#x}"),
        }
    }
}

/// Runs the abstract interpreter over one self-loop body (the closing
/// branch included) and classifies every memory access.
///
/// `syscall` anywhere in the body is a hard reject: it reads and writes
/// memory through a channel the stride domain cannot see, so no
/// certificate may cover it. (The CFG does not end blocks at syscalls —
/// they are register-local from its perspective — hence the explicit
/// scan here.)
pub fn analyze_body(body: &[(u32, Instruction)]) -> Result<BodyAnalysis, BodyReject> {
    let mut env = StrideEnv::entry();
    let mut raw = Vec::new();
    for &(pc, inst) in body {
        match inst {
            Instruction::Syscall => return Err(BodyReject::Syscall { pc }),
            Instruction::Jal { .. } | Instruction::Jalr { .. } => {
                return Err(BodyReject::Call { pc })
            }
            _ => {}
        }
        if let Some(access) = env.step(&inst) {
            raw.push((pc, access));
        }
    }
    let deltas = env.recurrences();
    let accesses = raw
        .into_iter()
        .map(|(pc, a)| {
            let (addr, class) = match &a.addr {
                AbsVal::Lin(e) => (Some(e.clone()), classify(e, &deltas)),
                AbsVal::Unknown => (None, StreamClass::Unknown),
            };
            ClassifiedAccess {
                pc,
                is_store: a.is_store,
                width: a.width,
                addr,
                class,
            }
        })
        .collect();
    Ok(BodyAnalysis { accesses, deltas })
}

/// The per-iteration address delta of a linear address expression, when
/// every register it mentions is affine-inductive.
pub fn expr_stride(addr: &LinExpr, deltas: &[Option<i64>]) -> Option<i64> {
    let mut stride = 0i64;
    for (&loc, &coeff) in &addr.terms {
        let delta = deltas[loc.dense_index()]?;
        stride = stride.wrapping_add(coeff.wrapping_mul(delta));
    }
    Some(wrap32(stride))
}

fn classify(addr: &LinExpr, deltas: &[Option<i64>]) -> StreamClass {
    match expr_stride(addr, deltas) {
        Some(0) => StreamClass::Invariant,
        Some(d) => StreamClass::Affine { stride: d as i32 },
        None => StreamClass::Unknown,
    }
}

/// Convenience: the dense index of a [`DataLoc`] (re-exported for the
/// property tests, which cross-check deltas against dynamic runs).
pub fn delta_of(analysis: &BodyAnalysis, loc: DataLoc) -> Option<i64> {
    analysis.deltas[loc.dense_index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::asm::assemble;
    use dim_mips::{decode, Reg};

    fn body_of(src: &str) -> Vec<(u32, Instruction)> {
        let p = assemble(src).expect("assembles");
        p.text
            .iter()
            .enumerate()
            .map(|(i, &w)| (p.text_base + (i as u32) * 4, decode(w).expect("decodes")))
            .collect()
    }

    #[test]
    fn byte_scan_loop_classifies_affine() {
        let body = body_of(
            "loop: lbu $t0, 0($s1)
                   addu $s3, $s3, $t0
                   addiu $s1, $s1, 1
                   addiu $s0, $s0, -1
                   bnez $s0, loop",
        );
        let analysis = analyze_body(&body).expect("analyzes");
        assert_eq!(analysis.accesses.len(), 1);
        let a = &analysis.accesses[0];
        assert!(!a.is_store);
        assert_eq!(a.class, StreamClass::Affine { stride: 1 });
        assert_eq!(delta_of(&analysis, DataLoc::Gpr(Reg::S1)), Some(1));
        assert_eq!(delta_of(&analysis, DataLoc::Gpr(Reg::S0)), Some(-1));
        assert_eq!(
            delta_of(&analysis, DataLoc::Gpr(Reg::S3)),
            None,
            "accumulator absorbs a loaded value"
        );
    }

    #[test]
    fn table_lookup_is_unknown() {
        // crc32's shape: an affine byte load plus a data-dependent
        // table load.
        let body = body_of(
            "loop: lbu $t0, 0($s1)
                   sll $t1, $t0, 2
                   addu $t1, $t1, $s2
                   lw $t2, 0($t1)
                   addiu $s1, $s1, 1
                   addiu $s0, $s0, -1
                   bnez $s0, loop",
        );
        let analysis = analyze_body(&body).expect("analyzes");
        assert_eq!(analysis.accesses.len(), 2);
        assert_eq!(
            analysis.accesses[0].class,
            StreamClass::Affine { stride: 1 }
        );
        assert_eq!(analysis.accesses[1].class, StreamClass::Unknown);
    }

    #[test]
    fn invariant_pointer_is_invariant() {
        let body = body_of(
            "loop: lw $t0, 0($s2)
                   addiu $s0, $s0, -1
                   bnez $s0, loop",
        );
        let analysis = analyze_body(&body).expect("analyzes");
        assert_eq!(analysis.accesses[0].class, StreamClass::Invariant);
    }

    #[test]
    fn negative_stride_store() {
        let body = body_of(
            "loop: sw $t0, 0($s1)
                   addiu $s1, $s1, -4
                   addiu $s0, $s0, -1
                   bnez $s0, loop",
        );
        let analysis = analyze_body(&body).expect("analyzes");
        let a = &analysis.accesses[0];
        assert!(a.is_store);
        assert_eq!(a.class, StreamClass::Affine { stride: -4 });
    }

    #[test]
    fn syscall_rejects_body() {
        let body = body_of(
            "loop: syscall
                   addiu $s0, $s0, -1
                   bnez $s0, loop",
        );
        match analyze_body(&body) {
            Err(BodyReject::Syscall { .. }) => {}
            other => panic!("expected syscall reject, got {other:?}"),
        }
    }

    #[test]
    fn non_affine_induction_is_unknown() {
        // The pointer doubles each iteration: linear in-body but not an
        // affine recurrence, so the access must classify unknown.
        let body = body_of(
            "loop: lw $t0, 0($s1)
                   addu $s1, $s1, $s1
                   addiu $s0, $s0, -1
                   bnez $s0, loop",
        );
        let analysis = analyze_body(&body).expect("analyzes");
        assert_eq!(analysis.accesses[0].class, StreamClass::Unknown);
        assert_eq!(delta_of(&analysis, DataLoc::Gpr(Reg::S1)), None);
    }
}
