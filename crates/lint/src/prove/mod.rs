//! `dim-prove`: the static stride/alias prover.
//!
//! Pipeline, per program:
//!
//! 1. [`loops::find_self_loops`] — every reachable single-block loop.
//! 2. [`accesses::analyze_body`] — abstract interpretation over the
//!    body, classifying each load/store as affine / invariant /
//!    unknown ([`lattice`]).
//! 3. [`depend::check_dependences`] — stride-interval alias test: no
//!    store may overlap any access of a *different* iteration.
//! 4. [`loops::trip_bound`] — concrete simulation from the recovered
//!    entry constants, bounding the iteration count when decidable.
//! 5. [`cert::build_cert`] — a versioned, checksummed
//!    [`StreamingCert`] per surviving region.
//!
//! Regions that fail any step are reported with the exact reason —
//! the rejection trail is as much a product as the certificates.

pub mod accesses;
pub mod cert;
pub mod depend;
pub mod lattice;
pub mod loops;

use crate::cfg::Cfg;
use dim_cgra::StreamingCert;
use dim_mips::asm::Program;
use dim_mips::Instruction;
use dim_obs::ObjectWriter;

/// Schema version of the `dim prove --json` report format.
pub const PROVE_SCHEMA_VERSION: u32 = 1;

/// Iteration cap for the concrete trip-count simulation.
const TRIP_SIM_CAP: u64 = 1 << 20;

/// Outcome for one self-loop region.
#[derive(Debug, Clone)]
pub enum RegionOutcome {
    /// The region is streaming-eligible; here is the proof artifact.
    Certified(Box<StreamingCert>),
    /// The region failed a step; `reason` names it.
    Rejected {
        /// Human-readable rejection reason.
        reason: String,
    },
}

/// One analyzed region.
#[derive(Debug, Clone)]
pub struct RegionReport {
    /// First PC of the loop body.
    pub entry_pc: u32,
    /// Instructions in the body (closing branch included).
    pub len: u32,
    /// Loads/stores in the body.
    pub access_count: usize,
    /// What happened.
    pub outcome: RegionOutcome,
}

impl RegionReport {
    /// The certificate, when the region was certified.
    pub fn cert(&self) -> Option<&StreamingCert> {
        match &self.outcome {
            RegionOutcome::Certified(cert) => Some(cert),
            RegionOutcome::Rejected { .. } => None,
        }
    }
}

/// The prover's verdict over one program.
#[derive(Debug, Clone)]
pub struct ProveReport {
    /// Workload (or file stem) the program came from.
    pub workload: String,
    /// Every self-loop found, in address order.
    pub regions: Vec<RegionReport>,
}

impl ProveReport {
    /// All certificates, in region order.
    pub fn certs(&self) -> impl Iterator<Item = &StreamingCert> {
        self.regions.iter().filter_map(RegionReport::cert)
    }

    /// Number of certified regions.
    pub fn cert_count(&self) -> usize {
        self.certs().count()
    }

    /// Renders the report as one JSON object (the `--json` format),
    /// schema-stamped like every other machine-readable surface.
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_str("type", "prove_report")
            .field_u64("schema", PROVE_SCHEMA_VERSION as u64)
            .field_str("workload", &self.workload)
            .field_u64("regions", self.regions.len() as u64)
            .field_u64("certified", self.cert_count() as u64);
        let mut rows = String::from("[");
        for (i, region) in self.regions.iter().enumerate() {
            if i > 0 {
                rows.push(',');
            }
            let mut row = ObjectWriter::new();
            row.field_u64("entry_pc", region.entry_pc as u64)
                .field_u64("len", region.len as u64)
                .field_u64("accesses", region.access_count as u64);
            match &region.outcome {
                RegionOutcome::Certified(cert) => {
                    row.field_str("status", "certified");
                    row.field_raw("cert", &cert.to_json());
                }
                RegionOutcome::Rejected { reason } => {
                    row.field_str("status", "rejected");
                    row.field_str("reason", reason);
                }
            }
            rows.push_str(&row.finish());
        }
        rows.push(']');
        w.field_raw("report", &rows);
        w.finish()
    }
}

/// Runs the full prover over an assembled program.
pub fn prove_program(program: &Program, workload: &str) -> ProveReport {
    let cfg = Cfg::build(program);
    let regions = loops::find_self_loops(&cfg)
        .into_iter()
        .map(|region| prove_region(&cfg, &region, workload))
        .collect();
    ProveReport {
        workload: workload.to_string(),
        regions,
    }
}

fn prove_region(cfg: &Cfg, region: &loops::SelfLoop, workload: &str) -> RegionReport {
    let reject = |access_count: usize, reason: String| RegionReport {
        entry_pc: region.entry,
        len: region.len as u32,
        access_count,
        outcome: RegionOutcome::Rejected { reason },
    };

    // Decode the body; an undecodable slot means the CFG cut the block
    // at a data word — nothing to prove.
    let body: Option<Vec<(u32, Instruction)>> = cfg
        .block_insts(&cfg.blocks[region.block])
        .map(|(pc, inst)| inst.map(|inst| (pc, inst)))
        .collect();
    let Some(body) = body else {
        return reject(0, "undecodable word in body".to_string());
    };
    if !(2..=4096).contains(&region.len) {
        return reject(0, format!("body length {} out of range", region.len));
    }

    let analysis = match accesses::analyze_body(&body) {
        Ok(a) => a,
        Err(why) => return reject(0, why.to_string()),
    };
    let n = analysis.accesses.len();
    if n == 0 {
        return reject(0, "no memory accesses to certify".to_string());
    }
    if let Err(why) = depend::check_dependences(&analysis.accesses) {
        return reject(n, why.to_string());
    }

    let entry = loops::entry_env(cfg, region.block);
    let trip = loops::trip_bound(&body, &entry, TRIP_SIM_CAP);
    let cert = cert::build_cert(workload, region, &analysis.accesses, trip);
    RegionReport {
        entry_pc: region.entry,
        len: region.len as u32,
        access_count: n,
        outcome: RegionOutcome::Certified(Box::new(cert)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_cgra::StreamClass;
    use dim_mips::asm::assemble;

    fn prove(src: &str) -> ProveReport {
        prove_program(&assemble(src).expect("assembles"), "unit")
    }

    #[test]
    fn counted_byte_sum_is_certified_with_trip() {
        let report = prove(
            "main: li $s0, 64
                   li $s1, 0x2000
             loop: lbu $t0, 0($s1)
                   addu $s3, $s3, $t0
                   addiu $s1, $s1, 1
                   addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        assert_eq!(report.regions.len(), 1);
        let cert = report.regions[0].cert().expect("certified");
        assert_eq!(cert.trip_bound, Some(64));
        assert_eq!(cert.burst, 16);
        assert_eq!(cert.accesses.len(), 1);
        assert_eq!(cert.accesses[0].class, StreamClass::Affine { stride: 1 });
    }

    #[test]
    fn syscall_in_body_rejects() {
        let report = prove(
            "main: li $s0, 4
             loop: syscall
                   addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        assert_eq!(report.cert_count(), 0);
        match &report.regions[0].outcome {
            RegionOutcome::Rejected { reason } => {
                assert!(reason.contains("syscall"), "{reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn indirect_store_rejects() {
        let report = prove(
            "main: li $s0, 4
             loop: lw $t0, 0($s2)
                   sw $t1, 0($t0)
                   addiu $s2, $s2, 4
                   addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        assert_eq!(report.cert_count(), 0);
    }

    #[test]
    fn pure_compute_loop_yields_no_cert() {
        let report = prove(
            "main: li $s0, 9
             loop: addu $t0, $t0, $s0
                   addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        assert_eq!(report.cert_count(), 0);
        assert_eq!(report.regions.len(), 1, "region still reported");
    }

    #[test]
    fn report_json_is_schema_stamped_and_certs_parse() {
        let report = prove(
            "main: li $s0, 8
                   li $s1, 0x2000
             loop: lw $t0, 0($s1)
                   sll $t1, $t0, 1
                   sw $t1, 0($s1)
                   addiu $s1, $s1, 4
                   addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        assert_eq!(report.cert_count(), 1);
        let json = report.to_json();
        let value = dim_obs::parse_json(&json).expect("valid json");
        assert_eq!(
            value.get("schema").and_then(dim_obs::JsonValue::as_u64),
            Some(PROVE_SCHEMA_VERSION as u64)
        );
        assert_eq!(
            value.get("certified").and_then(dim_obs::JsonValue::as_u64),
            Some(1)
        );
        let regions = value
            .get("report")
            .and_then(|v| v.as_array())
            .expect("report array");
        let cert_obj = regions[0].get("cert").expect("embedded cert");
        assert_eq!(
            cert_obj.get("burst").and_then(dim_obs::JsonValue::as_u64),
            Some(8),
            "trip bound 8 caps burst"
        );
        // The embedded certificate is the canonical checksummed line.
        let cert = report.certs().next().expect("one cert");
        assert!(json.contains(&cert.to_json()), "cert embedded verbatim");
        let back = StreamingCert::parse_json(&cert.to_json()).expect("parses");
        assert_eq!(&back, cert);
    }
}
