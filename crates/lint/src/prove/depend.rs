//! Stride-based cross-iteration dependence test and burst sizing.
//!
//! The claim a certificate makes is that `burst` body iterations can
//! run back-to-back with no per-iteration checks. The hazard is a store
//! of iteration *i* aliasing a load or store of iteration *j ≠ i*
//! inside the burst window — exactly what [`check_dependences`] rules
//! out with interval arithmetic over the proven strides:
//!
//! For a store `S` and any access `A` with addresses
//! `aS + k·d` and `aA + k·d` (same symbolic base, so same stride `d`),
//! the cross-iteration distance is `Δc + m·d` with `Δc = aS − aA` and
//! `|m| ≥ 1`. The two never overlap when
//! `|d| ≥ |Δc| + max(wS, wA)` and `d ≠ 0` — the per-iteration advance
//! outruns the static skew plus the widest footprint.
//!
//! Accesses with *different* symbolic bases get no such bound (the
//! bases may be arbitrarily aliased at run time), so any store forces
//! every other access onto its own base — conservative, and exactly
//! the paper's "streaming kernels only" scope.

use super::accesses::ClassifiedAccess;
use dim_cgra::{StreamClass, STREAM_BURST_CAP};

/// Why the dependence test rejected a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DependReject {
    /// A store's address is not a provable linear expression.
    UnknownStore {
        /// PC of the store.
        pc: u32,
    },
    /// The loop has a store, and some access's address is unknown.
    UnknownBesideStore {
        /// PC of the unknown access.
        pc: u32,
    },
    /// A store's address does not advance (stride 0): it would overlap
    /// itself on every iteration of a burst.
    StationaryStore {
        /// PC of the store.
        pc: u32,
    },
    /// A store and another access sit on different symbolic bases; the
    /// stride domain cannot bound their distance.
    BaseMismatch {
        /// PC of the store.
        store_pc: u32,
        /// PC of the other access.
        other_pc: u32,
    },
    /// Same base, but the stride does not clear the static skew plus
    /// access footprints.
    StrideTooSmall {
        /// PC of the store.
        store_pc: u32,
        /// PC of the other access.
        other_pc: u32,
        /// The per-iteration stride.
        stride: i64,
        /// Required minimum `|stride|`.
        needed: i64,
    },
}

impl std::fmt::Display for DependReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DependReject::UnknownStore { pc } => {
                write!(f, "store at {pc:#x} has an unprovable address")
            }
            DependReject::UnknownBesideStore { pc } => {
                write!(f, "unknown-address access at {pc:#x} in a loop with stores")
            }
            DependReject::StationaryStore { pc } => {
                write!(f, "store at {pc:#x} does not advance between iterations")
            }
            DependReject::BaseMismatch { store_pc, other_pc } => write!(
                f,
                "store at {store_pc:#x} and access at {other_pc:#x} use different symbolic bases"
            ),
            DependReject::StrideTooSmall {
                store_pc,
                other_pc,
                stride,
                needed,
            } => write!(
                f,
                "store at {store_pc:#x} vs access at {other_pc:#x}: stride {stride} < required {needed}"
            ),
        }
    }
}

/// Runs the cross-iteration alias test over a classified body.
///
/// Store-free loops pass unconditionally — even with unknown loads
/// (crc32's table lookup), re-reading memory that nothing in the loop
/// writes is burst-invariant. Any store raises the bar to the full
/// interval test above.
pub fn check_dependences(accesses: &[ClassifiedAccess]) -> Result<(), DependReject> {
    let stores: Vec<&ClassifiedAccess> = accesses.iter().filter(|a| a.is_store).collect();
    if stores.is_empty() {
        return Ok(());
    }
    for store in &stores {
        match store.class {
            StreamClass::Unknown => return Err(DependReject::UnknownStore { pc: store.pc }),
            StreamClass::Invariant => return Err(DependReject::StationaryStore { pc: store.pc }),
            StreamClass::Affine { .. } => {}
        }
    }
    if let Some(unknown) = accesses.iter().find(|a| a.class == StreamClass::Unknown) {
        return Err(DependReject::UnknownBesideStore { pc: unknown.pc });
    }
    for store in &stores {
        let store_addr = store.addr.as_ref().expect("affine store has an address");
        let StreamClass::Affine { stride } = store.class else {
            unreachable!("non-affine stores rejected above")
        };
        let stride = stride as i64;
        for other in accesses {
            let other_addr = other.addr.as_ref().expect("unknowns rejected above");
            let skew = store_addr.sub(other_addr);
            if !skew.terms.is_empty() {
                return Err(DependReject::BaseMismatch {
                    store_pc: store.pc,
                    other_pc: other.pc,
                });
            }
            // Same linear part ⇒ same stride; only the offset differs.
            let needed = skew.off.abs() + store.width.max(other.width) as i64;
            if stride.abs() < needed {
                return Err(DependReject::StrideTooSmall {
                    store_pc: store.pc,
                    other_pc: other.pc,
                    stride,
                    needed,
                });
            }
        }
    }
    Ok(())
}

/// The burst K a certificate may promise: capped by
/// [`STREAM_BURST_CAP`] and by the proven trip bound, never below 1.
pub fn burst_for(trip_bound: Option<u64>) -> u32 {
    match trip_bound {
        Some(t) => (t.min(STREAM_BURST_CAP as u64) as u32).max(1),
        None => STREAM_BURST_CAP,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prove::accesses::analyze_body;
    use dim_mips::asm::assemble;
    use dim_mips::{decode, Instruction};

    fn classify(src: &str) -> Vec<ClassifiedAccess> {
        let p = assemble(src).expect("assembles");
        let body: Vec<(u32, Instruction)> = p
            .text
            .iter()
            .enumerate()
            .map(|(i, &w)| (p.text_base + (i as u32) * 4, decode(w).expect("decodes")))
            .collect();
        analyze_body(&body).expect("analyzes").accesses
    }

    #[test]
    fn store_free_loop_with_unknown_load_passes() {
        let accesses = classify(
            "loop: lbu $t0, 0($s1)
                   sll $t1, $t0, 2
                   addu $t1, $t1, $s2
                   lw $t2, 0($t1)
                   addiu $s1, $s1, 1
                   addiu $s0, $s0, -1
                   bnez $s0, loop",
        );
        assert!(check_dependences(&accesses).is_ok());
    }

    #[test]
    fn in_place_word_transform_passes() {
        // lw/sw through the same advancing base: skew 0, stride 4,
        // widths 4 — exactly at the bound.
        let accesses = classify(
            "loop: lw $t0, 0($s0)
                   sll $t1, $t0, 1
                   sw $t1, 0($s0)
                   addiu $s0, $s0, 4
                   addiu $s1, $s1, -1
                   bnez $s1, loop",
        );
        assert!(check_dependences(&accesses).is_ok());
    }

    #[test]
    fn loop_carried_overlap_is_rejected() {
        // sha's message-schedule shape: reads 12 bytes behind the
        // write pointer with a 4-byte stride — iteration i+3's load
        // rereads iteration i's store.
        let accesses = classify(
            "loop: lw $t0, 0($s0)
                   sw $t0, 12($s0)
                   addiu $s0, $s0, 4
                   addiu $s1, $s1, -1
                   bnez $s1, loop",
        );
        match check_dependences(&accesses) {
            Err(DependReject::StrideTooSmall { needed, .. }) => assert_eq!(needed, 16),
            other => panic!("expected stride reject, got {other:?}"),
        }
    }

    #[test]
    fn distinct_bases_are_rejected() {
        let accesses = classify(
            "loop: lw $t0, 0($s0)
                   sw $t0, 0($s1)
                   addiu $s0, $s0, 4
                   addiu $s1, $s1, 4
                   addiu $s2, $s2, -1
                   bnez $s2, loop",
        );
        match check_dependences(&accesses) {
            Err(DependReject::BaseMismatch { .. }) => {}
            other => panic!("expected base mismatch, got {other:?}"),
        }
    }

    #[test]
    fn indirect_store_is_rejected() {
        let accesses = classify(
            "loop: lw $t0, 0($s0)
                   sw $t1, 0($t0)
                   addiu $s0, $s0, 4
                   addiu $s2, $s2, -1
                   bnez $s2, loop",
        );
        match check_dependences(&accesses) {
            Err(DependReject::UnknownStore { .. }) => {}
            other => panic!("expected unknown-store reject, got {other:?}"),
        }
    }

    #[test]
    fn stationary_store_is_rejected() {
        let accesses = classify(
            "loop: sw $t0, 0($s2)
                   addiu $s0, $s0, -1
                   bnez $s0, loop",
        );
        match check_dependences(&accesses) {
            Err(DependReject::StationaryStore { .. }) => {}
            other => panic!("expected stationary-store reject, got {other:?}"),
        }
    }

    #[test]
    fn burst_respects_trip_and_cap() {
        assert_eq!(burst_for(None), STREAM_BURST_CAP);
        assert_eq!(burst_for(Some(100)), STREAM_BURST_CAP);
        assert_eq!(burst_for(Some(5)), 5);
        assert_eq!(burst_for(Some(0)), 1);
    }
}
