//! The abstract domain of the stride prover: values as linear
//! combinations of the registers' *loop-entry* values.
//!
//! Every register starts a loop body as the symbolic variable standing
//! for "whatever this register held when the iteration began". The
//! transfer function pushes these symbols through the body: additions
//! combine term-wise, constant shifts scale, constant-only expressions
//! fold to concrete values, and anything non-linear (masks, compares,
//! data-dependent shifts, loaded values) collapses to ⊤ (`Unknown`).
//! All arithmetic is interpreted modulo 2³², exactly as the simulator
//! computes it, so a derived stride is an exact statement about the
//! executed address sequence — not an approximation.

use dim_mips::{AluOp, DataLoc, Instruction, MulDivOp, Reg, ShiftOp};
use std::collections::BTreeMap;

/// Wraps an `i64` to the canonical signed representative of its value
/// modulo 2³² (the two's-complement `i32` range).
pub fn wrap32(v: i64) -> i64 {
    (v as u32) as i32 as i64
}

/// A linear combination `off + Σ coeffᵢ·locᵢ` over loop-entry register
/// values, modulo 2³². Coefficients and offset are kept as canonical
/// signed 32-bit representatives; zero coefficients are dropped, so an
/// empty term map is a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinExpr {
    /// Non-zero coefficients per symbolic location.
    pub terms: BTreeMap<DataLoc, i64>,
    /// Constant offset.
    pub off: i64,
}

impl LinExpr {
    /// The constant `v`.
    pub fn konst(v: u32) -> LinExpr {
        LinExpr {
            terms: BTreeMap::new(),
            off: wrap32(v as i64),
        }
    }

    /// The loop-entry value of `loc` itself.
    pub fn var(loc: DataLoc) -> LinExpr {
        LinExpr {
            terms: BTreeMap::from([(loc, 1)]),
            off: 0,
        }
    }

    /// The concrete value, if this expression is constant.
    pub fn as_const(&self) -> Option<u32> {
        self.terms.is_empty().then_some(self.off as u32)
    }

    /// Term-wise sum.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        self.combine(other, 1)
    }

    /// Term-wise difference.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.combine(other, -1)
    }

    fn combine(&self, other: &LinExpr, sign: i64) -> LinExpr {
        let mut terms = self.terms.clone();
        for (&loc, &c) in &other.terms {
            let entry = terms.entry(loc).or_insert(0);
            *entry = wrap32(*entry + sign * c);
            if *entry == 0 {
                terms.remove(&loc);
            }
        }
        LinExpr {
            terms,
            off: wrap32(self.off + sign * other.off),
        }
    }

    /// Adds a constant.
    pub fn add_const(&self, c: i64) -> LinExpr {
        LinExpr {
            terms: self.terms.clone(),
            off: wrap32(self.off + c),
        }
    }

    /// Multiplies every coefficient and the offset by `k` (mod 2³²),
    /// dropping terms whose coefficient wraps to zero.
    pub fn scale(&self, k: i64) -> LinExpr {
        let mut terms = BTreeMap::new();
        for (&loc, &c) in &self.terms {
            let scaled = wrap32(c.wrapping_mul(k));
            if scaled != 0 {
                terms.insert(loc, scaled);
            }
        }
        LinExpr {
            terms,
            off: wrap32(self.off.wrapping_mul(k)),
        }
    }
}

/// An abstract value: a linear expression, or ⊤.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsVal {
    /// Provably `off + Σ coeffᵢ·locᵢ (mod 2³²)` over loop-entry values.
    Lin(LinExpr),
    /// Not expressible in the domain.
    Unknown,
}

impl AbsVal {
    /// The constant value, if known.
    pub fn as_const(&self) -> Option<u32> {
        match self {
            AbsVal::Lin(e) => e.as_const(),
            AbsVal::Unknown => None,
        }
    }

    /// The linear expression, if known.
    pub fn as_lin(&self) -> Option<&LinExpr> {
        match self {
            AbsVal::Lin(e) => Some(e),
            AbsVal::Unknown => None,
        }
    }

    fn konst(v: u32) -> AbsVal {
        AbsVal::Lin(LinExpr::konst(v))
    }
}

/// A classified memory access surfaced by [`StrideEnv::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsAccess {
    /// Whether the access writes memory.
    pub is_store: bool,
    /// Access width in bytes.
    pub width: u32,
    /// Abstract address expression at the access point.
    pub addr: AbsVal,
}

/// The abstract register state of one loop body, mapping every
/// [`DataLoc`] to its value as a function of the loop-entry state.
#[derive(Debug, Clone)]
pub struct StrideEnv {
    vals: Vec<AbsVal>,
}

impl StrideEnv {
    /// The state at loop entry: every location is its own symbol,
    /// except `$zero`, which is the constant 0.
    pub fn entry() -> StrideEnv {
        let vals = (0..DataLoc::COUNT)
            .map(|i| {
                let loc = DataLoc::from_dense_index(i).expect("dense index in range");
                if loc == DataLoc::Gpr(Reg::ZERO) {
                    AbsVal::konst(0)
                } else {
                    AbsVal::Lin(LinExpr::var(loc))
                }
            })
            .collect();
        StrideEnv { vals }
    }

    /// The abstract value of `loc`.
    pub fn get(&self, loc: DataLoc) -> &AbsVal {
        &self.vals[loc.dense_index()]
    }

    fn reg(&self, r: Reg) -> &AbsVal {
        self.get(DataLoc::Gpr(r))
    }

    fn set(&mut self, loc: DataLoc, v: AbsVal) {
        if loc == DataLoc::Gpr(Reg::ZERO) {
            return; // hard-wired zero ignores writes
        }
        self.vals[loc.dense_index()] = v;
    }

    /// Pushes one instruction through the abstract state, returning the
    /// classified memory access if the instruction touches memory.
    /// Control instructions are register-transparent here (the branch
    /// comparison writes nothing); syscall clobbers `$v0`.
    pub fn step(&mut self, inst: &Instruction) -> Option<AbsAccess> {
        match *inst {
            Instruction::Alu { op, rd, rs, rt } => {
                let v = alu_transfer(op, self.reg(rs), self.reg(rt));
                self.set(DataLoc::Gpr(rd), v);
            }
            Instruction::AluImm { op, rt, rs, imm } => {
                let v = match op {
                    dim_mips::AluImmOp::Addi | dim_mips::AluImmOp::Addiu => {
                        match self.reg(rs).as_lin() {
                            Some(e) => AbsVal::Lin(e.add_const(imm as i16 as i64)),
                            None => AbsVal::Unknown,
                        }
                    }
                    _ => match self.reg(rs).as_const() {
                        Some(a) => AbsVal::konst(op.eval(a, imm)),
                        None => AbsVal::Unknown,
                    },
                };
                self.set(DataLoc::Gpr(rt), v);
            }
            Instruction::Shift { op, rd, rt, shamt } => {
                let v = match op {
                    ShiftOp::Sll => match self.reg(rt).as_lin() {
                        Some(e) => AbsVal::Lin(e.scale(1i64 << (shamt & 0x1f))),
                        None => AbsVal::Unknown,
                    },
                    _ => match self.reg(rt).as_const() {
                        Some(a) => AbsVal::konst(op.eval(a, shamt as u32)),
                        None => AbsVal::Unknown,
                    },
                };
                self.set(DataLoc::Gpr(rd), v);
            }
            Instruction::ShiftVar { op, rd, rt, rs } => {
                let v = match (self.reg(rt).as_const(), self.reg(rs).as_const()) {
                    (Some(a), Some(amount)) => AbsVal::konst(op.eval(a, amount)),
                    _ => AbsVal::Unknown,
                };
                self.set(DataLoc::Gpr(rd), v);
            }
            Instruction::Lui { rt, imm } => {
                self.set(DataLoc::Gpr(rt), AbsVal::konst((imm as u32) << 16));
            }
            Instruction::MulDiv { op, rs, rt } => {
                let (hi, lo) = muldiv_transfer(op, self.reg(rs), self.reg(rt));
                self.set(DataLoc::Hi, hi);
                self.set(DataLoc::Lo, lo);
            }
            Instruction::Mfhi { rd } => {
                let v = self.get(DataLoc::Hi).clone();
                self.set(DataLoc::Gpr(rd), v);
            }
            Instruction::Mflo { rd } => {
                let v = self.get(DataLoc::Lo).clone();
                self.set(DataLoc::Gpr(rd), v);
            }
            Instruction::Mthi { rs } => {
                let v = self.reg(rs).clone();
                self.set(DataLoc::Hi, v);
            }
            Instruction::Mtlo { rs } => {
                let v = self.reg(rs).clone();
                self.set(DataLoc::Lo, v);
            }
            Instruction::Load {
                width,
                rt,
                base,
                offset,
                ..
            } => {
                let addr = self.address(base, offset);
                self.set(DataLoc::Gpr(rt), AbsVal::Unknown);
                return Some(AbsAccess {
                    is_store: false,
                    width: width.bytes(),
                    addr,
                });
            }
            Instruction::Store {
                width,
                base,
                offset,
                ..
            } => {
                let addr = self.address(base, offset);
                return Some(AbsAccess {
                    is_store: true,
                    width: width.bytes(),
                    addr,
                });
            }
            // The unaligned helpers touch a hardware-defined sub-word
            // window around the effective address; model them as
            // word-wide accesses of unknown shape so the dependence
            // test stays conservative.
            Instruction::LoadUnaligned { rt, .. } => {
                self.set(DataLoc::Gpr(rt), AbsVal::Unknown);
                return Some(AbsAccess {
                    is_store: false,
                    width: 4,
                    addr: AbsVal::Unknown,
                });
            }
            Instruction::StoreUnaligned { .. } => {
                return Some(AbsAccess {
                    is_store: true,
                    width: 4,
                    addr: AbsVal::Unknown,
                });
            }
            Instruction::Branch { .. }
            | Instruction::J { .. }
            | Instruction::Jr { .. }
            | Instruction::Break { .. } => {}
            Instruction::Jal { .. } | Instruction::Jalr { .. } => {
                self.set(DataLoc::Gpr(Reg::RA), AbsVal::Unknown);
            }
            Instruction::Syscall => {
                // The loop is rejected anyway; clobber the result
                // register so the state stays sound regardless.
                self.set(DataLoc::Gpr(Reg::V0), AbsVal::Unknown);
            }
        }
        None
    }

    fn address(&self, base: Reg, offset: i16) -> AbsVal {
        match self.reg(base).as_lin() {
            Some(e) => AbsVal::Lin(e.add_const(offset as i64)),
            None => AbsVal::Unknown,
        }
    }

    /// The per-iteration recurrence of every location after one body
    /// pass: `Some(delta)` when the end-of-body value is exactly
    /// `entry + delta` (delta 0 = invariant), `None` when the location
    /// evolves non-affinely.
    pub fn recurrences(&self) -> Vec<Option<i64>> {
        (0..DataLoc::COUNT)
            .map(|i| {
                let loc = DataLoc::from_dense_index(i).expect("dense index in range");
                if loc == DataLoc::Gpr(Reg::ZERO) {
                    return Some(0);
                }
                match &self.vals[i] {
                    AbsVal::Lin(e) => {
                        if e.terms.len() == 1 && e.terms.get(&loc) == Some(&1) {
                            Some(e.off)
                        } else if e.terms.is_empty() {
                            // Constant every iteration after the first —
                            // not an affine recurrence from the entry
                            // value, so not usable for strides.
                            None
                        } else {
                            None
                        }
                    }
                    AbsVal::Unknown => None,
                }
            })
            .collect()
    }
}

fn alu_transfer(op: AluOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return AbsVal::konst(op.eval(x, y));
    }
    match (op, a.as_lin(), b.as_lin()) {
        (AluOp::Add | AluOp::Addu, Some(x), Some(y)) => AbsVal::Lin(x.add(y)),
        (AluOp::Sub | AluOp::Subu, Some(x), Some(y)) => AbsVal::Lin(x.sub(y)),
        // `or` with a known zero is the assembler's `move`.
        (AluOp::Or, Some(x), _) if b.as_const() == Some(0) => AbsVal::Lin(x.clone()),
        (AluOp::Or, _, Some(y)) if a.as_const() == Some(0) => AbsVal::Lin(y.clone()),
        _ => AbsVal::Unknown,
    }
}

fn muldiv_transfer(op: MulDivOp, a: &AbsVal, b: &AbsVal) -> (AbsVal, AbsVal) {
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => {
            let (hi, lo) = op.eval(x, y);
            (AbsVal::konst(hi), AbsVal::konst(lo))
        }
        _ => (AbsVal::Unknown, AbsVal::Unknown),
    }
}

/// A concrete (partial) register state for the trip-count interpreter:
/// `None` is "statically unknown" poison. Loads always poison their
/// destination — memory is outside this domain.
#[derive(Debug, Clone)]
pub struct ConcreteEnv {
    vals: Vec<Option<u32>>,
}

impl ConcreteEnv {
    /// All-unknown state (except the hard-wired `$zero`).
    pub fn new() -> ConcreteEnv {
        let mut vals = vec![None; DataLoc::COUNT];
        vals[DataLoc::Gpr(Reg::ZERO).dense_index()] = Some(0);
        ConcreteEnv { vals }
    }

    /// The concrete value of `loc`, if statically known.
    pub fn get(&self, loc: DataLoc) -> Option<u32> {
        self.vals[loc.dense_index()]
    }

    fn reg(&self, r: Reg) -> Option<u32> {
        self.get(DataLoc::Gpr(r))
    }

    fn set(&mut self, loc: DataLoc, v: Option<u32>) {
        if loc == DataLoc::Gpr(Reg::ZERO) {
            return;
        }
        self.vals[loc.dense_index()] = v;
    }

    /// Evaluates the branch condition, if its operands are known.
    pub fn branch_taken(&self, inst: &Instruction) -> Option<bool> {
        let Instruction::Branch { cond, rs, rt, .. } = *inst else {
            return None;
        };
        let a = self.reg(rs)?;
        let b = if cond.uses_rt() { self.reg(rt)? } else { 0 };
        Some(cond.eval(a, b))
    }

    /// Executes one register-file effect concretely; unknown operands
    /// poison the destination, loads always do.
    pub fn step(&mut self, inst: &Instruction) {
        match *inst {
            Instruction::Alu { op, rd, rs, rt } => {
                let v = match (self.reg(rs), self.reg(rt)) {
                    (Some(a), Some(b)) => Some(op.eval(a, b)),
                    _ => None,
                };
                self.set(DataLoc::Gpr(rd), v);
            }
            Instruction::AluImm { op, rt, rs, imm } => {
                let v = self.reg(rs).map(|a| op.eval(a, imm));
                self.set(DataLoc::Gpr(rt), v);
            }
            Instruction::Shift { op, rd, rt, shamt } => {
                let v = self.reg(rt).map(|a| op.eval(a, shamt as u32));
                self.set(DataLoc::Gpr(rd), v);
            }
            Instruction::ShiftVar { op, rd, rt, rs } => {
                let v = match (self.reg(rt), self.reg(rs)) {
                    (Some(a), Some(amount)) => Some(op.eval(a, amount)),
                    _ => None,
                };
                self.set(DataLoc::Gpr(rd), v);
            }
            Instruction::Lui { rt, imm } => {
                self.set(DataLoc::Gpr(rt), Some((imm as u32) << 16));
            }
            Instruction::MulDiv { op, rs, rt } => {
                let (hi, lo) = match (self.reg(rs), self.reg(rt)) {
                    (Some(a), Some(b)) => {
                        let (hi, lo) = op.eval(a, b);
                        (Some(hi), Some(lo))
                    }
                    _ => (None, None),
                };
                self.set(DataLoc::Hi, hi);
                self.set(DataLoc::Lo, lo);
            }
            Instruction::Mfhi { rd } => {
                let v = self.get(DataLoc::Hi);
                self.set(DataLoc::Gpr(rd), v);
            }
            Instruction::Mflo { rd } => {
                let v = self.get(DataLoc::Lo);
                self.set(DataLoc::Gpr(rd), v);
            }
            Instruction::Mthi { rs } => {
                let v = self.reg(rs);
                self.set(DataLoc::Hi, v);
            }
            Instruction::Mtlo { rs } => {
                let v = self.reg(rs);
                self.set(DataLoc::Lo, v);
            }
            Instruction::Load { rt, .. } | Instruction::LoadUnaligned { rt, .. } => {
                self.set(DataLoc::Gpr(rt), None);
            }
            Instruction::Store { .. } | Instruction::StoreUnaligned { .. } => {}
            Instruction::Branch { .. }
            | Instruction::J { .. }
            | Instruction::Jr { .. }
            | Instruction::Break { .. } => {}
            Instruction::Jal { .. } | Instruction::Jalr { .. } => {
                self.set(DataLoc::Gpr(Reg::RA), None);
            }
            Instruction::Syscall => {
                self.set(DataLoc::Gpr(Reg::V0), None);
            }
        }
    }
}

impl Default for ConcreteEnv {
    fn default() -> Self {
        ConcreteEnv::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::asm::assemble;

    fn body_of(src: &str) -> Vec<Instruction> {
        let p = assemble(src).expect("assembles");
        p.text
            .iter()
            .map(|&w| dim_mips::decode(w).expect("decodes"))
            .collect()
    }

    #[test]
    fn pointer_increment_is_affine() {
        // s1 += 1 each iteration; the lbu address is s1 + 0.
        let body = body_of(
            "main: lbu $t0, 0($s1)
                   addiu $s1, $s1, 1",
        );
        let mut env = StrideEnv::entry();
        let access = env.step(&body[0]).expect("load surfaces");
        assert!(!access.is_store);
        assert_eq!(access.width, 1);
        let addr = access.addr.as_lin().unwrap();
        assert_eq!(addr.terms.get(&DataLoc::Gpr(Reg::S1)), Some(&1));
        assert_eq!(addr.off, 0);
        env.step(&body[1]);
        let rec = env.recurrences();
        assert_eq!(rec[Reg::S1.index()], Some(1), "s1 is inductive by +1");
    }

    #[test]
    fn scaled_index_scales_coefficients() {
        // t1 = (t0 << 2); addr = s0 + t1 + 4 → coeffs {s0:1, t0:4}.
        let body = body_of(
            "main: sll $t1, $t0, 2
                   addu $t2, $s0, $t1
                   lw $t3, 4($t2)",
        );
        let mut env = StrideEnv::entry();
        env.step(&body[0]);
        env.step(&body[1]);
        let access = env.step(&body[2]).expect("load surfaces");
        let addr = access.addr.as_lin().unwrap();
        assert_eq!(addr.terms.get(&DataLoc::Gpr(Reg::S0)), Some(&1));
        assert_eq!(addr.terms.get(&DataLoc::Gpr(Reg::T0)), Some(&4));
        assert_eq!(addr.off, 4);
    }

    #[test]
    fn loaded_value_poisons_addresses() {
        // t0 is loaded, so the second load's address is unknown.
        let body = body_of(
            "main: lw $t0, 0($a0)
                   lw $t1, 0($t0)",
        );
        let mut env = StrideEnv::entry();
        env.step(&body[0]);
        let access = env.step(&body[1]).expect("load surfaces");
        assert_eq!(access.addr, AbsVal::Unknown);
    }

    #[test]
    fn masking_is_not_linear() {
        let body = body_of("main: andi $t1, $t0, 0xff");
        let mut env = StrideEnv::entry();
        env.step(&body[0]);
        assert_eq!(*env.get(DataLoc::Gpr(Reg::T1)), AbsVal::Unknown);
    }

    #[test]
    fn constants_fold_exactly() {
        let body = body_of(
            "main: lui $t0, 0x1234
                   ori $t0, $t0, 0x5678
                   sll $t1, $t0, 4",
        );
        let mut env = StrideEnv::entry();
        for inst in &body {
            env.step(inst);
        }
        assert_eq!(env.get(DataLoc::Gpr(Reg::T0)).as_const(), Some(0x1234_5678));
        assert_eq!(
            env.get(DataLoc::Gpr(Reg::T1)).as_const(),
            Some(0x1234_5678u32 << 4)
        );
    }

    #[test]
    fn symbolic_difference_cancels() {
        // t2 = (s0 + 8) - s0 = 8 even though s0 is symbolic.
        let body = body_of(
            "main: addiu $t0, $s0, 8
                   subu $t2, $t0, $s0",
        );
        let mut env = StrideEnv::entry();
        env.step(&body[0]);
        env.step(&body[1]);
        assert_eq!(env.get(DataLoc::Gpr(Reg::T2)).as_const(), Some(8));
    }

    #[test]
    fn wraparound_stride_is_exact() {
        // Decrement by 1 wraps: delta is -1, not 0xffff_ffff.
        let body = body_of("main: addiu $s2, $s2, -1");
        let mut env = StrideEnv::entry();
        env.step(&body[0]);
        assert_eq!(env.recurrences()[Reg::S2.index()], Some(-1));
    }

    #[test]
    fn concrete_env_steps_and_poisons() {
        let body = body_of(
            "main: li $t0, 7
                   addiu $t0, $t0, 3
                   lw $t1, 0($t0)
                   addu $t2, $t0, $t1",
        );
        let mut env = ConcreteEnv::new();
        for inst in &body {
            env.step(inst);
        }
        assert_eq!(env.get(DataLoc::Gpr(Reg::T0)), Some(10));
        assert_eq!(env.get(DataLoc::Gpr(Reg::T1)), None, "loads poison");
        assert_eq!(env.get(DataLoc::Gpr(Reg::T2)), None, "poison propagates");
    }
}
