//! Control-flow-graph reconstruction over an assembled text segment.
//!
//! Blocks are delimited by leaders (the entry point, every branch/jump
//! target, and the instruction after any control transfer, `break`, or
//! undecodable word) and by terminators. The simulated pipeline has no
//! architectural delay slots, but the graph records the would-be slot
//! ownership (`pc + 4` of every control transfer) so the delay-slot
//! portability lints can reason about it.

use crate::walk::{decode_text, TextWalker};
use dim_mips::asm::Program;
use dim_mips::Instruction;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Conditional branch: two-way split.
    Branch {
        /// PC of the branch.
        pc: u32,
        /// Taken target.
        taken: u32,
        /// Fall-through address.
        fall: u32,
    },
    /// Unconditional jump (`j`).
    Jump {
        /// PC of the jump.
        pc: u32,
        /// Absolute target.
        target: u32,
    },
    /// Call (`jal`): control goes to `target`, and the callee eventually
    /// returns to `fall` — both are treated as successors.
    Call {
        /// PC of the call.
        pc: u32,
        /// Absolute target.
        target: u32,
        /// Return address (`pc + 4`, no delay slots).
        fall: u32,
    },
    /// Indirect transfer (`jr`/`jalr`): statically unknown target.
    Indirect {
        /// PC of the indirect jump.
        pc: u32,
        /// Return point when the transfer links (`jalr`), else `None`.
        fall: Option<u32>,
    },
    /// `break` — program exit.
    Break {
        /// PC of the break.
        pc: u32,
    },
    /// The next instruction is a leader; execution falls through.
    FallThrough {
        /// Address of the next block.
        next: u32,
    },
    /// The text segment ends without a terminating transfer.
    TextEnd,
    /// The block ends at a word that does not decode.
    Undecodable {
        /// PC of the undecodable word.
        pc: u32,
    },
}

impl Terminator {
    /// Whether the successor set is statically unknown (conservative
    /// analyses treat everything as live past such blocks).
    pub fn is_unknown_exit(&self) -> bool {
        matches!(
            self,
            Terminator::Indirect { .. }
                | Terminator::Break { .. }
                | Terminator::TextEnd
                | Terminator::Undecodable { .. }
        )
    }
}

/// One basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// PC of the first instruction.
    pub start: u32,
    /// Number of instruction slots covered (including an undecodable
    /// terminator word).
    pub len: usize,
    /// How the block ends.
    pub term: Terminator,
    /// Successor block start PCs (inside the text segment).
    pub succs: Vec<u32>,
    /// Whether the block is reachable from the entry point.
    pub reachable: bool,
}

/// The reconstructed control-flow graph of a program's text segment.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Base address of the text segment.
    pub text_base: u32,
    /// Program entry point.
    pub entry: u32,
    /// Decoded instructions, indexed by `(pc - text_base) / 4`; `None`
    /// where the word does not decode.
    pub insts: Vec<Option<Instruction>>,
    /// Basic blocks in address order.
    pub blocks: Vec<Block>,
    block_index: HashMap<u32, usize>,
}

impl Cfg {
    /// Reconstructs the graph from an assembled program.
    pub fn build(program: &Program) -> Cfg {
        let base = program.text_base;
        let insts = decode_text(program);
        let in_text = |pc: u32| TextWalker::new(base, &insts).in_text(pc);

        // Leaders: entry, text base, control targets, post-terminator pcs.
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(base);
        if in_text(program.entry) {
            leaders.insert(program.entry);
        }
        for (i, inst) in insts.iter().enumerate() {
            let pc = base + (i as u32) * 4;
            let Some(inst) = inst else {
                leaders.insert(pc + 4);
                continue;
            };
            if let Some(t) = inst.branch_target(pc).or_else(|| inst.jump_target(pc)) {
                if in_text(t) {
                    leaders.insert(t);
                }
            }
            if inst.is_control() || matches!(inst, Instruction::Break { .. }) {
                leaders.insert(pc + 4);
            }
        }
        leaders.retain(|&pc| in_text(pc));

        // Carve blocks between leaders/terminators.
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_index = HashMap::new();
        let mut i = 0usize;
        while i < insts.len() {
            let start = base + (i as u32) * 4;
            let mut len = 0usize;
            let term = loop {
                let pc = base + ((i + len) as u32) * 4;
                if i + len >= insts.len() {
                    break Terminator::TextEnd;
                }
                if len > 0 && leaders.contains(&pc) {
                    break Terminator::FallThrough { next: pc };
                }
                len += 1;
                let Some(inst) = insts[i + len - 1] else {
                    break Terminator::Undecodable { pc };
                };
                match inst {
                    Instruction::Branch { .. } => {
                        break Terminator::Branch {
                            pc,
                            taken: inst.branch_target(pc).expect("branch has target"),
                            fall: pc.wrapping_add(4),
                        }
                    }
                    Instruction::J { .. } => {
                        break Terminator::Jump {
                            pc,
                            target: inst.jump_target(pc).expect("jump has target"),
                        }
                    }
                    Instruction::Jal { .. } => {
                        break Terminator::Call {
                            pc,
                            target: inst.jump_target(pc).expect("jump has target"),
                            fall: pc.wrapping_add(4),
                        }
                    }
                    Instruction::Jr { .. } => break Terminator::Indirect { pc, fall: None },
                    Instruction::Jalr { .. } => {
                        break Terminator::Indirect {
                            pc,
                            fall: Some(pc.wrapping_add(4)),
                        }
                    }
                    Instruction::Break { .. } => break Terminator::Break { pc },
                    _ => {}
                }
            };
            let succs = match term {
                Terminator::Branch { taken, fall, .. } => vec![taken, fall],
                Terminator::Jump { target, .. } => vec![target],
                Terminator::Call { target, fall, .. } => vec![target, fall],
                Terminator::Indirect { fall, .. } => fall.into_iter().collect(),
                Terminator::FallThrough { next } => vec![next],
                Terminator::Break { .. } | Terminator::TextEnd | Terminator::Undecodable { .. } => {
                    vec![]
                }
            };
            let succs: Vec<u32> = succs.into_iter().filter(|&pc| in_text(pc)).collect();
            block_index.insert(start, blocks.len());
            blocks.push(Block {
                start,
                len: len.max(1),
                term,
                succs,
                reachable: false,
            });
            i += len.max(1);
        }

        let mut cfg = Cfg {
            text_base: base,
            entry: program.entry,
            insts,
            blocks,
            block_index,
        };
        cfg.mark_reachable();
        cfg
    }

    /// End address of the text segment (exclusive).
    pub fn text_end(&self) -> u32 {
        self.text_base + (self.insts.len() as u32) * 4
    }

    /// Whether `pc` addresses an instruction slot of the text segment.
    pub fn in_text(&self, pc: u32) -> bool {
        self.walker().in_text(pc)
    }

    /// The decoded instruction at `pc`, if inside text and decodable.
    pub fn inst_at(&self, pc: u32) -> Option<Instruction> {
        self.walker().inst_at(pc)
    }

    /// A [`TextWalker`] view over this graph's decoded text — the
    /// shared fetch helper the prover's loop-body walk runs on.
    pub fn walker(&self) -> TextWalker<'_> {
        TextWalker::new(self.text_base, &self.insts)
    }

    /// Index of the block starting at `pc`.
    pub fn block_at(&self, pc: u32) -> Option<usize> {
        self.block_index.get(&pc).copied()
    }

    /// Predecessor indices per block.
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, block) in self.blocks.iter().enumerate() {
            for &succ in &block.succs {
                if let Some(s) = self.block_at(succ) {
                    preds[s].push(b);
                }
            }
        }
        preds
    }

    /// Instructions of one block as `(pc, Option<Instruction>)`.
    pub fn block_insts(
        &self,
        block: &Block,
    ) -> impl Iterator<Item = (u32, Option<Instruction>)> + '_ {
        let start = ((block.start - self.text_base) / 4) as usize;
        (start..start + block.len).map(move |i| (self.text_base + (i as u32) * 4, self.insts[i]))
    }

    fn mark_reachable(&mut self) {
        let entry_block = self
            .block_at(self.entry)
            .or_else(|| self.block_at(self.text_base));
        let Some(entry_block) = entry_block else {
            return;
        };
        let mut queue = VecDeque::from([entry_block]);
        while let Some(b) = queue.pop_front() {
            if self.blocks[b].reachable {
                continue;
            }
            self.blocks[b].reachable = true;
            let succs = self.blocks[b].succs.clone();
            for pc in succs {
                if let Some(s) = self.block_at(pc) {
                    if !self.blocks[s].reachable {
                        queue.push_back(s);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mips::asm::assemble;

    fn cfg_of(src: &str) -> Cfg {
        Cfg::build(&assemble(src).expect("assembles"))
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = cfg_of("main: li $t0, 1\n li $t1, 2\n break 0");
        assert_eq!(cfg.blocks.len(), 1, "{:?}", cfg.blocks);
        assert!(matches!(cfg.blocks[0].term, Terminator::Break { .. }));
        assert!(cfg.blocks[0].reachable);
        assert_eq!(cfg.blocks[0].len, 3);
    }

    #[test]
    fn branch_splits_blocks_and_marks_targets() {
        let cfg = cfg_of(
            "main: li $s0, 4
             loop: addiu $s0, $s0, -1
                   bnez $s0, loop
                   break 0",
        );
        let loop_pc = cfg.text_base + 4;
        assert!(cfg.block_at(loop_pc).is_some(), "branch target is a leader");
        let loop_block = &cfg.blocks[cfg.block_at(loop_pc).unwrap()];
        assert!(matches!(loop_block.term, Terminator::Branch { .. }));
        assert_eq!(loop_block.succs.len(), 2);
        assert!(cfg.blocks.iter().all(|b| b.reachable));
    }

    #[test]
    fn unreachable_block_detected() {
        let cfg = cfg_of(
            "main: j end
             dead: li $t0, 1
                   li $t1, 2
             end:  break 0",
        );
        let dead_pc = cfg.text_base + 4;
        let dead = &cfg.blocks[cfg.block_at(dead_pc).unwrap()];
        assert!(!dead.reachable);
        let end = cfg
            .blocks
            .iter()
            .find(|b| matches!(b.term, Terminator::Break { .. }));
        assert!(end.unwrap().reachable);
    }

    #[test]
    fn call_has_target_and_return_successors() {
        let cfg = cfg_of(
            "main: jal fn
                   break 0
             fn:   jr $ra",
        );
        let first = &cfg.blocks[0];
        assert!(matches!(first.term, Terminator::Call { .. }));
        assert_eq!(first.succs.len(), 2);
        let fn_block = cfg
            .blocks
            .iter()
            .find(|b| matches!(b.term, Terminator::Indirect { .. }));
        assert!(fn_block.unwrap().term.is_unknown_exit());
    }
}
