//! The resume journal.
//!
//! A sweep writes one `done <cell-id> <fnv64-hex>` line per completed
//! cell, appended and flushed *after* the cell's result file has been
//! atomically renamed into place. On restart, a cell is skipped only if
//! its journal entry exists **and** the result file on disk hashes to
//! the recorded checksum — so a kill between rename and journal append
//! merely re-runs one cell, and a corrupted or hand-edited result file
//! is detected and regenerated rather than trusted.
//!
//! Malformed journal lines (a torn final append) are ignored, not
//! fatal: the worst outcome is re-executing the cell the line was for.

use dim_core::fnv1a64;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Append-only completed-cell log.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl Journal {
    /// Reads the completed-cell map (`id -> result checksum`) from an
    /// existing journal; missing file means an empty map.
    ///
    /// # Errors
    ///
    /// I/O errors other than the file not existing.
    pub fn read(path: &Path) -> io::Result<HashMap<String, u64>> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut text)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(HashMap::new()),
            Err(e) => return Err(e),
        }
        let mut done = HashMap::new();
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            let (Some("done"), Some(id), Some(hex)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            if parts.next().is_some() {
                continue;
            }
            if let Ok(checksum) = u64::from_str_radix(hex, 16) {
                done.insert(id.to_string(), checksum);
            }
        }
        Ok(done)
    }

    /// Opens the journal for appending, creating it (and parent
    /// directories) if needed.
    ///
    /// # Errors
    ///
    /// Underlying filesystem errors.
    pub fn open_append(path: &Path) -> io::Result<Journal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            file: Mutex::new(file),
            path: path.to_path_buf(),
        })
    }

    /// Records one completed cell; flushed before returning so a
    /// subsequent crash cannot lose the entry.
    ///
    /// # Errors
    ///
    /// Underlying filesystem errors.
    pub fn record(&self, id: &str, checksum: u64) -> io::Result<()> {
        let mut file = self.file.lock().unwrap();
        writeln!(file, "done {id} {checksum:016x}")?;
        file.flush()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Whether a cell's prior result is intact: journaled, present on disk,
/// and matching the recorded checksum.
pub fn cell_is_done(done: &HashMap<String, u64>, id: &str, result_path: &Path) -> bool {
    let Some(&want) = done.get(id) else {
        return false;
    };
    match std::fs::read(result_path) {
        Ok(bytes) => fnv1a64(&bytes) == want,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dim-sweep-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_and_tolerant_read() {
        let dir = scratch("rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.txt");
        let journal = Journal::open_append(&path).unwrap();
        journal.record("cell-a", 0xdead_beef).unwrap();
        journal.record("cell-b", 42).unwrap();
        // A torn partial line must be skipped, not fatal.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "done cell-c").unwrap();
        }
        let done = Journal::read(&path).unwrap();
        assert_eq!(done.get("cell-a"), Some(&0xdead_beef));
        assert_eq!(done.get("cell-b"), Some(&42));
        assert!(!done.contains_key("cell-c"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_journal_is_empty() {
        let done = Journal::read(Path::new("/nonexistent/journal.txt")).unwrap();
        assert!(done.is_empty());
    }

    #[test]
    fn done_requires_matching_file() {
        let dir = scratch("done");
        std::fs::create_dir_all(&dir).unwrap();
        let result = dir.join("cell.json");
        std::fs::write(&result, b"{\"x\":1}").unwrap();
        let sum = fnv1a64(b"{\"x\":1}");
        let mut done = HashMap::new();
        done.insert("cell".to_string(), sum);
        assert!(cell_is_done(&done, "cell", &result));
        // Wrong checksum -> re-run.
        done.insert("cell".to_string(), sum ^ 1);
        assert!(!cell_is_done(&done, "cell", &result));
        // Missing file -> re-run.
        done.insert("cell".to_string(), sum);
        assert!(!cell_is_done(&done, "cell", &dir.join("gone.json")));
        // Unjournaled -> re-run.
        assert!(!cell_is_done(&done, "other", &result));
        std::fs::remove_dir_all(&dir).ok();
    }
}
