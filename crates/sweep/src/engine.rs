//! Sweep execution: expansion → (resume filtering) → parallel run →
//! deterministic aggregation.
//!
//! Determinism contract: everything under `cells/` and the final
//! `report.txt` depends only on the spec and the simulators — never on
//! wall-clock, worker count or completion order — so a parallel sweep
//! is byte-identical to `--jobs 1`. Host-dependent material (timing,
//! steal counts, queue-depth histograms, the live `status.dimstat`
//! board, and `flight/` failure dumps) is confined to `summary.json`,
//! `telemetry.json`, `trend.jsonl`, `BENCH_sweep.json`, and those
//! files — never `cells/` or `report.txt`.

use crate::fsio::atomic_write;
use crate::journal::{cell_is_done, Journal};
use crate::panichook::capture_panics;
use crate::pool::{execute_jobs, PoolStats};
use crate::spec::{CellSpec, SweepSpec};
use dim_core::fnv1a64;
use dim_core::System;
use dim_mips_sim::{HaltReason, Machine};
use dim_obs::status::{write_status, StatusEntry, StatusFile, StatusPulse, STATUS_FILE_NAME};
use dim_obs::{
    FlightGuard, MonotonicClock, ObjectWriter, Probe as _, SharedClock, SpanId, SpanSheet,
    SPAN_FILE_NAME,
};
use dim_workloads::{run_baseline, validate};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// Sweep failure.
#[derive(Debug)]
pub enum SweepError {
    /// Filesystem trouble.
    Io(io::Error),
    /// A cell failed to simulate or validate. Completed cells stay
    /// journaled; rerunning the sweep retries only the failures.
    Cell {
        /// The failing cell's id.
        id: String,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "sweep I/O error: {e}"),
            SweepError::Cell { id, reason } => write!(f, "cell `{id}` failed: {reason}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> Self {
        SweepError::Io(e)
    }
}

/// Execution options orthogonal to the spec.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Output directory (journal, cell results, report, summary).
    pub out_dir: PathBuf,
    /// Worker threads; 1 = serial.
    pub jobs: usize,
    /// Run at most this many pending cells this invocation (used to
    /// exercise resume deterministically; `None` = all).
    pub limit: Option<usize>,
    /// Overrides the spec's `warm_rcache` setting when set.
    pub warm_rcache: Option<bool>,
    /// Also trace each cell and write a per-region forensics report to
    /// `explain/<id>.json`. Host-convenience output: like the telemetry
    /// files it sits outside the determinism contract (`cells/` and
    /// `report.txt` stay byte-identical with or without it).
    pub explain: bool,
    /// Per-worker flight-recorder window (events). Every cell runs with
    /// an always-on recorder plus the invariant watchdog; on a cell
    /// failure, panic, or watchdog trip the retained window is dumped
    /// to `flight/<id>.jsonl`. 0 disables both. Probes are
    /// cycle-neutral, so cell results are byte-identical either way.
    pub flight_capacity: usize,
    /// Live-status publish interval in simulated cycles (also the
    /// `--explain` trace's telemetry interval). 0 keeps the default
    /// pulse cadence.
    pub telemetry_interval: u64,
}

/// Default flight-recorder window per worker (events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Default live-status publish cadence (simulated cycles).
const DEFAULT_PULSE_CYCLES: u64 = 250_000;

impl SweepOptions {
    /// Serial execution into `out_dir` with spec-default warm behaviour
    /// and the always-on flight recorder at its default window.
    pub fn new(out_dir: PathBuf) -> SweepOptions {
        SweepOptions {
            out_dir,
            jobs: 1,
            limit: None,
            warm_rcache: None,
            explain: false,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            telemetry_interval: 0,
        }
    }
}

/// What one invocation did.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Cells in the expanded grid.
    pub total_cells: usize,
    /// Cells executed by this invocation.
    pub executed: usize,
    /// Cells skipped because the journal + result checksum proved them
    /// already done.
    pub skipped: usize,
    /// Whether every cell in the grid now has a valid result (false
    /// after a `limit`-truncated run).
    pub complete: bool,
    /// Wall-clock for this invocation's execution phase.
    pub wall_seconds: f64,
    /// Pool statistics for this invocation.
    pub pool: PoolStats,
}

struct CellRun {
    json: String,
    warm_loaded: bool,
    /// Counters for the live status board (host-side only).
    retired: u64,
    sim_cycles: u64,
    invocations: u64,
    rcache_hits: u64,
    rcache_misses: u64,
    misspeculations: u64,
    fabric_busy_thirds: u64,
    fabric_capacity_thirds: u64,
}

fn cell_result_path(out_dir: &Path, id: &str) -> PathBuf {
    out_dir.join("cells").join(format!("{id}.json"))
}

fn cell_snapshot_path(out_dir: &Path, id: &str) -> PathBuf {
    out_dir.join("rcache").join(format!("{id}.dimrc"))
}

fn cell_explain_path(out_dir: &Path, id: &str) -> PathBuf {
    out_dir.join("explain").join(format!("{id}.json"))
}

fn cell_flight_path(out_dir: &Path, id: &str) -> PathBuf {
    out_dir.join("flight").join(format!("{id}.jsonl"))
}

fn cell_heat_path(out_dir: &Path, id: &str) -> PathBuf {
    out_dir.join("heat").join(format!("{id}.json"))
}

/// The shared live-status board for one sweep invocation: entry 0
/// aggregates the whole sweep, entries `1..=threads` track workers.
/// Every mutation atomically republishes `status.dimstat`; write errors
/// are swallowed because status is advisory host-side output.
struct StatusBoard {
    path: PathBuf,
    entries: Mutex<Vec<StatusEntry>>,
}

impl StatusBoard {
    fn new(path: PathBuf, threads: usize, total_cells: u64, skipped: u64) -> StatusBoard {
        let mut entries = vec![StatusEntry {
            source: "sweep".into(),
            label: format!("{total_cells} cells"),
            state: "running".into(),
            done: skipped,
            total: total_cells,
            ..Default::default()
        }];
        for w in 0..threads {
            entries.push(StatusEntry {
                source: format!("worker-{w}"),
                state: "idle".into(),
                ..Default::default()
            });
        }
        StatusBoard {
            path,
            entries: Mutex::new(entries),
        }
    }

    fn update(&self, f: impl FnOnce(&mut Vec<StatusEntry>)) {
        let mut entries = self.entries.lock().expect("status board lock");
        f(&mut entries);
        let file = StatusFile {
            entries: entries.clone(),
        };
        // Serialized under the lock so concurrent workers never
        // interleave temp-file writes.
        let _ = write_status(&self.path, &file);
    }
}

/// Everything a cell run needs beyond the cell itself.
struct CellCtx<'a> {
    warm: bool,
    explain: bool,
    flight_capacity: usize,
    telemetry_interval: u64,
    out_dir: &'a Path,
    /// Live-status board and the index of the worker running this cell.
    status: Option<(&'a StatusBoard, usize)>,
    /// Span sheet and this cell's root span, when span tracing is on.
    /// Spans are host-side wall-clock material — like the status board
    /// they never influence the deterministic cell result.
    spans: Option<(&'a SpanSheet, SpanId)>,
}

/// On failure, preserves the black box: writes the flight window (the
/// trip-time dump if the watchdog fired, else the window as of now) to
/// `flight/<id>.jsonl` and appends its path to the failure reason.
fn with_flight_dump(
    reason: String,
    guard: Option<&FlightGuard>,
    out_dir: &Path,
    id: &str,
) -> String {
    let Some(guard) = guard else {
        return reason;
    };
    let dump = guard
        .trip_dump()
        .map_or_else(|| guard.dump(), str::to_string);
    let path = cell_flight_path(out_dir, id);
    match atomic_write(&path, dump.as_bytes()) {
        Ok(()) => format!("{reason}; flight dump: {}", path.display()),
        Err(e) => format!("{reason}; flight dump write failed: {e}"),
    }
}

/// Simulates one cell and renders its deterministic result JSON.
fn run_cell(cell: &CellSpec, baseline_cycles: u64, ctx: &CellCtx<'_>) -> Result<CellRun, String> {
    let spec = dim_workloads::by_name(&cell.workload)
        .ok_or_else(|| format!("unknown workload `{}`", cell.workload))?;
    let built = (spec.build)(cell.scale);
    let mut system = System::new(Machine::load(&built.program), cell.system_config());
    let out_dir = ctx.out_dir;
    let span = |stage: &'static str| ctx.spans.map(|(sheet, root)| sheet.guard(stage, root));
    if let Some((sheet, _)) = ctx.spans {
        system.enable_host_split(Arc::clone(sheet.clock()));
    }

    let mut warm_loaded = false;
    if ctx.warm {
        let warm_span = span("warm_load");
        let snapshot_path = cell_snapshot_path(out_dir, &cell.id);
        if let Ok(bytes) = std::fs::read(&snapshot_path) {
            match system.load_rcache(&bytes) {
                Ok(()) => warm_loaded = true,
                Err(e) => return Err(format!("stale rcache snapshot rejected: {e}")),
            }
        }
        drop(warm_span);
    }

    // The always-on black box: flight recorder + invariant watchdog.
    // Warm-start entries were inserted before probing began, so they
    // are seeded as resident or the hit-without-insert law would
    // false-positive.
    let mut guard = (ctx.flight_capacity > 0).then(|| {
        let mut g = FlightGuard::new(
            &cell.id,
            ctx.flight_capacity,
            cell.slots,
            system.stored_bits_per_config(),
        );
        for config in system.cache().iter() {
            g.watchdog_mut().seed_resident(config.entry_pc);
        }
        g
    });

    // `--explain` runs through the probe sink; the probes are
    // cycle-neutral, so the deterministic cell result is identical
    // either way — only the side-channel trace differs.
    let mut sink = ctx.explain.then(|| {
        let mut s = dim_obs::JsonlSink::new(Vec::new(), &cell.id, system.stored_bits_per_config());
        if ctx.telemetry_interval > 0 {
            s.set_telemetry_interval(ctx.telemetry_interval);
        }
        s
    });

    // Live per-worker progress for `dim top`, published mid-cell.
    let mut pulse = ctx.status.map(|(board, worker)| {
        let entry = StatusEntry {
            source: format!("worker-{worker}"),
            label: cell.id.clone(),
            state: "running".into(),
            total: 1,
            ..Default::default()
        };
        let interval = if ctx.telemetry_interval > 0 {
            ctx.telemetry_interval
        } else {
            DEFAULT_PULSE_CYCLES
        };
        StatusPulse::new(entry, interval, move |e: &StatusEntry| {
            board.update(|entries| entries[worker + 1] = e.clone());
        })
    });

    let use_probes = guard.is_some() || sink.is_some() || pulse.is_some();
    let exec_span = ctx
        .spans
        .map_or(SpanId::NONE, |(sheet, root)| sheet.begin("execute", root));
    let run_result = if use_probes {
        let mut probe = (sink.as_mut(), (guard.as_mut(), pulse.as_mut()));
        capture_panics(|| {
            let halt = system.run_probed(built.max_steps, &mut probe);
            probe.finish();
            halt
        })
    } else {
        capture_panics(|| system.run(built.max_steps))
    };
    if let Some((sheet, _)) = ctx.spans {
        // Host-time attribution goes on the execute span even when a
        // later check fails, so failed cells still carry a breakdown.
        if let Some(split) = system.host_split() {
            sheet.attr(exec_span, split);
        }
        sheet.end(exec_span);
    }

    let fail = |reason: String, guard: Option<&FlightGuard>| {
        with_flight_dump(reason, guard, out_dir, &cell.id)
    };

    let halt = match run_result {
        Ok(halt) => halt,
        Err(panic_msg) => {
            return Err(fail(format!("worker panic: {panic_msg}"), guard.as_ref()));
        }
    };
    match halt {
        Ok(HaltReason::Exit(_)) => {}
        Ok(HaltReason::StepLimit) => {
            return Err(fail(
                format!("did not halt within {} instructions", built.max_steps),
                guard.as_ref(),
            ))
        }
        Err(e) => return Err(fail(format!("simulation failed: {e}"), guard.as_ref())),
    }
    if let Some(violation) = guard.as_ref().and_then(FlightGuard::violation) {
        return Err(fail(
            format!("watchdog tripped: {violation}"),
            guard.as_ref(),
        ));
    }
    {
        let validate_span = span("validate");
        if let Err(e) = validate(system.machine(), &built) {
            return Err(fail(format!("validation failed: {e}"), guard.as_ref()));
        }
        drop(validate_span);
    }

    let mut trace_text = None;
    if let Some(sink) = sink.take() {
        let (buf, io_error) = sink.into_inner();
        if let Some(e) = io_error {
            return Err(format!("trace capture failed: {e}"));
        }
        trace_text = Some(String::from_utf8(buf).map_err(|e| e.to_string())?);
    }

    let persist_span = span("persist");
    if let Some(text) = trace_text {
        let ex = dim_explain::explain_text(&text).map_err(|e| format!("explain failed: {e}"))?;
        let mut json = ex.to_json();
        json.push('\n');
        atomic_write(&cell_explain_path(out_dir, &cell.id), json.as_bytes())
            .map_err(|e| format!("explain write failed: {e}"))?;
    }

    if ctx.warm {
        let bytes = system.save_rcache();
        atomic_write(&cell_snapshot_path(out_dir, &cell.id), &bytes)
            .map_err(|e| format!("snapshot write failed: {e}"))?;
    }

    // Per-cell fabric heat summary for `heat/<id>.json`. Derived from
    // the deterministic heat counters alone, so serial and parallel
    // sweeps write byte-identical files; still host-convenience output
    // like `explain/` — `cells/` and `report.txt` are unaffected.
    let mut heat_json = dim_core::fabric_heat_json(system.fabric_heat());
    heat_json.push('\n');
    atomic_write(&cell_heat_path(out_dir, &cell.id), heat_json.as_bytes())
        .map_err(|e| format!("heat write failed: {e}"))?;
    drop(persist_span);

    let accel_cycles = system.total_cycles();
    let stats = system.stats();
    let (hits, misses) = system.cache().hit_miss();

    let mut dim = ObjectWriter::new();
    dim.field_u64("array_invocations", stats.array_invocations)
        .field_u64("array_instructions", stats.array_instructions)
        .field_u64("array_exec_cycles", stats.array_exec_cycles)
        .field_u64("reconfig_stall_cycles", stats.reconfig_stall_cycles)
        .field_u64("writeback_tail_cycles", stats.writeback_tail_cycles)
        .field_u64("full_hits", stats.full_hits)
        .field_u64("misspeculations", stats.misspeculations)
        .field_u64("config_flushes", stats.config_flushes)
        .field_u64("configs_built", stats.configs_built)
        .field_u64("translated_instructions", stats.translated_instructions);
    let mut cache = ObjectWriter::new();
    cache
        .field_u64("hits", hits)
        .field_u64("misses", misses)
        .field_u64("insertions", system.cache().insertions())
        .field_u64("evictions", system.cache().evictions())
        .field_u64("flushes", system.cache().flushes())
        .field_u64("resident", system.cache().len() as u64);

    let speedup = if accel_cycles == 0 {
        0.0
    } else {
        baseline_cycles as f64 / accel_cycles as f64
    };
    let mut w = ObjectWriter::new();
    w.field_u64("index", cell.index as u64)
        .field_str("id", &cell.id)
        .field_str("workload", &cell.workload)
        .field_str("shape", cell.shape_key())
        .field_u64("slots", cell.slots as u64)
        .field_bool("speculation", cell.speculation)
        .field_u64("max_spec_blocks", cell.max_spec_blocks as u64)
        .field_u64("flush_threshold", cell.flush_threshold as u64)
        .field_str(
            "policy",
            match cell.policy {
                dim_core::ReplacementPolicy::Fifo => "fifo",
                dim_core::ReplacementPolicy::Lru => "lru",
            },
        )
        .field_bool("warm_loaded", warm_loaded)
        .field_u64("baseline_cycles", baseline_cycles)
        .field_u64("accel_cycles", accel_cycles)
        .field_f64("speedup", speedup)
        .field_raw("dim", &dim.finish())
        .field_raw("cache", &cache.finish());
    let mut json = w.finish();
    json.push('\n');
    Ok(CellRun {
        json,
        warm_loaded,
        retired: system.machine().stats.instructions,
        sim_cycles: accel_cycles,
        invocations: stats.array_invocations,
        rcache_hits: hits,
        rcache_misses: misses,
        misspeculations: stats.misspeculations,
        fabric_busy_thirds: system.fabric_heat().total_busy_thirds(),
        fabric_capacity_thirds: system.fabric_heat().total_capacity_thirds(),
    })
}

/// Runs (or resumes) a sweep.
///
/// # Errors
///
/// I/O failures, or the first failing cell (already-finished cells stay
/// journaled either way, so rerunning retries only the remainder).
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> Result<SweepOutcome, SweepError> {
    let cells = spec.expand();
    let warm = opts.warm_rcache.unwrap_or(spec.warm_rcache);
    let explain = opts.explain;
    let out_dir = &opts.out_dir;
    std::fs::create_dir_all(out_dir)?;

    let journal_path = out_dir.join("journal.txt");
    let done = Journal::read(&journal_path)?;
    let mut pending: Vec<&CellSpec> = cells
        .iter()
        .filter(|c| !cell_is_done(&done, &c.id, &cell_result_path(out_dir, &c.id)))
        .collect();
    let skipped = cells.len() - pending.len();
    if let Some(limit) = opts.limit {
        pending.truncate(limit);
    }

    // Baselines are shared per workload (the grid only varies
    // accelerator parameters), so run them once, serially, up front.
    let mut baselines: HashMap<&str, u64> = HashMap::new();
    for cell in &pending {
        if !baselines.contains_key(cell.workload.as_str()) {
            let spec = dim_workloads::by_name(&cell.workload).expect("validated at parse");
            let built = (spec.build)(cell.scale);
            let machine = run_baseline(&built).map_err(|e| SweepError::Cell {
                id: format!("{}-baseline", cell.workload),
                reason: e.to_string(),
            })?;
            baselines.insert(cell.workload.as_str(), machine.stats.cycles);
        }
    }

    let journal = Journal::open_append(&journal_path)?;
    // Host-side per-cell wall times: collected under a lock in whatever
    // order cells finish, sorted by id before writing so the telemetry
    // file itself is stable apart from the times.
    let cell_wall: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());
    let threads = opts.jobs.max(1);
    let board = StatusBoard::new(
        out_dir.join(STATUS_FILE_NAME),
        threads,
        cells.len() as u64,
        skipped as u64,
    );
    board.update(|_| {});
    // Wall-clock span tracing: one root per cell (tenant = workload,
    // seq = grid index) with warm_load / execute / validate / persist
    // children. Sized so a full run never drops: 5 spans per cell.
    let clock: SharedClock = MonotonicClock::shared();
    let spans = SpanSheet::new(Arc::clone(&clock), pending.len() * 5 + 8);
    let start_nanos = clock.now_nanos();
    let jobs: Vec<_> = pending
        .iter()
        .map(|cell| {
            let cell = (*cell).clone();
            let baseline = baselines[cell.workload.as_str()];
            let journal = &journal;
            let cell_wall = &cell_wall;
            let board = &board;
            let clock = &clock;
            let spans = &spans;
            move |w: usize| -> Result<(), SweepError> {
                let cell_started = clock.now_nanos();
                let root = spans.begin_root("cell", &cell.workload, cell.index as u64);
                let ctx = CellCtx {
                    warm,
                    explain,
                    flight_capacity: opts.flight_capacity,
                    telemetry_interval: opts.telemetry_interval,
                    out_dir,
                    status: Some((board, w)),
                    spans: Some((spans, root)),
                };
                let result = run_cell(&cell, baseline, &ctx);
                spans.end(root);
                let run = result.map_err(|reason| {
                    board.update(|entries| {
                        entries[w + 1].state = "failed".into();
                        entries[w + 1].label = cell.id.clone();
                    });
                    SweepError::Cell {
                        id: cell.id.clone(),
                        reason,
                    }
                })?;
                let path = cell_result_path(out_dir, &cell.id);
                atomic_write(&path, run.json.as_bytes())?;
                journal.record(&cell.id, fnv1a64(run.json.as_bytes()))?;
                let _ = run.warm_loaded;
                let cell_nanos = clock.now_nanos().saturating_sub(cell_started);
                board.update(|entries| {
                    let worker = &mut entries[w + 1];
                    worker.state = "idle".into();
                    worker.label = cell.id.clone();
                    worker.done = 1;
                    worker.total = 1;
                    worker.retired = run.retired;
                    worker.sim_cycles = run.sim_cycles;
                    worker.invocations = run.invocations;
                    worker.rcache_hits = run.rcache_hits;
                    worker.rcache_misses = run.rcache_misses;
                    worker.misspeculations = run.misspeculations;
                    worker.fabric_busy_thirds = run.fabric_busy_thirds;
                    worker.fabric_capacity_thirds = run.fabric_capacity_thirds;
                    worker.host_nanos = cell_nanos;
                    let agg = &mut entries[0];
                    agg.done += 1;
                    agg.retired += run.retired;
                    agg.sim_cycles += run.sim_cycles;
                    agg.invocations += run.invocations;
                    agg.rcache_hits += run.rcache_hits;
                    agg.rcache_misses += run.rcache_misses;
                    agg.misspeculations += run.misspeculations;
                    agg.fabric_busy_thirds += run.fabric_busy_thirds;
                    agg.fabric_capacity_thirds += run.fabric_capacity_thirds;
                    agg.host_nanos = clock.now_nanos().saturating_sub(start_nanos);
                });
                cell_wall
                    .lock()
                    .expect("telemetry lock")
                    .push((cell.id.clone(), cell_nanos));
                Ok(())
            }
        })
        .collect();
    let executed = jobs.len();
    let (results, pool) = execute_jobs(jobs, opts.jobs);
    let wall_seconds = clock.now_nanos().saturating_sub(start_nanos) as f64 / 1e9;
    let mut failure = None;
    for result in results {
        if let Err(e) = result {
            failure = Some(e);
            break;
        }
    }
    let final_state = if failure.is_some() { "failed" } else { "done" };
    board.update(|entries| {
        entries[0].state = final_state.into();
        entries[0].host_nanos = clock.now_nanos().saturating_sub(start_nanos);
    });
    // Dump whatever spans were recorded even when a cell failed — the
    // waterfall up to the failure is exactly what a postmortem wants.
    if executed > 0 {
        atomic_write(&out_dir.join(SPAN_FILE_NAME), spans.render().as_bytes())?;
    }
    if let Some(e) = failure {
        return Err(e);
    }

    let complete = skipped + executed == cells.len();
    if complete {
        let report = render_report(spec, &cells, out_dir)?;
        atomic_write(&out_dir.join("report.txt"), report.as_bytes())?;
    }

    let outcome = SweepOutcome {
        total_cells: cells.len(),
        executed,
        skipped,
        complete,
        wall_seconds,
        pool,
    };
    let mut w = ObjectWriter::new();
    w.field_u64("total_cells", outcome.total_cells as u64)
        .field_u64("executed", outcome.executed as u64)
        .field_u64("skipped", outcome.skipped as u64)
        .field_bool("complete", outcome.complete)
        .field_u64("jobs", opts.jobs.max(1) as u64)
        .field_bool("warm_rcache", warm)
        .field_str("scale", spec.scale_key())
        .field_f64("wall_seconds", outcome.wall_seconds)
        .field_raw("pool", &outcome.pool.to_json());
    let mut summary = w.finish();
    summary.push('\n');
    atomic_write(&out_dir.join("summary.json"), summary.as_bytes())?;

    write_telemetry(out_dir, cell_wall.into_inner().expect("telemetry lock"))?;
    append_trend(out_dir, &outcome, opts.jobs.max(1))?;

    Ok(outcome)
}

/// Writes per-cell wall times to `telemetry.json` (host-side data, so
/// outside the determinism contract; the id order is still stable).
fn write_telemetry(out_dir: &Path, mut wall: Vec<(String, u64)>) -> Result<(), SweepError> {
    if wall.is_empty() {
        return Ok(());
    }
    wall.sort_by(|a, b| a.0.cmp(&b.0));
    let total: u64 = wall.iter().map(|(_, n)| n).sum();
    let mut cells = String::from("[");
    for (i, (id, nanos)) in wall.iter().enumerate() {
        if i > 0 {
            cells.push(',');
        }
        let mut o = ObjectWriter::new();
        o.field_str("id", id).field_u64("wall_nanos", *nanos);
        cells.push_str(&o.finish());
    }
    cells.push(']');
    let mut w = ObjectWriter::new();
    w.field_u64("executed", wall.len() as u64)
        .field_u64("total_wall_nanos", total)
        .field_raw("cells", &cells);
    let mut json = w.finish();
    json.push('\n');
    atomic_write(&out_dir.join("telemetry.json"), json.as_bytes())?;
    Ok(())
}

/// Appends one line per invocation to `trend.jsonl`, the sweep's
/// throughput history across runs — resumable sweeps accumulate one
/// record per invocation, so throughput drift stays visible over time.
fn append_trend(out_dir: &Path, outcome: &SweepOutcome, jobs: usize) -> Result<(), SweepError> {
    if outcome.executed == 0 {
        return Ok(());
    }
    let unix_seconds = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let throughput = if outcome.wall_seconds > 0.0 {
        outcome.executed as f64 / outcome.wall_seconds
    } else {
        0.0
    };
    let mut w = ObjectWriter::new();
    w.field_u64("unix_seconds", unix_seconds)
        .field_u64("executed", outcome.executed as u64)
        .field_u64("skipped", outcome.skipped as u64)
        .field_u64("total_cells", outcome.total_cells as u64)
        .field_bool("complete", outcome.complete)
        .field_u64("jobs", jobs as u64)
        .field_f64("wall_seconds", outcome.wall_seconds)
        .field_f64("cells_per_second", throughput);
    let mut line = w.finish();
    line.push('\n');
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_dir.join("trend.jsonl"))?;
    file.write_all(line.as_bytes())?;
    Ok(())
}

/// Renders the deterministic cross-cell report from the on-disk cell
/// results (index order, fixed-width columns).
fn render_report(
    spec: &SweepSpec,
    cells: &[CellSpec],
    out_dir: &Path,
) -> Result<String, SweepError> {
    let id_width = cells.iter().map(|c| c.id.len()).max().unwrap_or(2).max(2);
    let mut out = format!(
        "DIM sweep: {} cells, scale {}\n\n{:<id_width$}  {:>12}  {:>12}  {:>8}\n",
        cells.len(),
        spec.scale_key(),
        "id",
        "baseline",
        "accel",
        "speedup",
    );
    for cell in cells {
        let bytes = std::fs::read(cell_result_path(out_dir, &cell.id))?;
        let text = String::from_utf8_lossy(&bytes);
        let value = dim_obs::parse_json(&text).map_err(|e| SweepError::Cell {
            id: cell.id.clone(),
            reason: format!("unreadable result file: {e}"),
        })?;
        let field = |k: &str| {
            value
                .get(k)
                .and_then(dim_obs::JsonValue::as_u64)
                .unwrap_or(0)
        };
        let baseline = field("baseline_cycles");
        let accel = field("accel_cycles");
        let speedup = if accel == 0 {
            0.0
        } else {
            baseline as f64 / accel as f64
        };
        out.push_str(&format!(
            "{:<id_width$}  {baseline:>12}  {accel:>12}  {speedup:>8.3}\n",
            cell.id,
        ));
    }
    Ok(out)
}

/// Serial-vs-parallel comparison for `BENCH_sweep.json`.
#[derive(Debug)]
pub struct BenchCompare {
    /// Cells per side.
    pub cells: usize,
    /// Serial (`--jobs 1`) wall-clock.
    pub serial_seconds: f64,
    /// Parallel wall-clock.
    pub parallel_seconds: f64,
    /// Worker threads used for the parallel side.
    pub jobs: usize,
    /// Whether every parallel cell result was byte-identical to serial.
    pub identical: bool,
    /// serial/parallel wall-clock ratio (1.0 when parallel is 0).
    pub speedup: f64,
}

/// Runs the same sweep serially and with `jobs` workers into sibling
/// directories under `out_base`, verifies the results are
/// byte-identical, and writes `BENCH_sweep.json`.
///
/// # Errors
///
/// Propagates either side's sweep failure or I/O errors.
pub fn bench_compare(
    spec: &SweepSpec,
    out_base: &Path,
    jobs: usize,
) -> Result<BenchCompare, SweepError> {
    let serial_dir = out_base.join("serial");
    let parallel_dir = out_base.join("parallel");

    let mut serial_opts = SweepOptions::new(serial_dir.clone());
    serial_opts.jobs = 1;
    let serial = run_sweep(spec, &serial_opts)?;

    let mut parallel_opts = SweepOptions::new(parallel_dir.clone());
    parallel_opts.jobs = jobs.max(1);
    let parallel = run_sweep(spec, &parallel_opts)?;

    let mut identical = true;
    for cell in spec.expand() {
        let a = std::fs::read(cell_result_path(&serial_dir, &cell.id))?;
        let b = std::fs::read(cell_result_path(&parallel_dir, &cell.id))?;
        if a != b {
            identical = false;
        }
        // Heat summaries derive from deterministic counters, so they
        // share the byte-identity guarantee with `cells/`.
        let a = std::fs::read(cell_heat_path(&serial_dir, &cell.id))?;
        let b = std::fs::read(cell_heat_path(&parallel_dir, &cell.id))?;
        if a != b {
            identical = false;
        }
    }
    let report_a = std::fs::read(serial_dir.join("report.txt"))?;
    let report_b = std::fs::read(parallel_dir.join("report.txt"))?;
    if report_a != report_b {
        identical = false;
    }

    let compare = BenchCompare {
        cells: serial.total_cells,
        serial_seconds: serial.wall_seconds,
        parallel_seconds: parallel.wall_seconds,
        jobs: parallel_opts.jobs,
        identical,
        speedup: if parallel.wall_seconds > 0.0 {
            serial.wall_seconds / parallel.wall_seconds
        } else {
            1.0
        },
    };
    let mut w = ObjectWriter::new();
    w.field_str("bench", "sweep_parallel_scaling")
        .field_u64("cells", compare.cells as u64)
        .field_u64("jobs", compare.jobs as u64)
        .field_f64("serial_seconds", compare.serial_seconds)
        .field_f64("parallel_seconds", compare.parallel_seconds)
        .field_f64("speedup", compare.speedup)
        .field_bool("identical_results", compare.identical)
        .field_raw("serial_pool", &serial.pool.to_json())
        .field_raw("parallel_pool", &parallel.pool.to_json());
    let mut json = w.finish();
    json.push('\n');
    atomic_write(&out_base.join("BENCH_sweep.json"), json.as_bytes())?;
    Ok(compare)
}
