//! Atomic result-file writes.
//!
//! Every artifact a sweep produces (cell results, snapshots, reports) is
//! written through [`atomic_write`]: the bytes land in a process-unique
//! temporary file in the destination directory and are renamed into
//! place. A reader therefore observes either the complete previous
//! version or the complete new version — never a torn file — which is
//! what makes the resume journal's checksums trustworthy after a kill.

use std::fs;
use std::io;
use std::path::Path;

/// Writes `bytes` to `path` atomically (temp file + rename), creating
/// parent directories as needed.
///
/// # Errors
///
/// Any underlying filesystem error; the temporary file is removed on
/// failure when possible.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = fs::write(&tmp, bytes).and_then(|()| fs::rename(&tmp, path));
    if result.is_err() {
        fs::remove_file(&tmp).ok();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dim-sweep-fsio-{}-{name}", std::process::id()))
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch("basic");
        let path = dir.join("nested/result.json");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        // No stray temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("result.json")]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_directory_path() {
        assert!(atomic_write(Path::new("/"), b"x").is_err());
    }
}
