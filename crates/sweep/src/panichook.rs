//! Panic capture for sweep workers.
//!
//! A panicking cell must not take the whole sweep down with a raw
//! backtrace and no flight dump. [`capture_panics`] runs a closure
//! under `catch_unwind` and converts any panic into an `Err(message)`,
//! so the worker loop can treat it like any other cell failure — dump
//! the flight recorder, record the reason, move on.
//!
//! The process panic hook is global state; we install ours exactly once
//! and it defers to the previously-installed hook for every panic that
//! is *not* inside a [`capture_panics`] scope (tracked by a
//! thread-local flag), so unrelated threads — including the test
//! harness — keep their normal panic output.

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe, PanicHookInfo};
use std::sync::Once;

thread_local! {
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static MESSAGE: RefCell<Option<String>> = const { RefCell::new(None) };
}

static INSTALL: Once = Once::new();

fn install_hook() {
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info: &PanicHookInfo<'_>| {
            let captured = CAPTURING.with(|c| {
                if !c.get() {
                    return false;
                }
                let message = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                let location = info
                    .location()
                    .map(|l| format!(" at {}:{}", l.file(), l.line()))
                    .unwrap_or_default();
                MESSAGE.with(|m| *m.borrow_mut() = Some(format!("{message}{location}")));
                true
            });
            if !captured {
                previous(info);
            }
        }));
    });
}

/// Runs `f`, converting a panic on this thread into `Err(message)`
/// (with the panic's source location) instead of aborting the sweep.
/// Panics on other threads are unaffected.
pub fn capture_panics<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_hook();
    CAPTURING.with(|c| c.set(true));
    MESSAGE.with(|m| *m.borrow_mut() = None);
    let result = catch_unwind(AssertUnwindSafe(f));
    CAPTURING.with(|c| c.set(false));
    result.map_err(|_| {
        MESSAGE
            .with(|m| m.borrow_mut().take())
            .unwrap_or_else(|| "panic (no message captured)".to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_normal_results() {
        assert_eq!(capture_panics(|| 41 + 1), Ok(42));
    }

    #[test]
    fn converts_panics_to_messages_with_location() {
        let err = capture_panics(|| -> u32 { panic!("cell exploded: {}", 7) })
            .expect_err("panic captured");
        assert!(err.contains("cell exploded: 7"), "{err}");
        assert!(err.contains("panichook.rs"), "{err}");
    }

    #[test]
    fn nested_use_keeps_working() {
        for i in 0..3 {
            let r = capture_panics(|| {
                if i == 1 {
                    panic!("only the middle one");
                }
                i
            });
            if i == 1 {
                assert!(r.is_err());
            } else {
                assert_eq!(r, Ok(i));
            }
        }
    }
}
