//! # dim-sweep
//!
//! Batch-execution and design-space-exploration engine for the DIM
//! reproduction. A declarative sweep spec (workloads × array shapes ×
//! cache sizes × speculation settings × …) is expanded into a
//! deterministic job list, executed on an in-crate work-stealing thread
//! pool, and aggregated into machine-readable results that are
//! byte-identical regardless of worker count or completion order.
//!
//! The engine is restartable: each finished cell is recorded in an
//! append-only journal next to an atomically-written result file, so a
//! killed sweep resumes without re-executing completed cells. When warm
//! starts are enabled, each cell also persists its reconfiguration-cache
//! snapshot (see [`dim_core::SNAPSHOT_MAGIC`]) so later sweeps over the
//! same grid skip the translation warm-up.
//!
//! ```
//! use dim_sweep::{SweepSpec, SweepOptions, run_sweep};
//! let spec = SweepSpec::parse("
//!     workloads = crc32
//!     scale = tiny
//!     shapes = 1
//!     slots = 16
//!     speculation = on
//! ")?;
//! let dir = std::env::temp_dir().join(format!("dim-sweep-doc-{}", std::process::id()));
//! let outcome = run_sweep(&spec, &SweepOptions::new(dir.clone()))?;
//! assert!(outcome.complete);
//! std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod engine;
mod fsio;
mod journal;
mod panichook;
mod pool;
mod spec;

pub use engine::{
    bench_compare, run_sweep, BenchCompare, SweepError, SweepOptions, SweepOutcome,
    DEFAULT_FLIGHT_CAPACITY,
};
pub use fsio::atomic_write;
pub use journal::Journal;
pub use panichook::capture_panics;
pub use pool::{execute_jobs, PoolStats};
pub use spec::{CellSpec, ShapeChoice, SpecError, SweepSpec};
