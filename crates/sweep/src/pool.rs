//! A work-stealing thread pool on plain `std::thread`.
//!
//! The whole job list is known up front, so the pool needs no condition
//! variables or shutdown protocol: jobs are dealt round-robin into
//! per-worker deques, each worker drains its own deque from the front
//! and, when empty, steals from the *back* of a victim's deque (classic
//! Arora-Blumofe-Plotkin discipline — stealers take the coldest work).
//! A worker exits when every deque is empty, which is final because
//! nothing enqueues after start.
//!
//! Results are placed into a slot indexed by the job's position in the
//! input list, so the output order is deterministic no matter which
//! worker ran what — the property the sweep engine's byte-identical
//! serial/parallel guarantee rests on.

use dim_obs::{Clock as _, LogHistogram, MonotonicClock, ObjectWriter};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Execution statistics for one pool run. Wall-clock figures here are
/// host-dependent and must only ever feed timing reports
/// (`summary.json`, `BENCH_sweep.json`), never deterministic artifacts.
#[derive(Debug)]
pub struct PoolStats {
    /// Worker count actually used.
    pub threads: usize,
    /// Jobs each worker executed (own + stolen).
    pub executed: Vec<u64>,
    /// Jobs each worker obtained by stealing.
    pub steals: Vec<u64>,
    /// Own-queue depth observed at each local dequeue attempt.
    pub queue_depth: LogHistogram,
    /// Per-job wall-clock in microseconds.
    pub job_micros: LogHistogram,
}

impl PoolStats {
    /// Total jobs stolen across all workers.
    pub fn total_steals(&self) -> u64 {
        self.steals.iter().sum()
    }

    /// Total jobs executed across all workers.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }

    /// JSON object for `summary.json` / `BENCH_sweep.json`.
    pub fn to_json(&self) -> String {
        let list = |v: &[u64]| {
            let items: Vec<String> = v.iter().map(std::string::ToString::to_string).collect();
            format!("[{}]", items.join(","))
        };
        let mut w = ObjectWriter::new();
        w.field_u64("threads", self.threads as u64)
            .field_raw("executed_per_worker", &list(&self.executed))
            .field_raw("steals_per_worker", &list(&self.steals))
            .field_u64("total_steals", self.total_steals())
            .field_raw("queue_depth", &self.queue_depth.to_json())
            .field_raw("job_micros", &self.job_micros.to_json());
        w.finish()
    }
}

/// Runs every job on `threads` workers and returns the results in input
/// order, plus pool statistics.
///
/// Each job receives the index (`0..threads`) of the worker that runs
/// it, so per-worker side channels (live status entries, flight
/// recorders) can be addressed without locking a shared allocator. The
/// index must never influence a job's *result* — only which reporting
/// slot it writes — or the serial/parallel determinism contract breaks.
///
/// `threads` is clamped to at least 1; with exactly 1 the pool degrades
/// to strict in-order serial execution on a single spawned worker.
pub fn execute_jobs<T, F>(jobs: Vec<F>, threads: usize) -> (Vec<T>, PoolStats)
where
    F: FnOnce(usize) -> T + Send,
    T: Send,
{
    let threads = threads.max(1);
    let n = jobs.len();

    let queues: Vec<Mutex<VecDeque<(usize, F)>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        queues[i % threads].lock().unwrap().push_back((i, job));
    }

    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let executed: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let steals: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let queue_depth = Mutex::new(LogHistogram::new());
    let job_micros = Mutex::new(LogHistogram::new());
    let clock = MonotonicClock::new();

    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let results = &results;
            let executed = &executed;
            let steals = &steals;
            let queue_depth = &queue_depth;
            let job_micros = &job_micros;
            let clock = &clock;
            scope.spawn(move || loop {
                let local = {
                    let mut q = queues[w].lock().unwrap();
                    let depth = q.len() as u64;
                    let job = q.pop_front();
                    drop(q);
                    queue_depth.lock().unwrap().record(depth);
                    job
                };
                let (index, job) = match local {
                    Some(pair) => pair,
                    None => {
                        // Own deque dry: steal the oldest job from the
                        // first non-empty victim, scanning round-robin
                        // from our right-hand neighbour.
                        let mut stolen = None;
                        for offset in 1..threads {
                            let victim = (w + offset) % threads;
                            if let Some(pair) = queues[victim].lock().unwrap().pop_back() {
                                stolen = Some(pair);
                                break;
                            }
                        }
                        match stolen {
                            Some(pair) => {
                                steals[w].fetch_add(1, Ordering::Relaxed);
                                pair
                            }
                            None => break,
                        }
                    }
                };
                let start = clock.now_nanos();
                let out = job(w);
                let micros = clock.now_nanos().saturating_sub(start) / 1_000;
                job_micros.lock().unwrap().record(micros);
                executed[w].fetch_add(1, Ordering::Relaxed);
                *results[index].lock().unwrap() = Some(out);
            });
        }
    });

    let results = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every job ran exactly once")
        })
        .collect();
    let stats = PoolStats {
        threads,
        executed: executed
            .into_iter()
            .map(std::sync::atomic::AtomicU64::into_inner)
            .collect(),
        steals: steals
            .into_iter()
            .map(std::sync::atomic::AtomicU64::into_inner)
            .collect(),
        queue_depth: queue_depth.into_inner().unwrap(),
        job_micros: job_micros.into_inner().unwrap(),
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        for threads in [1, 2, 4, 7] {
            let jobs: Vec<_> = (0..40u64).map(|i| move |_w: usize| i * i).collect();
            let (out, stats) = execute_jobs(jobs, threads);
            assert_eq!(out, (0..40u64).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.total_executed(), 40);
            assert_eq!(stats.threads, threads);
            assert_eq!(stats.job_micros.count(), 40);
        }
    }

    #[test]
    fn empty_job_list() {
        let jobs: Vec<fn(usize) -> u64> = Vec::new();
        let (out, stats) = execute_jobs(jobs, 4);
        assert!(out.is_empty());
        assert_eq!(stats.total_executed(), 0);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let jobs: Vec<_> = (0..3u64).map(|i| move |_w: usize| i).collect();
        let (out, stats) = execute_jobs(jobs, 0);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.total_steals(), 0);
    }

    #[test]
    fn imbalanced_jobs_get_stolen() {
        // Worker 0 receives every even-indexed job; make those slow so
        // other workers must steal to finish. With 4 workers and all
        // slow jobs on one deque, at least one steal is overwhelmingly
        // forced; assert only on correctness plus the counters being
        // self-consistent, since scheduling is timing-dependent.
        let jobs: Vec<Box<dyn FnOnce(usize) -> u64 + Send>> = (0..16u64)
            .map(|i| {
                let f: Box<dyn FnOnce(usize) -> u64 + Send> = if i % 4 == 0 {
                    Box::new(move |_w| {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        i
                    })
                } else {
                    Box::new(move |_w| i)
                };
                f
            })
            .collect();
        let (out, stats) = execute_jobs(jobs, 4);
        assert_eq!(out, (0..16u64).collect::<Vec<_>>());
        assert_eq!(stats.total_executed(), 16);
        assert!(stats.total_steals() <= 16);
    }

    #[test]
    fn stats_json_is_parseable() {
        let jobs: Vec<_> = (0..5u64).map(|i| move |_w: usize| i).collect();
        let (_, stats) = execute_jobs(jobs, 2);
        let parsed = dim_obs::parse_json(&stats.to_json()).unwrap();
        assert_eq!(
            parsed.get("threads").and_then(dim_obs::JsonValue::as_u64),
            Some(2)
        );
    }
}
