//! Declarative sweep specifications.
//!
//! A spec is a small line-based `key = value` file describing a grid of
//! DIM experiment points. Multi-valued keys take comma-separated lists;
//! the grid is the cartesian product of all axes, expanded in a fixed
//! nested order so cell indices — and therefore result aggregation —
//! are deterministic:
//!
//! ```text
//! # Table-2-style sweep over two kernels
//! workloads = crc32, sha
//! scale     = small
//! shapes    = 1, 2, 3
//! slots     = 16, 64, 256
//! speculation = off, on
//! max_spec_blocks  = 3
//! flush_thresholds = 8
//! policies  = fifo
//! ideal     = on          # append ideal-array reference cells
//! warm_rcache = off       # persist/reuse per-cell rcache snapshots
//! ```
//!
//! Unknown keys are errors — a typo silently shrinking a grid is the
//! worst possible failure mode for an overnight sweep.

use dim_cgra::ArrayShape;
use dim_core::{ReplacementPolicy, SystemConfig};
use dim_workloads::Scale;
use std::fmt;

/// Spec parse/validation failure, with the offending line when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// One of the paper's finite array geometries (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeChoice {
    /// Configuration #1 (largest).
    Config1,
    /// Configuration #2.
    Config2,
    /// Configuration #3 (smallest).
    Config3,
}

impl ShapeChoice {
    fn parse(token: &str) -> Result<ShapeChoice, SpecError> {
        match token {
            "1" | "config1" | "c1" => Ok(ShapeChoice::Config1),
            "2" | "config2" | "c2" => Ok(ShapeChoice::Config2),
            "3" | "config3" | "c3" => Ok(ShapeChoice::Config3),
            other => Err(SpecError(format!(
                "unknown shape `{other}` (expected 1, 2 or 3)"
            ))),
        }
    }

    /// Short identifier used in cell ids and reports.
    pub fn key(self) -> &'static str {
        match self {
            ShapeChoice::Config1 => "c1",
            ShapeChoice::Config2 => "c2",
            ShapeChoice::Config3 => "c3",
        }
    }

    /// The concrete geometry.
    pub fn shape(self) -> ArrayShape {
        match self {
            ShapeChoice::Config1 => ArrayShape::config1(),
            ShapeChoice::Config2 => ArrayShape::config2(),
            ShapeChoice::Config3 => ArrayShape::config3(),
        }
    }
}

/// One experiment point of an expanded sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Position in the expanded grid (also the aggregation order).
    pub index: usize,
    /// Stable identifier, unique within the sweep; doubles as the result
    /// and snapshot file stem.
    pub id: String,
    /// Workload name (a `dim_workloads::suite()` entry).
    pub workload: String,
    /// Input scale.
    pub scale: Scale,
    /// Array geometry, `None` for the idealized infinite array.
    pub shape: Option<ShapeChoice>,
    /// Reconfiguration-cache slots.
    pub slots: usize,
    /// Whether speculation is enabled.
    pub speculation: bool,
    /// Maximum merged basic blocks when speculating.
    pub max_spec_blocks: u8,
    /// Misspeculation flush threshold.
    pub flush_threshold: u32,
    /// Cache replacement policy.
    pub policy: ReplacementPolicy,
}

impl CellSpec {
    /// The accelerator parameters this cell runs with.
    pub fn system_config(&self) -> SystemConfig {
        let shape = match self.shape {
            Some(choice) => choice.shape(),
            None => ArrayShape::infinite(),
        };
        let mut config = SystemConfig::new(shape, self.slots, self.speculation);
        config.max_spec_blocks = self.max_spec_blocks;
        config.misspec_flush_threshold = self.flush_threshold;
        config.cache_policy = self.policy;
        config
    }

    /// Short shape label for ids and reports.
    pub fn shape_key(&self) -> &'static str {
        match self.shape {
            Some(choice) => choice.key(),
            None => "ideal",
        }
    }
}

fn policy_key(policy: ReplacementPolicy) -> &'static str {
    match policy {
        ReplacementPolicy::Fifo => "fifo",
        ReplacementPolicy::Lru => "lru",
    }
}

fn scale_key(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// A parsed, validated sweep specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Workload names, in spec order.
    pub workloads: Vec<String>,
    /// Input scale for every cell.
    pub scale: Scale,
    /// Array geometries to sweep.
    pub shapes: Vec<ShapeChoice>,
    /// Cache capacities to sweep.
    pub slots: Vec<usize>,
    /// Speculation settings to sweep.
    pub speculation: Vec<bool>,
    /// Speculation depths to sweep.
    pub max_spec_blocks: Vec<u8>,
    /// Misspeculation flush thresholds to sweep.
    pub flush_thresholds: Vec<u32>,
    /// Replacement policies to sweep.
    pub policies: Vec<ReplacementPolicy>,
    /// Append two idealized-array reference cells per workload.
    pub ideal: bool,
    /// Persist and reuse per-cell rcache snapshots.
    pub warm_rcache: bool,
}

impl Default for SweepSpec {
    fn default() -> SweepSpec {
        SweepSpec {
            workloads: Vec::new(),
            scale: Scale::Small,
            shapes: vec![
                ShapeChoice::Config1,
                ShapeChoice::Config2,
                ShapeChoice::Config3,
            ],
            slots: vec![16, 64, 256],
            speculation: vec![false, true],
            max_spec_blocks: vec![3],
            flush_thresholds: vec![8],
            policies: vec![ReplacementPolicy::Fifo],
            ideal: false,
            warm_rcache: false,
        }
    }
}

fn parse_bool(key: &str, token: &str) -> Result<bool, SpecError> {
    match token {
        "on" | "true" | "yes" | "1" => Ok(true),
        "off" | "false" | "no" | "0" => Ok(false),
        other => Err(SpecError(format!("bad boolean `{other}` for `{key}`"))),
    }
}

fn split_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(|t| t.trim().to_ascii_lowercase())
        .filter(|t| !t.is_empty())
        .collect()
}

fn parse_list<T>(
    key: &str,
    value: &str,
    mut parse: impl FnMut(&str) -> Result<T, SpecError>,
) -> Result<Vec<T>, SpecError> {
    let tokens = split_list(value);
    if tokens.is_empty() {
        return Err(SpecError(format!("`{key}` must list at least one value")));
    }
    tokens.iter().map(|t| parse(t)).collect()
}

impl SweepSpec {
    /// Parses and validates spec text.
    ///
    /// # Errors
    ///
    /// Unknown keys, malformed values, unknown workloads, duplicate
    /// axis values, or a missing `workloads` key.
    pub fn parse(text: &str) -> Result<SweepSpec, SpecError> {
        let mut spec = SweepSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| SpecError(format!("line {}: expected `key = value`", lineno + 1)))?;
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            let err_line = |e: SpecError| SpecError(format!("line {}: {}", lineno + 1, e.0));
            match key.as_str() {
                "workloads" => {
                    if value.eq_ignore_ascii_case("suite") {
                        spec.workloads = dim_workloads::suite()
                            .into_iter()
                            .map(|s| s.name.to_string())
                            .collect();
                    } else {
                        spec.workloads = split_list(value);
                    }
                }
                "scale" => {
                    spec.scale = match value.to_ascii_lowercase().as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "full" => Scale::Full,
                        other => {
                            return Err(err_line(SpecError(format!(
                                "unknown scale `{other}` (expected tiny, small or full)"
                            ))))
                        }
                    };
                }
                "shapes" => {
                    spec.shapes = parse_list(&key, value, ShapeChoice::parse).map_err(err_line)?;
                }
                "slots" => {
                    spec.slots = parse_list(&key, value, |t| {
                        t.parse::<usize>()
                            .map_err(|_| SpecError(format!("bad slot count `{t}`")))
                    })
                    .map_err(err_line)?;
                }
                "speculation" => {
                    spec.speculation = parse_list(&key, value, |t| parse_bool("speculation", t))
                        .map_err(err_line)?;
                }
                "max_spec_blocks" => {
                    spec.max_spec_blocks = parse_list(&key, value, |t| {
                        t.parse::<u8>()
                            .map_err(|_| SpecError(format!("bad block count `{t}`")))
                    })
                    .map_err(err_line)?;
                }
                "flush_thresholds" => {
                    spec.flush_thresholds = parse_list(&key, value, |t| {
                        t.parse::<u32>()
                            .map_err(|_| SpecError(format!("bad flush threshold `{t}`")))
                    })
                    .map_err(err_line)?;
                }
                "policies" => {
                    spec.policies = parse_list(&key, value, |t| match t {
                        "fifo" => Ok(ReplacementPolicy::Fifo),
                        "lru" => Ok(ReplacementPolicy::Lru),
                        other => Err(SpecError(format!("unknown policy `{other}`"))),
                    })
                    .map_err(err_line)?;
                }
                "ideal" => spec.ideal = parse_bool("ideal", value).map_err(err_line)?,
                "warm_rcache" => {
                    spec.warm_rcache = parse_bool("warm_rcache", value).map_err(err_line)?;
                }
                other => {
                    return Err(err_line(SpecError(format!("unknown key `{other}`"))));
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), SpecError> {
        if self.workloads.is_empty() {
            return Err(SpecError(
                "`workloads` is required (names or `suite`)".to_string(),
            ));
        }
        for name in &self.workloads {
            if dim_workloads::by_name(name).is_none() {
                return Err(SpecError(format!("unknown workload `{name}`")));
            }
        }
        fn unique<T: PartialEq + fmt::Debug>(key: &str, values: &[T]) -> Result<(), SpecError> {
            for (i, v) in values.iter().enumerate() {
                if values[..i].contains(v) {
                    return Err(SpecError(format!("duplicate value {v:?} in `{key}`")));
                }
            }
            Ok(())
        }
        unique("workloads", &self.workloads)?;
        unique("shapes", &self.shapes)?;
        unique("slots", &self.slots)?;
        unique("speculation", &self.speculation)?;
        unique("max_spec_blocks", &self.max_spec_blocks)?;
        unique("flush_thresholds", &self.flush_thresholds)?;
        unique("policies", &self.policies)?;
        Ok(())
    }

    /// Expands the grid into cells, in deterministic nested order:
    /// workload (outermost) × shape × slots × speculation × blocks ×
    /// flush threshold × policy, with the optional ideal reference
    /// cells (no-spec, then spec) appended per workload.
    pub fn expand(&self) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for workload in &self.workloads {
            for &shape in &self.shapes {
                for &slots in &self.slots {
                    for &speculation in &self.speculation {
                        for &blocks in &self.max_spec_blocks {
                            for &flush in &self.flush_thresholds {
                                for &policy in &self.policies {
                                    cells.push(self.cell(
                                        cells.len(),
                                        workload,
                                        Some(shape),
                                        slots,
                                        speculation,
                                        blocks,
                                        flush,
                                        policy,
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            if self.ideal {
                for speculation in [false, true] {
                    cells.push(self.cell(
                        cells.len(),
                        workload,
                        None,
                        1 << 20,
                        speculation,
                        self.max_spec_blocks[0],
                        self.flush_thresholds[0],
                        ReplacementPolicy::Fifo,
                    ));
                }
            }
        }
        cells
    }

    #[allow(clippy::too_many_arguments)]
    fn cell(
        &self,
        index: usize,
        workload: &str,
        shape: Option<ShapeChoice>,
        slots: usize,
        speculation: bool,
        blocks: u8,
        flush: u32,
        policy: ReplacementPolicy,
    ) -> CellSpec {
        let shape_key = shape.map_or("ideal", ShapeChoice::key);
        let id = format!(
            "{workload}-{shape_key}-{}-s{slots}-b{blocks}-f{flush}-{}",
            if speculation { "spec" } else { "nospec" },
            policy_key(policy),
        );
        CellSpec {
            index,
            id,
            workload: workload.to_string(),
            scale: self.scale,
            shape,
            slots,
            speculation,
            max_spec_blocks: blocks,
            flush_threshold: flush,
            policy,
        }
    }

    /// The scale's id token (used in reports).
    pub fn scale_key(&self) -> &'static str {
        scale_key(self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_give_table2_grid() {
        let spec = SweepSpec::parse("workloads = crc32").unwrap();
        let cells = spec.expand();
        // 3 shapes × 3 slots × 2 speculation settings.
        assert_eq!(cells.len(), 18);
        assert_eq!(cells[0].id, "crc32-c1-nospec-s16-b3-f8-fifo");
        assert_eq!(cells[17].id, "crc32-c3-spec-s256-b3-f8-fifo");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn ideal_appends_reference_cells() {
        let spec = SweepSpec::parse(
            "workloads = crc32\nshapes = 1\nslots = 16\nspeculation = on\nideal = on",
        )
        .unwrap();
        let cells = spec.expand();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[1].id, "crc32-ideal-nospec-s1048576-b3-f8-fifo");
        assert!(cells[2].shape.is_none());
        assert!(cells[2].system_config().shape.is_infinite());
    }

    #[test]
    fn suite_expands_all_workloads() {
        let spec = SweepSpec::parse("workloads = suite\nshapes = 1\nslots = 16").unwrap();
        assert_eq!(spec.workloads.len(), 18);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec =
            SweepSpec::parse("# header\n\nworkloads = crc32 # trailing\nscale = tiny\n").unwrap();
        assert_eq!(spec.scale, Scale::Tiny);
        assert_eq!(spec.workloads, vec!["crc32"]);
    }

    #[test]
    fn rejects_unknown_key_workload_and_duplicates() {
        assert!(SweepSpec::parse("workloads = crc32\nshepes = 1")
            .unwrap_err()
            .0
            .contains("unknown key"));
        assert!(SweepSpec::parse("workloads = nope")
            .unwrap_err()
            .0
            .contains("unknown workload"));
        assert!(SweepSpec::parse("workloads = crc32\nslots = 16, 16")
            .unwrap_err()
            .0
            .contains("duplicate"));
        assert!(SweepSpec::parse("").unwrap_err().0.contains("required"));
        assert!(SweepSpec::parse("workloads = crc32\nscale = huge")
            .unwrap_err()
            .0
            .contains("unknown scale"));
    }

    #[test]
    fn sweep_axes_cover_policy_knobs() {
        let spec = SweepSpec::parse(
            "workloads = crc32\nshapes = 2\nslots = 64\nspeculation = on\n\
             max_spec_blocks = 2, 3\nflush_thresholds = 4, 8\npolicies = fifo, lru",
        )
        .unwrap();
        let cells = spec.expand();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].id, "crc32-c2-spec-s64-b2-f4-fifo");
        let cfg = cells[7].system_config();
        assert_eq!(cfg.max_spec_blocks, 3);
        assert_eq!(cfg.misspec_flush_threshold, 8);
        assert_eq!(cfg.cache_policy, ReplacementPolicy::Lru);
    }

    #[test]
    fn ids_are_unique() {
        let spec = SweepSpec::parse("workloads = crc32, sha\nideal = on").unwrap();
        let cells = spec.expand();
        let mut ids: Vec<_> = cells.iter().map(|c| c.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), cells.len());
    }
}
