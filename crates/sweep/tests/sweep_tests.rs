//! End-to-end sweep engine tests: parallel/serial byte-identity,
//! kill-and-resume via `--limit`, and rcache warm-start reuse.

use dim_sweep::{bench_compare, run_sweep, SweepOptions, SweepSpec};
use std::fs;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dim-sweep-it-{}-{name}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn tiny_spec() -> SweepSpec {
    SweepSpec::parse(
        "workloads = crc32, bitcount\n\
         scale = tiny\n\
         shapes = 1, 3\n\
         slots = 16\n\
         speculation = on\n",
    )
    .unwrap()
}

fn read_cells(dir: &Path, spec: &SweepSpec) -> Vec<(String, Vec<u8>)> {
    spec.expand()
        .into_iter()
        .map(|c| {
            let path = dir.join("cells").join(format!("{}.json", c.id));
            (
                c.id,
                fs::read(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display())),
            )
        })
        .collect()
}

#[test]
fn parallel_results_byte_identical_to_serial() {
    let spec = tiny_spec();
    let serial_dir = scratch("det-serial");
    let parallel_dir = scratch("det-parallel");

    let serial = run_sweep(&spec, &SweepOptions::new(serial_dir.clone())).unwrap();
    let mut opts = SweepOptions::new(parallel_dir.clone());
    opts.jobs = 4;
    let parallel = run_sweep(&spec, &opts).unwrap();

    assert!(serial.complete && parallel.complete);
    assert_eq!(serial.executed, 4);
    assert_eq!(parallel.executed, 4);
    assert_eq!(
        read_cells(&serial_dir, &spec),
        read_cells(&parallel_dir, &spec)
    );
    assert_eq!(
        fs::read(serial_dir.join("report.txt")).unwrap(),
        fs::read(parallel_dir.join("report.txt")).unwrap()
    );

    // The per-cell fabric heat summaries share the byte-identity
    // guarantee, and each one is valid JSON obeying the conservation
    // law busy ≤ capacity per class.
    for cell in spec.expand() {
        let name = format!("{}.json", cell.id);
        let a = fs::read(serial_dir.join("heat").join(&name)).unwrap();
        let b = fs::read(parallel_dir.join("heat").join(&name)).unwrap();
        assert_eq!(a, b, "heat summary for `{}` diverged", cell.id);
        let v = dim_obs::parse_json(std::str::from_utf8(&a).unwrap()).unwrap();
        let class = |obj: &str, key: &str| {
            v.get(obj)
                .and_then(|o| o.get(key))
                .and_then(dim_obs::JsonValue::as_u64)
                .unwrap()
        };
        for k in ["alu", "mult", "ldst"] {
            assert!(
                class("busy_thirds", k) <= class("capacity_thirds", k),
                "{}: {k} busy exceeds capacity",
                cell.id
            );
        }
        assert!(v.get("invocations").and_then(dim_obs::JsonValue::as_u64) > Some(0));
    }

    // Both runs dump a wall-clock span file: one well-formed root per
    // cell with an execute child carrying host-time attribution. The
    // timings differ run to run — spans sit outside the determinism
    // contract — but the tree shape is fixed.
    for dir in [&serial_dir, &parallel_dir] {
        let file = dim_obs::span::read_span_file(&dir.join(dim_obs::SPAN_FILE_NAME)).unwrap();
        let forest = dim_obs::SpanForest::build(&file);
        assert_eq!(forest.roots.len(), 4, "one span root per executed cell");
        assert_eq!(forest.orphans_trimmed, 0);
        assert_eq!(forest.check_laws(), Vec::<String>::new());
        for &root in &forest.roots {
            assert_eq!(forest.spans[root].stage, "cell");
            let exec = forest.children[root]
                .iter()
                .copied()
                .find(|&c| forest.spans[c].stage == "execute")
                .expect("every cell has an execute span");
            let attr = file
                .attr_for(forest.spans[exec].id)
                .expect("execute span carries host-time attribution");
            assert!(attr.buckets.iter().any(|b| b.count > 0));
        }
    }

    fs::remove_dir_all(&serial_dir).ok();
    fs::remove_dir_all(&parallel_dir).ok();
}

#[test]
fn limit_interrupt_then_resume_skips_done_cells() {
    let spec = tiny_spec();
    let dir = scratch("resume");

    // "Kill" after two cells.
    let mut first = SweepOptions::new(dir.clone());
    first.limit = Some(2);
    let outcome = run_sweep(&spec, &first).unwrap();
    assert_eq!(outcome.executed, 2);
    assert!(!outcome.complete);
    assert!(!dir.join("report.txt").exists());
    let journal_after_first = fs::read_to_string(dir.join("journal.txt")).unwrap();
    assert_eq!(journal_after_first.lines().count(), 2);

    // Resume: only the remaining two cells execute.
    let resumed = run_sweep(&spec, &SweepOptions::new(dir.clone())).unwrap();
    assert_eq!(resumed.skipped, 2);
    assert_eq!(resumed.executed, 2);
    assert!(resumed.complete);
    assert!(dir.join("report.txt").exists());

    // A third invocation is a no-op.
    let noop = run_sweep(&spec, &SweepOptions::new(dir.clone())).unwrap();
    assert_eq!(noop.executed, 0);
    assert_eq!(noop.skipped, 4);
    assert!(noop.complete);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_and_trend_accumulate_across_invocations() {
    let spec = tiny_spec();
    let dir = scratch("telemetry");

    // Partial run: telemetry covers the two executed cells, trend gains
    // its first line.
    let mut first = SweepOptions::new(dir.clone());
    first.limit = Some(2);
    run_sweep(&spec, &first).unwrap();
    let telemetry = fs::read_to_string(dir.join("telemetry.json")).unwrap();
    let value = dim_obs::parse_json(&telemetry).unwrap();
    assert_eq!(
        value.get("executed").and_then(dim_obs::JsonValue::as_u64),
        Some(2)
    );
    let cells = value.get("cells").and_then(|v| v.as_array()).unwrap();
    assert_eq!(cells.len(), 2);
    for cell in cells {
        assert!(cell.get("id").and_then(|v| v.as_str()).is_some());
        assert!(cell
            .get("wall_nanos")
            .and_then(dim_obs::JsonValue::as_u64)
            .is_some());
    }
    let trend = fs::read_to_string(dir.join("trend.jsonl")).unwrap();
    assert_eq!(trend.lines().count(), 1);

    // Resume to completion: telemetry is rewritten for the newly
    // executed cells and trend appends a second record.
    run_sweep(&spec, &SweepOptions::new(dir.clone())).unwrap();
    let trend = fs::read_to_string(dir.join("trend.jsonl")).unwrap();
    assert_eq!(trend.lines().count(), 2);
    for line in trend.lines() {
        let record = dim_obs::parse_json(line).unwrap();
        assert!(
            record
                .get("executed")
                .and_then(dim_obs::JsonValue::as_u64)
                .unwrap()
                > 0
        );
        assert!(record.get("cells_per_second").is_some());
    }

    // A no-op invocation (everything already done) must not pad the
    // history or clobber telemetry with an empty snapshot.
    run_sweep(&spec, &SweepOptions::new(dir.clone())).unwrap();
    let trend = fs::read_to_string(dir.join("trend.jsonl")).unwrap();
    assert_eq!(trend.lines().count(), 2);
    let telemetry = fs::read_to_string(dir.join("telemetry.json")).unwrap();
    let value = dim_obs::parse_json(&telemetry).unwrap();
    assert_eq!(
        value.get("executed").and_then(dim_obs::JsonValue::as_u64),
        Some(2)
    );

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_result_file_is_rerun_on_resume() {
    let spec = tiny_spec();
    let dir = scratch("corrupt");
    run_sweep(&spec, &SweepOptions::new(dir.clone())).unwrap();

    // Tamper with one result: the journal checksum no longer matches,
    // so exactly that cell must re-execute.
    let victim = dir
        .join("cells")
        .join(format!("{}.json", spec.expand()[0].id));
    let good = fs::read(&victim).unwrap();
    fs::write(&victim, b"{}\n").unwrap();

    let resumed = run_sweep(&spec, &SweepOptions::new(dir.clone())).unwrap();
    assert_eq!(resumed.executed, 1);
    assert_eq!(resumed.skipped, 3);
    assert!(resumed.complete);
    assert_eq!(fs::read(&victim).unwrap(), good);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_rcache_snapshots_persist_and_reload() {
    let spec = SweepSpec::parse(
        "workloads = crc32\nscale = tiny\nshapes = 1\nslots = 16\n\
         speculation = on\nwarm_rcache = on",
    )
    .unwrap();
    let dir = scratch("warm");
    run_sweep(&spec, &SweepOptions::new(dir.clone())).unwrap();

    let cell = &spec.expand()[0];
    let snapshot = dir.join("rcache").join(format!("{}.dimrc", cell.id));
    assert!(snapshot.exists(), "snapshot written for warm sweep");
    let cold_json = fs::read(dir.join("cells").join(format!("{}.json", cell.id))).unwrap();
    assert!(String::from_utf8_lossy(&cold_json).contains("\"warm_loaded\":false"));

    // Force re-execution of the same grid in the same directory: the
    // cell must load the snapshot this time.
    fs::remove_file(dir.join("journal.txt")).unwrap();
    run_sweep(&spec, &SweepOptions::new(dir.clone())).unwrap();
    let warm_json = fs::read(dir.join("cells").join(format!("{}.json", cell.id))).unwrap();
    let warm_text = String::from_utf8_lossy(&warm_json);
    assert!(warm_text.contains("\"warm_loaded\":true"), "{warm_text}");

    // Warm start must not change the architectural outcome: baseline
    // and accel cycle counts both stay self-consistent fields.
    let parsed = dim_obs::parse_json(&warm_text).unwrap();
    assert!(
        parsed
            .get("accel_cycles")
            .and_then(dim_obs::JsonValue::as_u64)
            .unwrap()
            > 0
    );

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_sweep_writes_forensics_without_perturbing_results() {
    let spec = tiny_spec();
    let plain_dir = scratch("explain-plain");
    let explain_dir = scratch("explain-on");

    run_sweep(&spec, &SweepOptions::new(plain_dir.clone())).unwrap();
    let mut opts = SweepOptions::new(explain_dir.clone());
    opts.explain = true;
    run_sweep(&spec, &opts).unwrap();

    // The determinism contract is unaffected: cell results and the
    // report are byte-identical with or without forensics.
    assert_eq!(
        read_cells(&plain_dir, &spec),
        read_cells(&explain_dir, &spec)
    );
    assert_eq!(
        fs::read(plain_dir.join("report.txt")).unwrap(),
        fs::read(explain_dir.join("report.txt")).unwrap()
    );

    // Every cell gained a parseable forensics report with attribution
    // that covers the cell's full cycle count.
    for cell in spec.expand() {
        let path = explain_dir
            .join("explain")
            .join(format!("{}.json", cell.id));
        let text = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing forensics {}: {e}", path.display()));
        let parsed = dim_obs::parse_json(&text).unwrap();
        assert_eq!(
            parsed.get("workload").and_then(|v| v.as_str()),
            Some(cell.id.as_str())
        );
        let total = parsed
            .get("total_cycles")
            .and_then(dim_obs::JsonValue::as_u64)
            .unwrap();
        assert!(total > 0, "{}", cell.id);
        assert!(parsed
            .get("regions")
            .and_then(|v| v.as_array())
            .is_some_and(|r| !r.is_empty()));
        assert!(!plain_dir.join("explain").exists());
    }

    fs::remove_dir_all(&plain_dir).ok();
    fs::remove_dir_all(&explain_dir).ok();
}

#[test]
fn bench_compare_writes_report_and_matches() {
    let spec = SweepSpec::parse(
        "workloads = crc32\nscale = tiny\nshapes = 1, 3\nslots = 16\nspeculation = on",
    )
    .unwrap();
    let base = scratch("bench");
    let compare = bench_compare(&spec, &base, 2).unwrap();
    assert!(compare.identical, "parallel must match serial");
    assert_eq!(compare.cells, 2);

    let json = fs::read_to_string(base.join("BENCH_sweep.json")).unwrap();
    let parsed = dim_obs::parse_json(&json).unwrap();
    assert_eq!(
        parsed
            .get("identical_results")
            .and_then(dim_obs::JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        parsed.get("jobs").and_then(dim_obs::JsonValue::as_u64),
        Some(2)
    );

    fs::remove_dir_all(&base).ok();
}

#[test]
fn status_file_is_published_and_valid_but_outside_the_contract() {
    use dim_obs::status::{read_status, STATUS_FILE_NAME};

    let spec = tiny_spec();
    let dir = scratch("status");
    let mut opts = SweepOptions::new(dir.clone());
    opts.jobs = 2;
    let outcome = run_sweep(&spec, &opts).unwrap();
    assert!(outcome.complete);

    // The board parses back with a verified checksum: one aggregate
    // entry plus one per worker, with the aggregate settled on "done".
    let status = read_status(&dir.join(STATUS_FILE_NAME)).unwrap();
    assert_eq!(status.entries.len(), 1 + 2);
    let agg = &status.entries[0];
    assert_eq!(agg.source, "sweep");
    assert_eq!(agg.state, "done");
    assert_eq!(agg.done, 4);
    assert_eq!(agg.total, 4);
    assert!(agg.retired > 0);
    assert!(agg.sim_cycles > 0);
    assert!(agg.host_nanos > 0);
    assert!(status.entries[1..]
        .iter()
        .all(|e| e.source.starts_with("worker-")));

    // Like telemetry.json, status.dimstat is host-side output: the
    // deterministic artifacts must be byte-identical with the flight
    // recorder and status publishing disabled entirely.
    let bare_dir = scratch("status-bare");
    let mut bare = SweepOptions::new(bare_dir.clone());
    bare.flight_capacity = 0;
    run_sweep(&spec, &bare).unwrap();
    assert_eq!(read_cells(&dir, &spec), read_cells(&bare_dir, &spec));
    assert_eq!(
        fs::read(dir.join("report.txt")).unwrap(),
        fs::read(bare_dir.join("report.txt")).unwrap()
    );

    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&bare_dir).ok();
}

#[test]
fn watchdog_stays_quiet_across_warm_resume_sweeps() {
    // Warm-start snapshots seed the watchdog's resident set; a second
    // sweep over the same grid must not trip hit-without-insert.
    let spec = SweepSpec::parse(
        "workloads = crc32\nscale = tiny\nshapes = 1\nslots = 16\nspeculation = on\nwarm_rcache = true",
    )
    .unwrap();
    let dir = scratch("warm-watchdog");
    run_sweep(&spec, &SweepOptions::new(dir.clone())).unwrap();
    // Force re-execution by clearing the journal but keeping snapshots.
    fs::remove_file(dir.join("journal.txt")).unwrap();
    for cell in spec.expand() {
        fs::remove_file(dir.join("cells").join(format!("{}.json", cell.id))).ok();
    }
    let second = run_sweep(&spec, &SweepOptions::new(dir.clone())).unwrap();
    assert!(second.complete);
    assert_eq!(second.executed, 1);
    assert!(
        !dir.join("flight").exists(),
        "no flight dumps expected from a clean warm resume"
    );
    fs::remove_dir_all(&dir).ok();
}
