//! Peek inside the DIM engine: run a kernel, then dump the contents of
//! the reconfiguration cache — per configuration, its placement on the
//! array (rows × columns), live-ins, write-backs and speculation
//! segments.
//!
//! ```sh
//! cargo run --release --example inspect_translation
//! ```

use dim_accel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(
        "
        main:   li   $s0, 300
                li   $v0, 0
                la   $s1, table
        loop:   andi $t0, $s0, 15
                sll  $t1, $t0, 2
                addu $t2, $s1, $t1
                lw   $t3, 0($t2)       # table lookup
                xor  $t4, $t3, $s0
                mul  $t5, $t4, $t0     # keep a multiplier busy
                addu $v0, $v0, $t5
                addiu $s0, $s0, -1
                bnez $s0, loop
                break 0
        .data
        table:  .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
        ",
    )?;

    let mut sys = System::new(
        Machine::load(&program),
        SystemConfig::new(ArrayShape::config1(), 16, true),
    );
    sys.run(1_000_000)?;

    println!(
        "run finished: {} cycles, {} array invocations\n",
        sys.total_cycles(),
        sys.stats().array_invocations
    );

    for config in sys.cache().iter() {
        println!(
            "configuration @ {:#010x}: {} instructions, {} rows, {} live-ins, {} write-backs",
            config.entry_pc,
            config.instruction_count(),
            config.rows_used(),
            config.live_in_count(),
            config.writeback_count(),
        );
        for segment in config.segments() {
            let kind = match segment.branch {
                Some(b) => format!(
                    "ends in branch @ {:#x} predicted {}",
                    b.pc,
                    if b.predicted_taken {
                        "taken"
                    } else {
                        "not taken"
                    }
                ),
                None => format!("sequential exit to {:#x}", segment.exit_pc),
            };
            println!(
                "  segment depth {}: {} ops, {}",
                segment.depth, segment.len, kind
            );
        }
        for op in config.ops() {
            println!(
                "    row {:>2} col {:>2} [{:?}] {:#010x}: {}",
                op.row, op.col, op.class, op.pc, op.inst
            );
        }
        println!("{}", dim_accel::cgra::render_occupancy(config));
        println!(
            "  live-ins: {}",
            config
                .live_ins()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "  write-backs: {}\n",
            config
                .writebacks()
                .map(|(l, d)| format!("{l}@depth{d}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    Ok(())
}
