//! Design-space exploration: sweep custom array shapes on one workload
//! and report speedup against silicon area — the trade-off the paper's
//! conclusion says the authors were exploring next ("finding the ideal
//! shape for the reconfigurable array").
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use dim_accel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = by_name("rijndael_enc").expect("benchmark exists");
    let built = (spec.build)(Scale::Small);

    let mut baseline = Machine::load(&built.program);
    baseline.run(built.max_steps)?;
    let base_cycles = baseline.stats.cycles;
    println!("rijndael_enc baseline: {base_cycles} cycles\n");
    println!(
        "{:<28} {:>9} {:>9} {:>12}",
        "shape", "speedup", "kGates", "speedup/Mgate"
    );

    for rows in [8, 16, 24, 48, 96] {
        for (alus, mults, ldsts) in [(4, 1, 2), (8, 1, 2), (8, 2, 4), (12, 2, 6)] {
            let shape = ArrayShape {
                rows,
                alus_per_row: alus,
                mults_per_row: mults,
                ldsts_per_row: ldsts,
                rf_read_ports: 4,
                rf_write_ports: 4,
            };
            let mut sys = System::new(
                Machine::load(&built.program),
                SystemConfig::new(shape, 64, true),
            );
            sys.run(built.max_steps)?;
            let speedup = base_cycles as f64 / sys.total_cycles() as f64;
            let gates = area_report(&shape, &GateCosts::default()).total_gates();
            println!(
                "{:<28} {:>8.2}x {:>9} {:>12.2}",
                format!("{rows} rows x ({alus}A+{mults}M+{ldsts}L)"),
                speedup,
                gates / 1000,
                speedup / (gates as f64 / 1e6),
            );
        }
    }
    Ok(())
}
