//! The paper's motivating scenario (§5.1): "an embedded system runs
//! RawAudio decoder, JPEG encoder and decoder, and the StringSearch" —
//! a heterogeneous mix where no single kernel dominates, so a
//! fixed-function accelerator would need ~45 hand-picked basic blocks
//! for a 2x speedup.
//!
//! This example measures what that mix actually demands from DIM: for
//! each application, the number of reconfiguration-cache slots needed to
//! reach 95% of its peak speedup, and the aggregate slot demand of the
//! whole device.
//!
//! ```sh
//! cargo run --release --example heterogeneous_device
//! ```

use dim_accel::prelude::*;
use dim_accel::workloads::BuiltBenchmark;

const APPS: [&str; 4] = ["rawaudio_dec", "jpeg_enc", "jpeg_dec", "stringsearch"];
const SLOTS: [usize; 7] = [2, 4, 8, 16, 32, 64, 256];

fn speedup_at(built: &BuiltBenchmark, base: u64, slots: usize) -> f64 {
    let mut sys = System::new(
        Machine::load(&built.program),
        SystemConfig::new(ArrayShape::config2(), slots, true),
    );
    sys.run(built.max_steps).expect("accelerated run");
    base as f64 / sys.total_cycles() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Array configuration #2, speculation on.\n");
    println!(
        "{:<14} {}  {:>10}",
        "app",
        SLOTS.map(|s| format!("{s:>6}")).join(""),
        "95% needs"
    );

    let mut total_demand = 0usize;
    let mut hot_configs = 0u64;
    for name in APPS {
        let built = (by_name(name).expect("benchmark exists").build)(Scale::Small);
        let mut baseline = Machine::load(&built.program);
        baseline.run(built.max_steps)?;
        let base = baseline.stats.cycles;

        let curve: Vec<f64> = SLOTS.iter().map(|&s| speedup_at(&built, base, s)).collect();
        let peak = curve.iter().cloned().fold(f64::MIN, f64::max);
        let needed = SLOTS
            .iter()
            .zip(&curve)
            .find(|(_, &sp)| sp >= 0.95 * peak)
            .map_or(*SLOTS.last().expect("non-empty"), |(&s, _)| s);
        total_demand += needed;

        // Count distinct configurations the app actually builds.
        let mut sys = System::new(
            Machine::load(&built.program),
            SystemConfig::new(ArrayShape::config2(), 1 << 20, true),
        );
        sys.run(built.max_steps)?;
        hot_configs += sys.stats().configs_built;

        println!(
            "{:<14} {}  {:>10}",
            name,
            curve
                .iter()
                .map(|v| format!("{v:>6.2}"))
                .collect::<String>(),
            needed
        );
    }

    println!(
        "\nAggregate slot demand of the device mix: {total_demand} slots \
         ({hot_configs} configurations built in total)."
    );
    println!(
        "The paper's point: a static accelerator would need every one of those \
         regions picked by hand at design time; DIM discovers them at run time\n\
         and a single {total_demand}-slot reconfiguration cache serves the whole mix."
    );
    Ok(())
}
