//! Quickstart: run the same binary on the plain MIPS pipeline and on the
//! MIPS+DIM+array system, and watch the transparent speedup.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dim_accel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ordinary MIPS program — no annotations, no special tooling.
    let program = assemble(
        "
        main:   li   $s0, 5000        # outer iterations
                li   $v0, 0
        loop:   # a mildly parallel dataflow body
                xor  $t0, $v0, $s0
                sll  $t1, $s0, 3
                addu $t2, $t0, $t1
                srl  $t3, $t2, 2
                addu $v0, $v0, $t3
                andi $t4, $t2, 0xff
                addu $v0, $v0, $t4
                addiu $s0, $s0, -1
                bnez $s0, loop
                break 0
        ",
    )?;

    // Plain processor.
    let mut baseline = Machine::load(&program);
    baseline.run(10_000_000)?;
    println!(
        "baseline : {:>9} instructions, {:>9} cycles (IPC {:.2})",
        baseline.stats.instructions,
        baseline.stats.cycles,
        baseline.stats.ipc()
    );

    // Same binary, with the DIM accelerator attached (config #1, 64
    // cache slots, speculation enabled).
    let mut accelerated = System::new(
        Machine::load(&program),
        SystemConfig::new(ArrayShape::config1(), 64, true),
    );
    accelerated.run(10_000_000)?;
    let stats = accelerated.stats();
    println!(
        "dim+array: {:>9} instructions, {:>9} cycles",
        accelerated.total_instructions(),
        accelerated.total_cycles(),
    );
    println!(
        "           {} configs built, {} array invocations, {} instructions on the array",
        stats.configs_built, stats.array_invocations, stats.array_instructions
    );

    // Transparency check: identical architectural result.
    assert_eq!(
        accelerated.machine().cpu.reg(Reg::V0),
        baseline.cpu.reg(Reg::V0),
        "acceleration must not change results"
    );
    println!(
        "\nresult $v0 = {:#x} (identical), speedup = {:.2}x",
        baseline.cpu.reg(Reg::V0),
        baseline.stats.cycles as f64 / accelerated.total_cycles() as f64
    );
    Ok(())
}
