//! Run real benchmark kernels (AES and CRC32 from the MiBench-like
//! suite) across the paper's three array configurations and compare —
//! a miniature of Table 2.
//!
//! ```sh
//! cargo run --release --example mibench_sweep
//! ```

use dim_accel::prelude::*;
use dim_accel::workloads::validate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shapes = [
        ("config #1", ArrayShape::config1()),
        ("config #2", ArrayShape::config2()),
        ("config #3", ArrayShape::config3()),
    ];

    for name in ["rijndael_enc", "crc32", "rawaudio_dec"] {
        let spec = by_name(name).expect("benchmark exists");
        let built = (spec.build)(Scale::Small);

        let mut baseline = Machine::load(&built.program);
        baseline.run(built.max_steps)?;
        validate(&baseline, &built)?;
        println!(
            "\n{name}: baseline {} cycles ({} instructions)",
            baseline.stats.cycles, baseline.stats.instructions
        );

        for (shape_name, shape) in shapes {
            for speculation in [false, true] {
                let mut sys = System::new(
                    Machine::load(&built.program),
                    SystemConfig::new(shape, 64, speculation),
                );
                sys.run(built.max_steps)?;
                // Accelerated output is still byte-identical to the
                // reference model.
                validate(sys.machine(), &built)?;
                println!(
                    "  {shape_name} {}: {:>9} cycles  ({:.2}x, {} misspeculations)",
                    if speculation { "spec  " } else { "nospec" },
                    sys.total_cycles(),
                    baseline.stats.cycles as f64 / sys.total_cycles() as f64,
                    sys.stats().misspeculations,
                );
            }
        }
    }
    Ok(())
}
