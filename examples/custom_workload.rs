//! Bring your own benchmark: define a workload with the `dim-workloads`
//! framework types (program + expected-output oracle), validate it on the
//! plain simulator, then measure it accelerated — the workflow a
//! downstream user follows to evaluate their own kernel on DIM.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use dim_accel::prelude::*;
use dim_accel::workloads::{validate, BuiltBenchmark, Category, ExpectedRegion};

/// Reference model: 32-bit Fibonacci with wrapping arithmetic.
fn fib_reference(n: usize) -> Vec<u32> {
    let mut out = vec![0u32; n];
    for i in 0..n {
        out[i] = match i {
            0 => 0,
            1 => 1,
            _ => out[i - 1].wrapping_add(out[i - 2]),
        };
    }
    out
}

fn build_fib(n: usize) -> Result<BuiltBenchmark, Box<dyn std::error::Error>> {
    let expected: Vec<u8> = fib_reference(n)
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .collect();
    let src = format!(
        "
        .equ N, {n}
        .data
        fib: .space {bytes}
        .text
        main:
            la   $s0, fib
            sw   $zero, 0($s0)       # fib[0] = 0
            li   $t0, 1
            sw   $t0, 4($s0)         # fib[1] = 1
            li   $s1, 2              # i
        loop:
            sll  $t1, $s1, 2
            addu $t1, $s0, $t1
            lw   $t2, -4($t1)
            lw   $t3, -8($t1)
            addu $t4, $t2, $t3
            sw   $t4, 0($t1)
            addiu $s1, $s1, 1
            slti $t5, $s1, N
            bnez $t5, loop
            break 0
        ",
        n = n,
        bytes = 4 * n,
    );
    Ok(BuiltBenchmark {
        name: "fibonacci",
        category: Category::Mixed,
        program: assemble(&src)?,
        expected: vec![ExpectedRegion {
            label: "fib".into(),
            bytes: expected,
        }],
        max_steps: 100 * n as u64 + 1_000,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let built = build_fib(4000)?;

    // 1. Validate against the reference on the plain simulator.
    let baseline = run_baseline(&built)?;
    println!(
        "fibonacci validated: {} instructions, {} cycles on the plain MIPS",
        baseline.stats.instructions, baseline.stats.cycles
    );

    // 2. Accelerate, re-validate, report.
    let mut sys = System::new(
        Machine::load(&built.program),
        SystemConfig::new(ArrayShape::config1(), 16, true),
    );
    sys.run(built.max_steps)?;
    validate(sys.machine(), &built)?;
    println!("\naccelerated run (config #1, 16 slots, speculation):");
    println!("{}", sys.report());
    println!(
        "\nspeedup: {:.2}x",
        baseline.stats.cycles as f64 / sys.total_cycles() as f64
    );
    Ok(())
}
